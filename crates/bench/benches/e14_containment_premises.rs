//! E14 — Theorem 5.12: containment with premises.
//!
//! Without premises containment is NP-complete; with premises on the
//! contained side the decision procedure goes through the premise-free
//! expansion `Ω_q`, pushing the problem towards Π₂ᵖ. The bench scales the
//! premise size and measures the expansion-based decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_containment::{contained_in, Notion};
use swdb_hom::pattern_graph;
use swdb_model::{Graph, Term, Triple};
use swdb_query::{premise_free_expansion, Query};

fn premise_of_size(n: usize) -> Graph {
    (0..n)
        .map(|i| {
            Triple::new(
                Term::iri(format!("ex:t{i}")),
                swdb_model::Iri::new("ex:t"),
                Term::iri("ex:s"),
            )
        })
        .collect()
}

fn premised_query(premise: Graph) -> Query {
    Query::with_all(
        pattern_graph([("?X", "ex:result", "?Y")]),
        pattern_graph([
            ("?X", "ex:q", "?Y"),
            ("?Y", "ex:t", "ex:s"),
            ("?X", "ex:q", "?Z"),
        ]),
        premise,
        Default::default(),
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_containment_premises");
    let relaxed = Query::new(
        pattern_graph([("?X", "ex:result", "?Y")]),
        pattern_graph([("?X", "ex:q", "?Y")]),
    )
    .unwrap();
    for &n in &[1usize, 3, 6] {
        let q = premised_query(premise_of_size(n));
        let expansion_size = premise_free_expansion(&q).len();
        report_row(
            "E14",
            &format!("premise={n}"),
            &[
                ("expansion_members", expansion_size.to_string()),
                (
                    "contained_in_relaxed",
                    contained_in(&q, &relaxed, Notion::Standard).to_string(),
                ),
            ],
        );
        group.bench_with_input(BenchmarkId::new("standard_with_premise", n), &n, |b, _| {
            b.iter(|| contained_in(&q, &relaxed, Notion::Standard))
        });
        group.bench_with_input(
            BenchmarkId::new("entailment_with_premise", n),
            &n,
            |b, _| b.iter(|| contained_in(&q, &relaxed, Notion::EntailmentBased)),
        );
        // Baseline: the same body without any premise (plain Theorem 5.5).
        let premise_free = Query::new(
            pattern_graph([("?X", "ex:result", "?Y")]),
            pattern_graph([
                ("?X", "ex:q", "?Y"),
                ("?Y", "ex:t", "ex:s"),
                ("?X", "ex:q", "?Z"),
            ]),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("standard_premise_free", n), &n, |b, _| {
            b.iter(|| contained_in(&premise_free, &relaxed, Notion::Standard))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
