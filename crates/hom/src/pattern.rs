//! Triple patterns and pattern graphs.
//!
//! A *pattern graph* is an RDF graph in which some elements of `UB` have
//! been replaced by variables (§4 of the paper uses exactly this shape for
//! the head and body of tableau queries). The same structure also represents
//! the left-hand side of a map search: the blank nodes of the source graph
//! play the role of variables (§2.4, the correspondence between maps and
//! conjunctive queries `Q_G`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use swdb_model::{BlankNode, Graph, Iri, Term, Triple};

/// A variable name (the paper writes `?X`, `?Person`, …).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(String);

impl Variable {
    /// Creates a variable, stripping a leading `?` if present.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        Variable(name.strip_prefix('?').unwrap_or(name).to_owned())
    }

    /// The variable name without the `?` sigil.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(value: &str) -> Self {
        Variable::new(value)
    }
}

/// One position of a triple pattern: either a concrete term or a variable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatternTerm {
    /// A concrete RDF term.
    Const(Term),
    /// A variable to be bound by the matcher.
    Var(Variable),
}

impl PatternTerm {
    /// Convenience constructor for a constant URI.
    pub fn iri(value: &str) -> Self {
        PatternTerm::Const(Term::iri(value))
    }

    /// Convenience constructor for a constant blank node.
    pub fn blank(label: &str) -> Self {
        PatternTerm::Const(Term::blank(label))
    }

    /// Convenience constructor for a variable.
    pub fn var(name: &str) -> Self {
        PatternTerm::Var(Variable::new(name))
    }

    /// Returns the variable, if this position is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            PatternTerm::Var(v) => Some(v),
            PatternTerm::Const(_) => None,
        }
    }

    /// Returns the constant term, if this position is one.
    pub fn as_const(&self) -> Option<&Term> {
        match self {
            PatternTerm::Const(t) => Some(t),
            PatternTerm::Var(_) => None,
        }
    }

    /// Returns `true` if this position is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, PatternTerm::Var(_))
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Const(t) => fmt::Display::fmt(t, f),
            PatternTerm::Var(v) => fmt::Display::fmt(v, f),
        }
    }
}

impl fmt::Debug for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Term> for PatternTerm {
    fn from(value: Term) -> Self {
        PatternTerm::Const(value)
    }
}

impl From<Variable> for PatternTerm {
    fn from(value: Variable) -> Self {
        PatternTerm::Var(value)
    }
}

/// A triple pattern: a triple whose positions may contain variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: PatternTerm,
    /// Predicate position.
    pub predicate: PatternTerm,
    /// Object position.
    pub object: PatternTerm,
}

impl TriplePattern {
    /// Creates a triple pattern.
    pub fn new(
        subject: impl Into<PatternTerm>,
        predicate: impl Into<PatternTerm>,
        object: impl Into<PatternTerm>,
    ) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// The variables occurring in the pattern, in position order.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(PatternTerm::as_var)
    }

    /// Returns `true` if the pattern has no variables.
    pub fn is_ground_pattern(&self) -> bool {
        self.variables().next().is_none()
    }

    /// Instantiates the pattern with a binding, producing a triple if every
    /// variable is bound and the result is well formed (predicate must be a
    /// URI, subject/object must not be unbound).
    pub fn instantiate(&self, binding: &Binding) -> Option<Triple> {
        let resolve = |pt: &PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Const(t) => Some(t.clone()),
                PatternTerm::Var(v) => binding.get(v).cloned(),
            }
        };
        let s = resolve(&self.subject)?;
        let p = match resolve(&self.predicate)? {
            Term::Iri(iri) => iri,
            Term::Blank(_) => return None, // blank predicates are not well formed
        };
        let o = resolve(&self.object)?;
        Some(Triple::new(s, p, o))
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

impl fmt::Debug for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A binding of variables to terms — the paper's *valuation* `v : V → UB`
/// restricted to the variables it mentions.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Binding {
    map: BTreeMap<Variable, Term>,
}

impl Binding {
    /// The empty binding.
    pub fn new() -> Self {
        Binding::default()
    }

    /// Builds a binding from pairs.
    pub fn from_pairs<I, V, T>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, T)>,
        V: Into<Variable>,
        T: Into<Term>,
    {
        Binding {
            map: pairs
                .into_iter()
                .map(|(v, t)| (v.into(), t.into()))
                .collect(),
        }
    }

    /// Binds a variable.
    pub fn bind(&mut self, var: Variable, term: Term) {
        self.map.insert(var, term);
    }

    /// Removes a binding.
    pub fn unbind(&mut self, var: &Variable) {
        self.map.remove(var);
    }

    /// Looks up a variable.
    pub fn get(&self, var: &Variable) -> Option<&Term> {
        self.map.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bound pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &Term)> {
        self.map.iter()
    }

    /// Restricts the binding to the given variable set.
    pub fn project(&self, vars: &BTreeSet<Variable>) -> Binding {
        Binding {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(*v))
                .map(|(v, t)| (v.clone(), t.clone()))
                .collect(),
        }
    }

    /// Returns `true` if the two bindings agree on every variable bound by
    /// both.
    pub fn compatible_with(&self, other: &Binding) -> bool {
        self.map
            .iter()
            .all(|(v, t)| other.get(v).is_none_or(|t2| t2 == t))
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (v, t) in &self.map {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{v} ↦ {t}")?;
        }
        write!(f, "}}")
    }
}

/// A conjunction of triple patterns — the body of a tableau query, or the
/// conjunctive query `Q_G` associated to an RDF graph `G` (§2.4).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct PatternGraph {
    patterns: Vec<TriplePattern>,
}

impl PatternGraph {
    /// Creates an empty pattern graph.
    pub fn new() -> Self {
        PatternGraph::default()
    }

    /// Creates a pattern graph from patterns.
    pub fn from_patterns(patterns: impl IntoIterator<Item = TriplePattern>) -> Self {
        PatternGraph {
            patterns: patterns.into_iter().collect(),
        }
    }

    /// Adds a pattern.
    pub fn push(&mut self, pattern: TriplePattern) {
        self.patterns.push(pattern);
    }

    /// The patterns, in insertion order.
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.patterns
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if there are no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// All distinct variables occurring in the patterns.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.patterns
            .iter()
            .flat_map(|p| p.variables().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Instantiates every pattern with a binding; returns `None` if any
    /// pattern fails to produce a well-formed triple.
    pub fn instantiate(&self, binding: &Binding) -> Option<Graph> {
        self.patterns
            .iter()
            .map(|p| p.instantiate(binding))
            .collect::<Option<Vec<_>>>()
            .map(Graph::from_triples)
    }

    /// Builds the conjunctive query `Q_G` associated to an RDF graph `G`
    /// (§2.4): each triple becomes a pattern, each blank node becomes a
    /// variable named after it, URIs stay constants.
    pub fn from_graph_blanks_as_vars(g: &Graph) -> PatternGraph {
        let to_pattern = |t: &Term| -> PatternTerm {
            match t {
                Term::Blank(b) => PatternTerm::Var(Variable::new(b.as_str())),
                Term::Iri(_) => PatternTerm::Const(t.clone()),
            }
        };
        PatternGraph {
            patterns: g
                .iter()
                .map(|t| {
                    TriplePattern::new(
                        to_pattern(t.subject()),
                        PatternTerm::Const(Term::Iri(t.predicate().clone())),
                        to_pattern(t.object()),
                    )
                })
                .collect(),
        }
    }

    /// Converts a binding of "blank variables" produced by
    /// [`PatternGraph::from_graph_blanks_as_vars`] back into an RDF
    /// [`swdb_model::TermMap`] on the original blank nodes.
    pub fn binding_to_term_map(binding: &Binding) -> swdb_model::TermMap {
        swdb_model::TermMap::from_pairs(
            binding
                .iter()
                .map(|(v, t)| (BlankNode::new(v.name()), t.clone())),
        )
    }

    /// The predicates that occur as constants, useful for statistics.
    pub fn constant_predicates(&self) -> BTreeSet<Iri> {
        self.patterns
            .iter()
            .filter_map(|p| p.predicate.as_const())
            .filter_map(|t| t.as_iri().cloned())
            .collect()
    }
}

impl fmt::Debug for PatternGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PatternGraph[")?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<TriplePattern> for PatternGraph {
    fn from_iter<I: IntoIterator<Item = TriplePattern>>(iter: I) -> Self {
        PatternGraph::from_patterns(iter)
    }
}

/// Shorthand for building a triple pattern from string labels: labels
/// starting with `?` are variables, labels starting with `_:` are blank
/// nodes, everything else is a URI.
pub fn pattern(s: &str, p: &str, o: &str) -> TriplePattern {
    TriplePattern::new(
        parse_pattern_term(s),
        parse_pattern_term(p),
        parse_pattern_term(o),
    )
}

/// Parses a single pattern term label (see [`pattern`]).
pub fn parse_pattern_term(label: &str) -> PatternTerm {
    if let Some(var) = label.strip_prefix('?') {
        PatternTerm::Var(Variable::new(var))
    } else {
        PatternTerm::Const(swdb_model::parse_term(label))
    }
}

/// Builds a pattern graph from `(s, p, o)` string shorthand.
pub fn pattern_graph<'a>(
    patterns: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
) -> PatternGraph {
    patterns
        .into_iter()
        .map(|(s, p, o)| pattern(s, p, o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::graph;

    #[test]
    fn variable_strips_question_mark() {
        assert_eq!(Variable::new("?X"), Variable::new("X"));
        assert_eq!(Variable::new("X").name(), "X");
        assert_eq!(Variable::new("?X").to_string(), "?X");
    }

    #[test]
    fn pattern_shorthand_distinguishes_vars_blanks_and_iris() {
        let p = pattern("?X", "ex:p", "_:B");
        assert!(p.subject.is_var());
        assert!(!p.predicate.is_var());
        assert_eq!(p.object.as_const().unwrap(), &Term::blank("B"));
    }

    #[test]
    fn instantiation_requires_all_variables_bound() {
        let p = pattern("?X", "ex:p", "?Y");
        let partial = Binding::from_pairs([("X", Term::iri("ex:a"))]);
        assert!(p.instantiate(&partial).is_none());
        let full = Binding::from_pairs([("X", Term::iri("ex:a")), ("Y", Term::blank("N"))]);
        assert_eq!(
            p.instantiate(&full).unwrap(),
            swdb_model::triple("ex:a", "ex:p", "_:N")
        );
    }

    #[test]
    fn instantiation_rejects_blank_predicates() {
        let p = pattern("ex:a", "?P", "ex:b");
        let bad = Binding::from_pairs([("P", Term::blank("N"))]);
        assert!(
            p.instantiate(&bad).is_none(),
            "blank in predicate position is not well formed"
        );
        let good = Binding::from_pairs([("P", Term::iri("ex:p"))]);
        assert!(p.instantiate(&good).is_some());
    }

    #[test]
    fn pattern_graph_variables_are_deduplicated() {
        let pg = pattern_graph([("?X", "ex:p", "?Y"), ("?Y", "ex:q", "?X")]);
        assert_eq!(pg.variables().len(), 2);
    }

    #[test]
    fn q_g_translation_turns_blanks_into_variables() {
        let g = graph([("_:X", "ex:p", "ex:a"), ("ex:a", "ex:q", "_:X")]);
        let q = PatternGraph::from_graph_blanks_as_vars(&g);
        assert_eq!(q.len(), 2);
        assert_eq!(q.variables().len(), 1);
        // Instantiating with the blank itself reproduces the original graph.
        let binding = Binding::from_pairs([("X", Term::blank("X"))]);
        assert_eq!(q.instantiate(&binding).unwrap(), g);
    }

    #[test]
    fn binding_projection_and_compatibility() {
        let b1 = Binding::from_pairs([("X", Term::iri("ex:a")), ("Y", Term::iri("ex:b"))]);
        let b2 = Binding::from_pairs([("X", Term::iri("ex:a")), ("Z", Term::iri("ex:c"))]);
        assert!(b1.compatible_with(&b2));
        let b3 = Binding::from_pairs([("X", Term::iri("ex:z"))]);
        assert!(!b1.compatible_with(&b3));
        let projected = b1.project(&[Variable::new("X")].into_iter().collect());
        assert_eq!(projected.len(), 1);
    }

    #[test]
    fn pattern_graph_instantiation_builds_a_graph() {
        let pg = pattern_graph([("?X", "ex:p", "ex:a"), ("?X", "ex:q", "?Y")]);
        let binding = Binding::from_pairs([("X", Term::iri("ex:s")), ("Y", Term::iri("ex:o"))]);
        let g = pg.instantiate(&binding).unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.contains(&swdb_model::triple("ex:s", "ex:p", "ex:a")));
    }

    #[test]
    fn constant_predicates_are_collected() {
        let pg = pattern_graph([("?X", "ex:p", "ex:a"), ("?X", "?P", "?Y")]);
        let preds = pg.constant_predicates();
        assert_eq!(preds.len(), 1);
        assert!(preds.iter().any(|p| p.as_str() == "ex:p"));
    }
}
