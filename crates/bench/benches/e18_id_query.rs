//! E18 — premise-free BGP answering: string-space vs id-space.
//!
//! The read-path experiment behind the `swdb-query::exec` engine. Two
//! measurements per (workload, scale, query) point:
//!
//! * `string_space` — the pre-exec facade hot path: the evaluation graph is
//!   already normalized, but every query rebuilds a string-keyed
//!   [`swdb_hom::GraphIndex`] (five term-cloning B-tree inserts per triple)
//!   and joins on cloned `Term`s ([`swdb_query::answer_against`]).
//! * `id_space` — the facade default since this experiment: the query is
//!   compiled to `TermId` patterns and joined directly over the cached
//!   SPO/POS/OSP id-index; terms are decoded only for the answer graph.
//!
//! One-off *cold* numbers are also reported: building the string
//! `NormalizedDatabase` (closure recomputation + core) against building the
//! facade's id evaluation index (core over the *maintained* closure — no
//! fixpoint recompute).
//!
//! Results land on stdout (criterion + report rows) and in
//! `BENCH_e18.json` at the workspace root. The acceptance bar — id-space at
//! least 5× faster than string-space on the 10k premise-free workload — is
//! asserted timing-safely in `tests/id_query_speedup.rs`; here it is
//! recorded from release-mode runs.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{json_prologue, metrics_block, quick, report_row};
use swdb_core::{MetricsLevel, SemanticWebDatabase};
use swdb_model::Graph;
use swdb_query::{answer_against, NormalizedDatabase, Query, Semantics};
use swdb_workloads::{simple_graph, university, SimpleGraphConfig, UniversityConfig};

/// A university workload of roughly `target` triples.
fn university_workload(target: usize) -> Graph {
    let departments = (target / 160).max(1);
    university(
        &UniversityConfig {
            departments,
            courses_per_department: 10,
            professors_per_department: 6,
            students_per_department: 30,
            enrollments_per_student: 3,
        },
        0xE18,
    )
}

/// A random ground simple graph of `target` triples. Ground on purpose:
/// with the heavy blank-label reuse of the generator the `core(·)` step of
/// both evaluation paths blows up exponentially, which would measure the
/// leanness search rather than the join engines this experiment compares.
fn random_workload(target: usize) -> Graph {
    simple_graph(
        &SimpleGraphConfig {
            triples: target,
            uri_nodes: target / 5,
            blank_nodes: 0,
            predicates: 8,
            blank_probability: 0.0,
        },
        0xE18,
    )
}

fn university_queries() -> Vec<(&'static str, Query)> {
    vec![
        ("workers", swdb_workloads::university::workers_query()),
        ("persons", swdb_workloads::university::persons_query()),
        (
            "student_professor",
            swdb_workloads::university::student_professor_query(),
        ),
    ]
}

fn random_queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "p0_scan",
            swdb_query::query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]),
        ),
        (
            "p0_p1_join",
            swdb_query::query(
                [("?X", "ex:p0", "?Z")],
                [("?X", "ex:p0", "?Y"), ("?Y", "ex:p1", "?Z")],
            ),
        ),
    ]
}

/// Best-of-N wall clock after warm-up.
fn measure(mut f: impl FnMut()) -> Duration {
    for _ in 0..2 {
        f();
    }
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

struct Row {
    workload: &'static str,
    triples: usize,
    query: &'static str,
    string_us: f64,
    id_us: f64,
}

struct ColdRow {
    workload: &'static str,
    triples: usize,
    string_nf_ms: f64,
    id_eval_ms: f64,
}

fn run_point(
    group: &mut criterion::BenchmarkGroup<'_>,
    workload: &'static str,
    data: &Graph,
    queries: &[(&'static str, Query)],
    rows: &mut Vec<Row>,
    cold: &mut Vec<ColdRow>,
) {
    let n = data.len();

    // Cold paths, one-off: the wholesale string normalization (closure
    // recomputation + core) vs the facade's id evaluation build (core over
    // the maintained closure only).
    let t0 = Instant::now();
    let normalized = NormalizedDatabase::without_premise(data);
    let string_nf = t0.elapsed();
    let mut db = SemanticWebDatabase::from_graph(data.clone());
    let warmup = &queries[0].1;
    let t1 = Instant::now();
    let _ = db.answer(warmup, Semantics::Union);
    let id_eval = t1.elapsed();
    cold.push(ColdRow {
        workload,
        triples: n,
        string_nf_ms: string_nf.as_secs_f64() * 1e3,
        id_eval_ms: id_eval.as_secs_f64() * 1e3,
    });

    for (name, q) in queries {
        // Both engines must produce the same answer before we time them.
        let spec = answer_against(q, &normalized, Semantics::Union);
        let id = db.answer(q, Semantics::Union);
        assert_eq!(id, spec, "engines disagree on {workload}/{name}");

        let string_time = measure(|| {
            criterion::black_box(answer_against(q, &normalized, Semantics::Union));
        });
        let id_time = measure(|| {
            criterion::black_box(db.answer(q, Semantics::Union));
        });
        rows.push(Row {
            workload,
            triples: n,
            query: name,
            string_us: string_time.as_secs_f64() * 1e6,
            id_us: id_time.as_secs_f64() * 1e6,
        });
        report_row(
            "E18",
            &format!("{workload} n={n} q={name}"),
            &[
                (
                    "string_us",
                    format!("{:.1}", string_time.as_secs_f64() * 1e6),
                ),
                ("id_us", format!("{:.1}", id_time.as_secs_f64() * 1e6)),
                (
                    "speedup",
                    format!(
                        "{:.1}x",
                        string_time.as_secs_f64() / id_time.as_secs_f64().max(1e-12)
                    ),
                ),
            ],
        );

        group.bench_with_input(
            BenchmarkId::new(format!("string_space/{workload}/{name}"), n),
            &n,
            |b, _| b.iter(|| answer_against(q, &normalized, Semantics::Union)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("id_space/{workload}/{name}"), n),
            &n,
            |b, _| b.iter(|| db.answer(q, Semantics::Union)),
        );
    }
}

/// One instrumented pass over the 10k university point: every query once
/// at `Counters` level, so the report shows the executor's probe/binding
/// economy next to the timings.
fn instrumented_snapshot() -> String {
    let mut db = SemanticWebDatabase::from_graph(university_workload(10_000));
    db.set_metrics_level(MetricsLevel::Counters);
    for (_, q) in &university_queries() {
        let _ = db.answer(q, Semantics::Union);
    }
    db.metrics_snapshot()
}

fn write_json(rows: &[Row], cold: &[ColdRow], metrics_json: &str) {
    let mut out = json_prologue("e18_id_query");
    out.push_str(
        "  \"acceptance\": \"id-space >= 5x string-space on the 10k premise-free workload\",\n",
    );
    out.push_str("  \"mode\": \"release, best-of-5 after warm-up\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"triples\": {}, \"query\": \"{}\", \"string_us\": {:.1}, \"id_us\": {:.1}, \"speedup\": {:.1}}}{}\n",
            r.workload,
            r.triples,
            r.query,
            r.string_us,
            r.id_us,
            r.string_us / r.id_us.max(1e-6),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"cold_build\": [\n");
    for (i, c) in cold.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"triples\": {}, \"string_nf_ms\": {:.1}, \"id_eval_ms\": {:.1}}}{}\n",
            c.workload,
            c.triples,
            c.string_nf_ms,
            c.id_eval_ms,
            if i + 1 < cold.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&metrics_block(metrics_json));
    out.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e18.json");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_e18.json: {e}");
    } else {
        println!("[E18] results recorded in BENCH_e18.json");
    }
}

fn bench(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut cold = Vec::new();
    let mut group = c.benchmark_group("e18_id_query");
    for &target in &[1_000usize, 10_000] {
        let uni = university_workload(target);
        run_point(
            &mut group,
            "university",
            &uni,
            &university_queries(),
            &mut rows,
            &mut cold,
        );
        let rnd = random_workload(target);
        run_point(
            &mut group,
            "random_rdf",
            &rnd,
            &random_queries(),
            &mut rows,
            &mut cold,
        );
    }
    group.finish();
    write_json(&rows, &cold, &instrumented_snapshot());
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
