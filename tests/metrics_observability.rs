//! End-to-end tests of the `swdb-obs` instrumentation through the facade:
//! the counter sheet is populated by a mixed workload, the pinned counters
//! are schedule-invariant across thread counts, the `Off` level records
//! nothing and costs (close to) nothing, and `explain()` reports the join
//! order the executor actually takes.

use std::time::Instant;

use semweb_foundations::core::{MetricsLevel, SemanticWebDatabase, Semantics};
use semweb_foundations::hom::pattern_graph;
use semweb_foundations::model::{graph, rdfs, triple, Graph};
use semweb_foundations::obs::MetricsSnapshot;
use semweb_foundations::query::{query, Query};
use semweb_foundations::workloads::{university, UniversityConfig};

fn workload() -> Graph {
    university(
        &UniversityConfig {
            departments: 2,
            courses_per_department: 4,
            professors_per_department: 2,
            students_per_department: 6,
            enrollments_per_student: 2,
        },
        11,
    )
}

/// Runs the same mixed insert / query / remove workload on a database
/// configured with the given thread ceiling and returns the final counter
/// snapshot.
fn run_mixed_workload(threads: usize) -> MetricsSnapshot {
    let mut db = SemanticWebDatabase::new();
    db.set_threads(threads);
    db.set_metrics_level(MetricsLevel::Counters);

    let data = workload();
    db.insert_graph(&data);
    // A blank-node component so the core engine has work to do.
    db.insert_graph(&graph([
        ("_:a", "ex:knows", "_:b"),
        ("_:b", "ex:knows", "_:c"),
        ("ex:anchor", "ex:knows", "_:a"),
    ]));

    let q1 = query([("?X", rdfs::TYPE, "?C")], [("?X", rdfs::TYPE, "?C")]);
    let q2 = query(
        [("?X", "ex:knows", "?Y")],
        [("?X", "ex:knows", "?Y"), ("?Y", "ex:knows", "?Z")],
    );
    assert!(!db.answer(&q1, Semantics::Union).is_empty());
    assert!(!db.answer(&q2, Semantics::Union).is_empty());
    assert!(!db.answer_is_empty(&q1));

    // Remove a handful of asserted triples to drive the DRed path.
    let victims: Vec<_> = db.graph().iter().take(5).cloned().collect();
    for t in victims {
        db.remove(&t);
    }
    assert!(!db.answer(&q1, Semantics::Union).is_empty());

    db.metrics().snapshot()
}

#[test]
fn mixed_workload_populates_the_counter_sheet() {
    // Thread count 2 takes the round-based schedule, which is the one that
    // reports round structure (the depth-first schedule of `threads == 1`
    // has no rounds to count).
    let snap = run_mixed_workload(2);
    // Acceptance: non-zero rounds, rule firings, join probes, and core
    // component counters after a mixed insert/query/remove workload.
    assert!(snap.counter("reason_rounds") > 0, "rounds: {snap:?}");
    assert!(
        snap.rule_firings.values().sum::<u64>() > 0,
        "rule firings: {snap:?}"
    );
    assert!(snap.counter("query_join_probes") > 0, "probes: {snap:?}");
    assert!(
        snap.counter("core_components_recored") > 0,
        "core components: {snap:?}"
    );
    assert!(snap.counter("reason_closure_added") > 0);
    assert!(snap.counter("reason_closure_removed") > 0);
    assert!(snap.counter("query_answers") > 0);
    // The JSON report carries the same numbers under deterministic keys.
    let json = snap.to_json();
    assert!(json.contains("\"query_join_probes\""));
    assert!(json.contains("\"rule_firings\": {"));
}

#[test]
fn pinned_counters_are_schedule_invariant_across_thread_counts() {
    let sequential = run_mixed_workload(1);
    let parallel = run_mixed_workload(4);
    // The maintained closure is schedule-independent, so the delta sizes,
    // the query-side counters, and the core engine's work are pinned.
    for key in [
        "reason_closure_added",
        "reason_closure_removed",
        "reason_overdeleted",
        "reason_rederived",
        "query_compiled",
        "query_patterns_compiled",
        "query_join_probes",
        "query_bindings",
        "query_answers",
        "core_components_recored",
        "core_fold_steps",
        "core_retraction_searches",
        "core_support_replays",
    ] {
        assert_eq!(
            sequential.counter(key),
            parallel.counter(key),
            "{key} must not depend on the schedule"
        );
    }
    // Round structure and per-rule attribution legitimately differ between
    // the depth-first and the round-based schedule; both must still fire.
    assert!(sequential.rule_firings.values().sum::<u64>() > 0);
    assert!(parallel.rule_firings.values().sum::<u64>() > 0);
    // The sharded schedule alone reports parallel rounds.
    assert_eq!(sequential.counter("reason_parallel_rounds"), 0);
}

#[test]
fn round_counters_are_invariant_across_parallel_thread_counts() {
    // Both counts here take the round-based schedule, so even the round
    // structure is pinned (threads only change who evaluates a shard).
    let two = run_mixed_workload(2);
    let four = run_mixed_workload(4);
    assert_eq!(two.counter("reason_rounds"), four.counter("reason_rounds"));
    assert_eq!(two.counter("reason_shards"), four.counter("reason_shards"));
}

#[test]
fn off_level_records_nothing_and_stays_cheap() {
    let data = university(
        &UniversityConfig {
            departments: 10,
            courses_per_department: 10,
            professors_per_department: 5,
            students_per_department: 30,
            enrollments_per_student: 3,
        },
        23,
    );
    let n = data.len();
    assert!(n > 1_000, "bulk load should be non-trivial, got {n}");

    let bulk_load = |level: MetricsLevel| {
        let mut db = SemanticWebDatabase::new();
        db.set_threads(1);
        db.set_metrics_level(level);
        let t0 = Instant::now();
        db.insert_graph(&data);
        let q = query([("?X", rdfs::TYPE, "?C")], [("?X", rdfs::TYPE, "?C")]);
        assert!(!db.answer(&q, Semantics::Union).is_empty());
        (t0.elapsed(), db.metrics().snapshot())
    };

    // Warm-up, then best-of-5 per level to shave scheduler noise.
    let _ = bulk_load(MetricsLevel::Off);
    let off = (0..5)
        .map(|_| bulk_load(MetricsLevel::Off))
        .min_by_key(|(d, _)| *d)
        .expect("five runs");
    let counters = (0..5)
        .map(|_| bulk_load(MetricsLevel::Counters))
        .min_by_key(|(d, _)| *d)
        .expect("five runs");

    // Off records nothing at all.
    let snap = &off.1;
    assert!(snap.counters.values().all(|&v| v == 0), "{snap:?}");
    assert!(snap.rule_firings.is_empty());
    assert!(snap.histograms.is_empty());
    // ... while the instrumented run sees the same work.
    assert!(counters.1.counter("reason_closure_added") > 0);

    // Zero-cost-when-off: the Off path does strictly less than Counters,
    // so it must not be meaningfully slower (generous bound + absolute
    // slack keep this robust on noisy CI machines).
    let off_ns = off.0.as_nanos();
    let counters_ns = counters.0.as_nanos();
    assert!(
        off_ns <= counters_ns * 2 + 20_000_000,
        "Off bulk load took {off_ns}ns vs {counters_ns}ns at Counters"
    );
}

#[test]
fn explain_reports_the_mechanism_and_the_executed_join_order() {
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    // ex:p is populous, ex:q has a single triple: the most-constrained
    // solver must start from pattern 1 (the ex:q pattern).
    let mut g = Graph::new();
    for i in 0..20 {
        g.insert(triple(&format!("ex:s{i}"), "ex:p", &format!("ex:o{i}")));
    }
    g.insert(triple("ex:o7", "ex:q", "ex:hub"));
    db.insert_graph(&g);

    let q = query(
        [("?X", "ex:p", "?Y")],
        [("?X", "ex:p", "?Y"), ("?Y", "ex:q", "ex:hub")],
    );
    let plan = db.explain(&q, Semantics::Union);
    assert_eq!(plan.mechanism, "premise_free");
    assert_eq!(plan.patterns, 2);
    assert_eq!(
        plan.join_order,
        vec![1, 0],
        "the solver starts from the single-triple ex:q pattern"
    );
    assert!(plan.probes > 0);
    assert_eq!(plan.answers as usize, db.answer(&q, Semantics::Union).len());
    // Re-explaining hits the plan cache: the outcome is identical except
    // for `plan_cache` itself and the probes the warm run no longer pays.
    let warm = db.explain(&q, Semantics::Union);
    if db.plan_cache_enabled() {
        assert_eq!(plan.plan_cache, "miss");
        assert_eq!(warm.plan_cache, "hit");
        assert!(warm.probes <= plan.probes);
    } else {
        assert_eq!(warm, plan, "without the cache, explaining is deterministic");
    }
    assert_eq!(warm.mechanism, plan.mechanism);
    assert_eq!(warm.join_order, plan.join_order);
    assert_eq!(warm.answers, plan.answers);
    assert_eq!(warm.estimated_cardinalities, plan.estimated_cardinalities);
    assert_eq!(warm.actual_cardinalities, plan.actual_cardinalities);
    // And its JSON form carries the order verbatim.
    assert!(plan.to_json().contains("\"join_order\": [1, 0]"));

    // A premise query under RDFS takes the overlay mechanism.
    let with_premise = Query::with_premise(
        pattern_graph([("?X", "ex:p", "?Y")]),
        pattern_graph([("?X", "ex:p", "?Y")]),
        graph([("ex:extra", "ex:p", "ex:extra2")]),
    )
    .expect("well formed");
    let plan = db.explain(&with_premise, Semantics::Union);
    assert_eq!(plan.mechanism, "overlay");
    assert_eq!(
        plan.answers as usize,
        db.answer(&with_premise, Semantics::Union).len()
    );
}

#[test]
fn overlay_cache_counters_track_hits_misses_and_blank_warning_surfaces() {
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    db.insert_graph(&graph([("ex:a", "ex:p", "ex:b")]));

    let with_premise = Query::with_premise(
        pattern_graph([("?X", "ex:p", "?Y")]),
        pattern_graph([("?X", "ex:p", "?Y")]),
        graph([("ex:c", "ex:p", "ex:d")]),
    )
    .expect("well formed");
    let _ = db.answer(&with_premise, Semantics::Union);
    let _ = db.answer(&with_premise, Semantics::Union);
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("overlay_cache_misses"), 1);
    assert!(snap.counter("overlay_cache_hits") >= 1);

    // The GraphStats early warning reaches the snapshot's warnings block.
    db.metrics().set_blank_warn_threshold(2);
    db.insert_graph(&graph([
        ("_:a", "ex:knows", "_:b"),
        ("_:b", "ex:knows", "_:c"),
        ("_:c", "ex:knows", "_:d"),
    ]));
    let _ = db.stats();
    let snap = db.metrics().snapshot();
    assert!(snap.counter("core_blank_warnings") > 0);
    assert_eq!(snap.warnings.len(), 1);
    assert!(db
        .metrics_snapshot()
        .contains("\"warnings\": [\"largest blank component"));
}
