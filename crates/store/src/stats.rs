//! Descriptive statistics of RDF graphs.
//!
//! The experiment harness reports these statistics alongside timings so that
//! the shape of each workload (blank density, schema fraction, fan-out) is
//! visible next to the measured behaviour.

use std::collections::BTreeMap;

use swdb_model::{rdfs, BlankNode, Graph, Iri, Term};

/// Summary statistics of an RDF graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Number of triples.
    pub triples: usize,
    /// Number of distinct terms in the universe.
    pub universe: usize,
    /// Number of distinct blank nodes.
    pub blank_nodes: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of triples whose predicate belongs to the RDFS vocabulary.
    pub schema_triples: usize,
    /// Number of ground triples.
    pub ground_triples: usize,
    /// Histogram of predicate usage.
    pub predicate_histogram: BTreeMap<Iri, usize>,
    /// Number of blank-node connected components (blanks connected by
    /// co-occurrence in a triple). Each component is one independent
    /// retraction search of the core step — many small components mean a
    /// cheap `core(·)`, one big component an expensive one.
    pub blank_components: usize,
    /// Histogram of blank-component sizes, measured in triples mentioning
    /// the component's blanks: size → number of components.
    pub blank_component_sizes: BTreeMap<usize, usize>,
}

impl GraphStats {
    /// Computes the statistics for a graph.
    pub fn of(graph: &Graph) -> GraphStats {
        let mut histogram: BTreeMap<Iri, usize> = BTreeMap::new();
        let mut schema_triples = 0usize;
        let mut ground_triples = 0usize;
        for t in graph.iter() {
            *histogram.entry(t.predicate().clone()).or_insert(0) += 1;
            if rdfs::is_reserved(t.predicate()) {
                schema_triples += 1;
            }
            if t.is_ground() {
                ground_triples += 1;
            }
        }
        let (blank_components, blank_component_sizes) = blank_component_histogram(graph);
        GraphStats {
            triples: graph.len(),
            universe: graph.universe().len(),
            blank_nodes: graph.blank_nodes().len(),
            predicates: histogram.len(),
            schema_triples,
            ground_triples,
            predicate_histogram: histogram,
            blank_components,
            blank_component_sizes,
        }
    }

    /// Fraction of triples mentioning at least one blank node.
    pub fn blank_density(&self) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        (self.triples - self.ground_triples) as f64 / self.triples as f64
    }

    /// Fraction of triples using the RDFS vocabulary as predicate.
    pub fn schema_fraction(&self) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        self.schema_triples as f64 / self.triples as f64
    }

    /// The largest blank-component size in triples (0 when the graph is
    /// ground) — the driver of the worst local core search.
    pub fn largest_blank_component(&self) -> usize {
        self.blank_component_sizes
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} triples, {} terms, {} blanks ({:.0}% blank density) in {} components (largest {}), {} predicates, {:.0}% schema",
            self.triples,
            self.universe,
            self.blank_nodes,
            self.blank_density() * 100.0,
            self.blank_components,
            self.largest_blank_component(),
            self.predicates,
            self.schema_fraction() * 100.0,
        )
    }
}

/// Groups the graph's blank nodes into co-occurrence components and returns
/// `(component count, size histogram)` with sizes in triples.
fn blank_component_histogram(graph: &Graph) -> (usize, BTreeMap<usize, usize>) {
    // Union-find over the blank labels (the same notion of component the
    // id-space core engine partitions by — see `crate::union_find`).
    let mut index_of: BTreeMap<&BlankNode, usize> = BTreeMap::new();
    let mut sets = crate::DisjointSets::new();
    let mut blank_triples: Vec<&BlankNode> = Vec::new();
    for t in graph.iter() {
        let mut first: Option<usize> = None;
        for term in [t.subject(), t.object()] {
            if let Term::Blank(b) = term {
                let slot = *index_of.entry(b).or_insert_with(|| sets.make_set());
                if let Some(f) = first {
                    sets.union(slot, f);
                } else {
                    first = Some(slot);
                }
            }
        }
        if let Term::Blank(b) = t.subject() {
            blank_triples.push(b);
        } else if let Term::Blank(b) = t.object() {
            blank_triples.push(b);
        }
    }
    let mut triples_per_root: BTreeMap<usize, usize> = BTreeMap::new();
    for b in blank_triples {
        let root = sets.find(index_of[b]);
        *triples_per_root.entry(root).or_insert(0) += 1;
    }
    let mut histogram: BTreeMap<usize, usize> = BTreeMap::new();
    for size in triples_per_root.values() {
        *histogram.entry(*size).or_insert(0) += 1;
    }
    (triples_per_root.len(), histogram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::graph;

    #[test]
    fn statistics_of_a_mixed_graph() {
        let g = graph([
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("_:X", rdfs::TYPE, "ex:Painter"),
            ("_:X", "ex:paints", "_:Y"),
        ]);
        let stats = GraphStats::of(&g);
        assert_eq!(stats.triples, 4);
        assert_eq!(stats.blank_nodes, 2);
        assert_eq!(stats.schema_triples, 2);
        assert_eq!(stats.ground_triples, 2);
        assert_eq!(stats.predicates, 3);
        assert_eq!(stats.predicate_histogram[&Iri::new("ex:paints")], 2);
        assert!((stats.blank_density() - 0.5).abs() < 1e-9);
        assert!((stats.schema_fraction() - 0.5).abs() < 1e-9);
        // X and Y co-occur in (_:X, paints, _:Y): one component, 2 triples.
        assert_eq!(stats.blank_components, 1);
        assert_eq!(stats.blank_component_sizes[&2], 1);
        assert_eq!(stats.largest_blank_component(), 2);
    }

    #[test]
    fn blank_components_split_and_merge_by_cooccurrence() {
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:p", "_:Y"),
            ("ex:a", "ex:p", "_:Z"),
            ("_:W", "ex:q", "ex:b"),
            ("ex:c", "ex:p", "ex:d"),
        ]);
        let stats = GraphStats::of(&g);
        assert_eq!(stats.blank_nodes, 4);
        // {X, Y} (2 triples), {Z} (1), {W} (1).
        assert_eq!(stats.blank_components, 3);
        assert_eq!(stats.blank_component_sizes[&1], 2);
        assert_eq!(stats.blank_component_sizes[&2], 1);
        assert_eq!(stats.largest_blank_component(), 2);
        let summary = stats.summary();
        assert!(summary.contains("3 components"), "{summary}");
    }

    #[test]
    fn ground_graphs_have_no_blank_components() {
        let stats = GraphStats::of(&graph([("ex:a", "ex:p", "ex:b")]));
        assert_eq!(stats.blank_components, 0);
        assert!(stats.blank_component_sizes.is_empty());
        assert_eq!(stats.largest_blank_component(), 0);
    }

    #[test]
    fn empty_graph_statistics() {
        let stats = GraphStats::of(&Graph::new());
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.blank_density(), 0.0);
        assert_eq!(stats.schema_fraction(), 0.0);
    }

    #[test]
    fn summary_is_human_readable() {
        let g = graph([("ex:a", "ex:p", "_:X")]);
        let s = GraphStats::of(&g).summary();
        assert!(s.contains("1 triples"));
        assert!(s.contains("100% blank density"));
    }
}
