//! E11 — §4.1: query answering over the university workload.
//!
//! Answers the three schema-aware queries over growing university instances,
//! under union and merge semantics, both with cold normalization and with
//! the facade's cached normal form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_core::{SemanticWebDatabase, Semantics};
use swdb_workloads::university::{persons_query, student_professor_query, workers_query};
use swdb_workloads::{university, UniversityConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_query_answering");
    for &departments in &[1usize, 2, 3] {
        let data = university(
            &UniversityConfig {
                departments,
                ..UniversityConfig::default()
            },
            2024,
        );
        let queries = [
            ("workers", workers_query()),
            ("persons", persons_query()),
            ("learns_from", student_professor_query()),
        ];
        let mut db = SemanticWebDatabase::from_graph(data.clone());
        for (name, q) in &queries {
            report_row(
                "E11",
                &format!("departments={departments} query={name}"),
                &[
                    ("data_triples", data.len().to_string()),
                    ("answers", db.answer_union(q).len().to_string()),
                ],
            );
        }
        group.bench_with_input(
            BenchmarkId::new("cold_union_workers", departments),
            &departments,
            |b, _| b.iter(|| swdb_query::answer_union(&workers_query(), &data)),
        );
        group.bench_with_input(
            BenchmarkId::new("cached_union_workers", departments),
            &departments,
            |b, _| {
                let mut db = SemanticWebDatabase::from_graph(data.clone());
                let _ = db.answer_union(&workers_query()); // warm the cache
                b.iter(|| db.answer_union(&workers_query()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_union_join", departments),
            &departments,
            |b, _| {
                let mut db = SemanticWebDatabase::from_graph(data.clone());
                let _ = db.answer_union(&student_professor_query());
                b.iter(|| db.answer_union(&student_professor_query()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_merge_join", departments),
            &departments,
            |b, _| {
                let mut db = SemanticWebDatabase::from_graph(data.clone());
                let _ = db.answer(&student_professor_query(), Semantics::Merge);
                b.iter(|| db.answer(&student_professor_query(), Semantics::Merge))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
