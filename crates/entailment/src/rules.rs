//! The deductive system of §2.3.2.
//!
//! The system has six groups of rules. Group A (rule 1) is the existential
//! rule — from `G` deduce any graph `G'` that maps into `G` — and is the only
//! rule that manipulates blank nodes. Groups B–F (rules 2–13) manipulate the
//! RDFS vocabulary:
//!
//! * **Group B (Subproperty)** — rules (2) transitivity and (3) inheritance;
//! * **Group C (Subclass)** — rule (4) transitivity;
//! * **Group D (Typing)** — rules (5) type lifting along `sc`, (6) domain and
//!   (7) range typing (the Marin completion, see Note 2.4);
//! * **Group E (Subproperty reflexivity)** — rules (8)–(11);
//! * **Group F (Subclass reflexivity)** — rules (12)–(13).
//!
//! Each rule is implemented as a function producing, from a graph, the set of
//! triples it can add in one step; an *instantiation* of a rule is only
//! accepted when the produced triples are well-formed (no blank nodes in
//! predicate position), mirroring the paper's definition of instantiation.

use std::fmt;

use swdb_model::{rdfs, Graph, Iri, Term, Triple};

/// Identifiers of the deduction rules (2)–(13); rule (1), the existential
/// map rule, is represented separately by proof steps since it is not used
/// when computing closures (Definition 2.7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Rule (2): `(A,sp,B), (B,sp,C) ⟹ (A,sp,C)`.
    SubPropertyTransitivity,
    /// Rule (3): `(A,sp,B), (X,A,Y) ⟹ (X,B,Y)`.
    SubPropertyInheritance,
    /// Rule (4): `(A,sc,B), (B,sc,C) ⟹ (A,sc,C)`.
    SubClassTransitivity,
    /// Rule (5): `(A,sc,B), (X,type,A) ⟹ (X,type,B)`.
    TypeLifting,
    /// Rule (6): `(A,dom,B), (C,sp,A), (X,C,Y) ⟹ (X,type,B)`.
    DomainTyping,
    /// Rule (7): `(A,range,B), (C,sp,A), (X,C,Y) ⟹ (Y,type,B)`.
    RangeTyping,
    /// Rule (8): `(X,A,Y) ⟹ (A,sp,A)`.
    PredicateReflexivity,
    /// Rule (9): `(p,sp,p)` for `p ∈ rdfsV` (axiomatic, no premises).
    VocabularyReflexivity,
    /// Rule (10): `(A,p,X) ⟹ (A,sp,A)` for `p ∈ {dom, range}`.
    DomainRangeSubjectReflexivity,
    /// Rule (11): `(A,sp,B) ⟹ (A,sp,A), (B,sp,B)`.
    SubPropertyReflexivity,
    /// Rule (12): `(X,p,A) ⟹ (A,sc,A)` for `p ∈ {dom, range, type}`.
    ClassReflexivity,
    /// Rule (13): `(A,sc,B) ⟹ (A,sc,A), (B,sc,B)`.
    SubClassReflexivity,
}

impl RuleId {
    /// All rules in paper order (2)–(13).
    pub const ALL: [RuleId; 12] = [
        RuleId::SubPropertyTransitivity,
        RuleId::SubPropertyInheritance,
        RuleId::SubClassTransitivity,
        RuleId::TypeLifting,
        RuleId::DomainTyping,
        RuleId::RangeTyping,
        RuleId::PredicateReflexivity,
        RuleId::VocabularyReflexivity,
        RuleId::DomainRangeSubjectReflexivity,
        RuleId::SubPropertyReflexivity,
        RuleId::ClassReflexivity,
        RuleId::SubClassReflexivity,
    ];

    /// The rule number used by the paper (2–13).
    pub fn paper_number(self) -> u8 {
        match self {
            RuleId::SubPropertyTransitivity => 2,
            RuleId::SubPropertyInheritance => 3,
            RuleId::SubClassTransitivity => 4,
            RuleId::TypeLifting => 5,
            RuleId::DomainTyping => 6,
            RuleId::RangeTyping => 7,
            RuleId::PredicateReflexivity => 8,
            RuleId::VocabularyReflexivity => 9,
            RuleId::DomainRangeSubjectReflexivity => 10,
            RuleId::SubPropertyReflexivity => 11,
            RuleId::ClassReflexivity => 12,
            RuleId::SubClassReflexivity => 13,
        }
    }

    /// The rule group (B–F) used by the paper.
    pub fn group(self) -> char {
        match self {
            RuleId::SubPropertyTransitivity | RuleId::SubPropertyInheritance => 'B',
            RuleId::SubClassTransitivity => 'C',
            RuleId::TypeLifting | RuleId::DomainTyping | RuleId::RangeTyping => 'D',
            RuleId::PredicateReflexivity
            | RuleId::VocabularyReflexivity
            | RuleId::DomainRangeSubjectReflexivity
            | RuleId::SubPropertyReflexivity => 'E',
            RuleId::ClassReflexivity | RuleId::SubClassReflexivity => 'F',
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule ({}) [group {}]", self.paper_number(), self.group())
    }
}

/// One concrete application of a rule: the premises drawn from the graph and
/// the conclusions added. Used to build checkable [`crate::proof::Proof`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleApplication {
    /// Which rule was applied.
    pub rule: RuleId,
    /// The premise triples (a subset of the graph the rule was applied to;
    /// empty for the axiomatic rule (9)).
    pub premises: Vec<Triple>,
    /// The conclusion triples added by the application.
    pub conclusions: Vec<Triple>,
}

fn iri_term(i: &Iri) -> Term {
    Term::Iri(i.clone())
}

/// Applies one rule to the graph, returning every application whose
/// conclusions are not already in the graph.
pub fn applications(rule: RuleId, g: &Graph) -> Vec<RuleApplication> {
    let sp = rdfs::sp();
    let sc = rdfs::sc();
    let type_ = rdfs::type_();
    let dom = rdfs::dom();
    let range = rdfs::range();
    let mut out = Vec::new();
    let mut push = |rule: RuleId, premises: Vec<Triple>, conclusions: Vec<Triple>| {
        let fresh: Vec<Triple> = conclusions.into_iter().filter(|t| !g.contains(t)).collect();
        if !fresh.is_empty() {
            out.push(RuleApplication {
                rule,
                premises,
                conclusions: fresh,
            });
        }
    };

    match rule {
        RuleId::SubPropertyTransitivity => {
            let sp_triples: Vec<&Triple> = g.triples_with_predicate(&sp).collect();
            for t1 in &sp_triples {
                for t2 in &sp_triples {
                    if t1.object() == t2.subject() {
                        push(
                            rule,
                            vec![(*t1).clone(), (*t2).clone()],
                            vec![Triple::new(
                                t1.subject().clone(),
                                sp.clone(),
                                t2.object().clone(),
                            )],
                        );
                    }
                }
            }
        }
        RuleId::SubPropertyInheritance => {
            let sp_triples: Vec<&Triple> = g.triples_with_predicate(&sp).collect();
            for spt in &sp_triples {
                // A must be usable as a predicate: it must be a URI.
                let (Term::Iri(a), b) = (spt.subject(), spt.object()) else {
                    continue;
                };
                // The conclusion predicate B must also be a URI to form a
                // well-formed triple (the paper's instantiation condition).
                let Term::Iri(b) = b else { continue };
                for t in g.triples_with_predicate(a) {
                    push(
                        rule,
                        vec![(*spt).clone(), t.clone()],
                        vec![Triple::new(
                            t.subject().clone(),
                            b.clone(),
                            t.object().clone(),
                        )],
                    );
                }
            }
        }
        RuleId::SubClassTransitivity => {
            let sc_triples: Vec<&Triple> = g.triples_with_predicate(&sc).collect();
            for t1 in &sc_triples {
                for t2 in &sc_triples {
                    if t1.object() == t2.subject() {
                        push(
                            rule,
                            vec![(*t1).clone(), (*t2).clone()],
                            vec![Triple::new(
                                t1.subject().clone(),
                                sc.clone(),
                                t2.object().clone(),
                            )],
                        );
                    }
                }
            }
        }
        RuleId::TypeLifting => {
            let sc_triples: Vec<&Triple> = g.triples_with_predicate(&sc).collect();
            let type_triples: Vec<&Triple> = g.triples_with_predicate(&type_).collect();
            for sct in &sc_triples {
                for tt in &type_triples {
                    if tt.object() == sct.subject() {
                        push(
                            rule,
                            vec![(*sct).clone(), (*tt).clone()],
                            vec![Triple::new(
                                tt.subject().clone(),
                                type_.clone(),
                                sct.object().clone(),
                            )],
                        );
                    }
                }
            }
        }
        RuleId::DomainTyping | RuleId::RangeTyping => {
            let property = if rule == RuleId::DomainTyping {
                &dom
            } else {
                &range
            };
            let decls: Vec<&Triple> = g.triples_with_predicate(property).collect();
            let sp_triples: Vec<&Triple> = g.triples_with_predicate(&sp).collect();
            for decl in &decls {
                let a = decl.subject();
                let b = decl.object();
                for spt in &sp_triples {
                    if spt.object() != a {
                        continue;
                    }
                    let Term::Iri(c) = spt.subject() else {
                        continue;
                    };
                    for t in g.triples_with_predicate(c) {
                        let typed = if rule == RuleId::DomainTyping {
                            t.subject().clone()
                        } else {
                            t.object().clone()
                        };
                        push(
                            rule,
                            vec![(*decl).clone(), (*spt).clone(), t.clone()],
                            vec![Triple::new(typed, type_.clone(), b.clone())],
                        );
                    }
                }
            }
        }
        RuleId::PredicateReflexivity => {
            for t in g.iter() {
                let a = iri_term(t.predicate());
                push(
                    rule,
                    vec![t.clone()],
                    vec![Triple::new(a.clone(), sp.clone(), a)],
                );
            }
        }
        RuleId::VocabularyReflexivity => {
            for p in rdfs::vocabulary() {
                push(
                    rule,
                    vec![],
                    vec![Triple::new(iri_term(&p), sp.clone(), iri_term(&p))],
                );
            }
        }
        RuleId::DomainRangeSubjectReflexivity => {
            for p in [&dom, &range] {
                for t in g.triples_with_predicate(p) {
                    let a = t.subject().clone();
                    push(
                        rule,
                        vec![t.clone()],
                        vec![Triple::new(a.clone(), sp.clone(), a)],
                    );
                }
            }
        }
        RuleId::SubPropertyReflexivity => {
            for t in g.triples_with_predicate(&sp) {
                let a = t.subject().clone();
                let b = t.object().clone();
                push(
                    rule,
                    vec![t.clone()],
                    vec![
                        Triple::new(a.clone(), sp.clone(), a),
                        Triple::new(b.clone(), sp.clone(), b),
                    ],
                );
            }
        }
        RuleId::ClassReflexivity => {
            for p in [&dom, &range, &type_] {
                for t in g.triples_with_predicate(p) {
                    let a = t.object().clone();
                    push(
                        rule,
                        vec![t.clone()],
                        vec![Triple::new(a.clone(), sc.clone(), a)],
                    );
                }
            }
        }
        RuleId::SubClassReflexivity => {
            for t in g.triples_with_predicate(&sc) {
                let a = t.subject().clone();
                let b = t.object().clone();
                push(
                    rule,
                    vec![t.clone()],
                    vec![
                        Triple::new(a.clone(), sc.clone(), a),
                        Triple::new(b.clone(), sc.clone(), b),
                    ],
                );
            }
        }
    }
    out
}

/// Applies every rule once, returning the set of new triples (the one-step
/// immediate-consequence operator of the rule system).
pub fn one_step(g: &Graph) -> Graph {
    let mut out = Graph::new();
    for rule in RuleId::ALL {
        for app in applications(rule, g) {
            out.extend(app.conclusions.iter().cloned());
        }
    }
    out
}

/// Checks that a claimed rule application is legitimate with respect to a
/// graph: the premises are in the graph, the rule really derives the
/// conclusions from those premises, and the conclusions are well formed.
pub fn verify_application(app: &RuleApplication, g: &Graph) -> bool {
    if !app.premises.iter().all(|t| g.contains(t)) {
        return false;
    }
    let premise_graph: Graph = app.premises.iter().cloned().collect();
    let derivable = applications(app.rule, &premise_graph);
    app.conclusions.iter().all(|c| {
        derivable
            .iter()
            .any(|d| d.conclusions.contains(c))
            // Conclusions already present in the premises are also fine
            // (vacuous applications).
            || premise_graph.contains(c)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, triple};

    #[test]
    fn rule_numbers_and_groups_match_the_paper() {
        assert_eq!(RuleId::SubPropertyTransitivity.paper_number(), 2);
        assert_eq!(RuleId::SubClassReflexivity.paper_number(), 13);
        assert_eq!(RuleId::SubPropertyInheritance.group(), 'B');
        assert_eq!(RuleId::DomainTyping.group(), 'D');
        assert_eq!(RuleId::VocabularyReflexivity.group(), 'E');
        assert_eq!(RuleId::ALL.len(), 12);
    }

    #[test]
    fn rule_2_subproperty_transitivity() {
        let g = graph([
            ("ex:son", rdfs::SP, "ex:child"),
            ("ex:child", rdfs::SP, "ex:descendant"),
        ]);
        let apps = applications(RuleId::SubPropertyTransitivity, &g);
        assert!(apps.iter().any(|a| a.conclusions.contains(&triple(
            "ex:son",
            rdfs::SP,
            "ex:descendant"
        ))));
    }

    #[test]
    fn rule_3_subproperty_inheritance() {
        let g = graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let apps = applications(RuleId::SubPropertyInheritance, &g);
        assert!(apps.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Picasso",
            "ex:creates",
            "ex:Guernica"
        ))));
    }

    #[test]
    fn rule_3_rejects_blank_super_properties() {
        // (a, sp, X) with X blank: the conclusion (s, X, o) would have a
        // blank in predicate position and must not be produced.
        let g = graph([
            ("ex:paints", rdfs::SP, "_:X"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let apps = applications(RuleId::SubPropertyInheritance, &g);
        assert!(apps.is_empty());
    }

    #[test]
    fn rule_4_and_5_subclass_and_typing() {
        let g = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Artist", rdfs::SC, "ex:Person"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        ]);
        let trans = applications(RuleId::SubClassTransitivity, &g);
        assert!(trans.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Painter",
            rdfs::SC,
            "ex:Person"
        ))));
        let lift = applications(RuleId::TypeLifting, &g);
        assert!(lift.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Picasso",
            rdfs::TYPE,
            "ex:Artist"
        ))));
    }

    #[test]
    fn rules_6_and_7_domain_and_range_typing() {
        // With (paints, sp, paints) present (reflexivity), domain/range
        // typing applies directly to paints triples.
        let g = graph([
            ("ex:paints", rdfs::DOM, "ex:Painter"),
            ("ex:paints", rdfs::RANGE, "ex:Painting"),
            ("ex:paints", rdfs::SP, "ex:paints"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let dom_apps = applications(RuleId::DomainTyping, &g);
        assert!(dom_apps.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Picasso",
            rdfs::TYPE,
            "ex:Painter"
        ))));
        let range_apps = applications(RuleId::RangeTyping, &g);
        assert!(range_apps.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Guernica",
            rdfs::TYPE,
            "ex:Painting"
        ))));
    }

    #[test]
    fn rule_8_predicate_reflexivity() {
        let g = graph([("ex:a", "ex:p", "ex:b")]);
        let apps = applications(RuleId::PredicateReflexivity, &g);
        assert!(apps
            .iter()
            .any(|a| a.conclusions.contains(&triple("ex:p", rdfs::SP, "ex:p"))));
    }

    #[test]
    fn rule_9_is_axiomatic() {
        let empty = Graph::new();
        let apps = applications(RuleId::VocabularyReflexivity, &empty);
        let conclusions: Vec<&Triple> = apps.iter().flat_map(|a| a.conclusions.iter()).collect();
        assert_eq!(conclusions.len(), 5);
        assert!(apps.iter().all(|a| a.premises.is_empty()));
        assert!(conclusions.contains(&&triple(rdfs::TYPE, rdfs::SP, rdfs::TYPE)));
    }

    #[test]
    fn rules_10_to_13_reflexivity() {
        let g = graph([
            ("ex:paints", rdfs::DOM, "ex:Painter"),
            ("ex:son", rdfs::SP, "ex:child"),
            ("ex:x", rdfs::TYPE, "ex:C"),
            ("ex:C", rdfs::SC, "ex:D"),
        ]);
        let r10 = applications(RuleId::DomainRangeSubjectReflexivity, &g);
        assert!(r10.iter().any(|a| a.conclusions.contains(&triple(
            "ex:paints",
            rdfs::SP,
            "ex:paints"
        ))));
        let r11 = applications(RuleId::SubPropertyReflexivity, &g);
        assert!(r11.iter().any(|a| {
            a.conclusions
                .contains(&triple("ex:son", rdfs::SP, "ex:son"))
                && a.conclusions
                    .contains(&triple("ex:child", rdfs::SP, "ex:child"))
        }));
        let r12 = applications(RuleId::ClassReflexivity, &g);
        assert!(r12
            .iter()
            .any(|a| a.conclusions.contains(&triple("ex:C", rdfs::SC, "ex:C"))));
        assert!(r12.iter().any(|a| a.conclusions.contains(&triple(
            "ex:Painter",
            rdfs::SC,
            "ex:Painter"
        ))));
        let r13 = applications(RuleId::SubClassReflexivity, &g);
        assert!(r13
            .iter()
            .any(|a| a.conclusions.contains(&triple("ex:D", rdfs::SC, "ex:D"))));
    }

    #[test]
    fn applications_skip_already_present_conclusions() {
        let g = graph([
            ("ex:son", rdfs::SP, "ex:child"),
            ("ex:child", rdfs::SP, "ex:descendant"),
            ("ex:son", rdfs::SP, "ex:descendant"),
        ]);
        let apps = applications(RuleId::SubPropertyTransitivity, &g);
        // The only candidate conclusion is already present, so no
        // applications are reported for it...
        assert!(apps.iter().all(|a| !a.conclusions.contains(&triple(
            "ex:son",
            rdfs::SP,
            "ex:descendant"
        )) || a.conclusions.len() > 1));
    }

    #[test]
    fn verify_application_checks_premises_and_derivability() {
        let g = graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let good = RuleApplication {
            rule: RuleId::SubPropertyInheritance,
            premises: vec![
                triple("ex:paints", rdfs::SP, "ex:creates"),
                triple("ex:Picasso", "ex:paints", "ex:Guernica"),
            ],
            conclusions: vec![triple("ex:Picasso", "ex:creates", "ex:Guernica")],
        };
        assert!(verify_application(&good, &g));
        let bad_premise = RuleApplication {
            premises: vec![triple("ex:zzz", rdfs::SP, "ex:creates")],
            ..good.clone()
        };
        assert!(!verify_application(&bad_premise, &g));
        let bad_conclusion = RuleApplication {
            conclusions: vec![triple("ex:Picasso", "ex:destroys", "ex:Guernica")],
            ..good
        };
        assert!(!verify_application(&bad_conclusion, &g));
    }

    #[test]
    fn one_step_collects_conclusions_across_rules() {
        let g = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        ]);
        let step = one_step(&g);
        assert!(step.contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist")));
        assert!(step.contains(&triple("ex:Painter", rdfs::SC, "ex:Painter")));
        assert!(step.contains(&triple(rdfs::SP, rdfs::SP, rdfs::SP)));
    }
}
