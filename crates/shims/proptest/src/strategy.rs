//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy`: `generate` corresponds to
/// drawing one value from the strategy's distribution, and
/// [`generate_shrinkable`] draws the same value wrapped in a
/// [`Shrinkable`] that knows how to simplify it. Unlike the real crate
/// there is no full value-tree machinery, but the `Shrinkable` plays the
/// same role: candidates are built *compositionally* — [`Map`] shrinks
/// its source and re-applies the mapping, [`Union`] shrinks within the
/// branch it drew, tuples and `collection::vec` shrink their parts — so
/// shrinking flows through `prop_map` and `prop_oneof!` even though their
/// output cannot be inverted. The value-to-value [`shrink`] remains for
/// strategies whose candidates are a pure function of the failing value
/// (integer ranges halve toward the range start).
///
/// [`shrink`]: Strategy::shrink
/// [`generate_shrinkable`]: Strategy::generate_shrinkable
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes candidate simplifications of a failing value, simplest
    /// first. Strategies whose candidates cannot be computed from the
    /// value alone return nothing — the default — and instead override
    /// [`generate_shrinkable`].
    ///
    /// [`generate_shrinkable`]: Strategy::generate_shrinkable
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Draws one value wrapped in a [`Shrinkable`] carrying its shrink
    /// candidates. Consumes the RNG exactly as [`generate`] does, so both
    /// paths see identical case sequences. The default wraps the value as
    /// a terminal leaf; every shrinking combinator overrides this
    /// compositionally.
    ///
    /// [`generate`]: Strategy::generate
    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self::Value: Clone + 'static,
    {
        Shrinkable::leaf(self.generate(rng))
    }

    /// Maps generated values through a function.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map {
            source: self,
            f: Rc::new(f),
        }
    }
}

/// A generated value paired with a lazy source of simpler candidates —
/// this shim's lightweight stand-in for the real crate's value trees.
///
/// Each candidate is itself a `Shrinkable`, so minimization can continue
/// from whichever candidate the runner accepts. The `proptest!` runner
/// greedily accepts the first candidate that still fails and repeats
/// until no candidate fails (or its budget runs out).
pub struct Shrinkable<T> {
    value: T,
    candidates: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Shrinkable {
            value: self.value.clone(),
            candidates: Rc::clone(&self.candidates),
        }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// Wraps a value with a custom candidate producer.
    pub fn new(value: T, candidates: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Shrinkable {
            value,
            candidates: Rc::new(candidates),
        }
    }

    /// Wraps a value that cannot shrink.
    pub fn leaf(value: T) -> Self {
        Shrinkable::new(value, Vec::new)
    }

    /// The generated (or shrunk-to) value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Proposes simplifications of the value, simplest first, each ready
    /// to shrink further.
    pub fn shrink(&self) -> Vec<Shrinkable<T>> {
        (self.candidates)()
    }

    /// Lifts a strategy's value-to-value [`Strategy::shrink`] into a
    /// `Shrinkable`, re-wrapping every candidate recursively so each can
    /// shrink again.
    pub fn from_strategy<S>(strategy: S, value: T) -> Self
    where
        T: Clone,
        S: Strategy<Value = T> + Clone + 'static,
    {
        let seed = value.clone();
        Shrinkable::new(value, move || {
            strategy
                .shrink(&seed)
                .into_iter()
                .map(|candidate| Shrinkable::from_strategy(strategy.clone(), candidate))
                .collect()
        })
    }

    /// Maps the value through `f`, shrinking the *source* and re-applying
    /// `f` to every candidate — the mechanism behind shrink-through-
    /// `prop_map`: shrunk values stay inside the mapped strategy's image.
    pub fn map<U: 'static>(self, f: Rc<dyn Fn(T) -> U>) -> Shrinkable<U>
    where
        T: Clone,
    {
        let value = f(self.value.clone());
        let source = self;
        Shrinkable::new(value, move || {
            source
                .shrink()
                .into_iter()
                .map(|candidate| candidate.map(Rc::clone(&f)))
                .collect()
        })
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }

    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value>
    where
        Self::Value: Clone + 'static,
    {
        (**self).generate_shrinkable(rng)
    }
}

/// The empty argument tuple of a `proptest!` test with no inputs.
impl Strategy for () {
    type Value = ();

    fn generate(&self, _rng: &mut TestRng) -> Self::Value {}
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`]. The mapping is reference counted
/// so the [`Shrinkable`] candidates it yields can re-apply it lazily.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: Rc<F>,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T + 'static> Strategy for Map<S, F>
where
    S::Value: Clone + 'static,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }

    /// Shrink-through: generates the *source* shrinkably and re-applies
    /// the mapping to every candidate.
    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<T>
    where
        Self::Value: Clone + 'static,
    {
        let f: Rc<dyn Fn(S::Value) -> T> = self.f.clone();
        self.source.generate_shrinkable(rng).map(f)
    }
}

/// The result of `prop_oneof!`: a weighted choice among strategies with a
/// common value type. Reference counted so unions stay cheaply clonable.
pub struct Union<V> {
    options: Vec<(u32, Rc<dyn Strategy<Value = V>>)>,
    total_weight: u32,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total_weight: self.total_weight,
        }
    }
}

impl<V> Union<V> {
    /// Creates a union with no branches; `generate` panics until `or` adds
    /// at least one.
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
            total_weight: 0,
        }
    }

    /// Adds a branch with weight 1.
    pub fn or(self, strategy: impl Strategy<Value = V> + 'static) -> Self {
        self.or_weighted(1, strategy)
    }

    /// Adds a branch drawn proportionally to `weight`.
    pub fn or_weighted(
        mut self,
        weight: u32,
        strategy: impl Strategy<Value = V> + 'static,
    ) -> Self {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.options.push((weight, Rc::new(strategy)));
        self.total_weight += weight;
        self
    }

    fn pick(&self, rng: &mut TestRng) -> &dyn Strategy<Value = V> {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        let mut roll = rng.rng.gen_range(0..self.total_weight);
        for (weight, option) in &self.options {
            if roll < *weight {
                return option.as_ref();
            }
            roll -= weight;
        }
        unreachable!("weights cover the roll");
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.pick(rng).generate(rng)
    }

    /// Draws a branch exactly as `generate` does, then delegates to that
    /// branch — so a `prop_oneof!` counterexample shrinks within the
    /// branch that actually produced it.
    fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<V>
    where
        Self::Value: Clone + 'static,
    {
        self.pick(rng).generate_shrinkable(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }

            /// Halving shrink toward the range start: the minimum itself,
            /// the midpoint between minimum and value, and the predecessor
            /// — all strictly simpler, all still inside the range.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let pred = *value - 1;
                    if pred != self.start && pred != mid {
                        out.push(pred);
                    }
                }
                out
            }

            fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<$t> {
                Shrinkable::from_strategy(self.clone(), self.generate(rng))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone + 'static,)+
        {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }

            /// Coordinate-wise shrink: each candidate simplifies exactly
            /// one coordinate and clones the rest, so the runner minimizes
            /// every test argument independently.
            #[allow(non_snake_case)]
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                // For each coordinate in turn, substitute its candidates.
                macro_rules! coordinate {
                    ($i:tt) => {
                        for candidate in self.$i.shrink(&value.$i) {
                            let mut next = value.clone();
                            next.$i = candidate;
                            out.push(next);
                        }
                    };
                }
                impl_tuple_strategy!(@coords coordinate; $($name),+);
                out
            }

            /// Coordinate-wise shrink through each coordinate's own
            /// [`Shrinkable`], preserving shrink-through for mapped and
            /// union coordinates.
            #[allow(non_snake_case)]
            fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value> {
                #[allow(non_snake_case)]
                fn rebuild<$($name: Clone + 'static),+>(
                    parts: ($(Shrinkable<$name>,)+),
                ) -> Shrinkable<($($name,)+)> {
                    let value = {
                        let ($($name,)+) = &parts;
                        ($($name.value().clone(),)+)
                    };
                    Shrinkable::new(value, move || {
                        let mut out = Vec::new();
                        macro_rules! coordinate {
                            ($i:tt) => {
                                for candidate in parts.$i.shrink() {
                                    let mut next = parts.clone();
                                    next.$i = candidate;
                                    out.push(rebuild(next));
                                }
                            };
                        }
                        impl_tuple_strategy!(@coords coordinate; $($name),+);
                        out
                    })
                }
                let ($($name,)+) = self;
                rebuild(($($name.generate_shrinkable(rng),)+))
            }
        }
    };
    (@coords $mac:ident; A) => { $mac!(0); };
    (@coords $mac:ident; A, B) => { $mac!(0); $mac!(1); };
    (@coords $mac:ident; A, B, C) => { $mac!(0); $mac!(1); $mac!(2); };
    (@coords $mac:ident; A, B, C, D) => { $mac!(0); $mac!(1); $mac!(2); $mac!(3); };
    (@coords $mac:ident; A, B, C, D, E) => { $mac!(0); $mac!(1); $mac!(2); $mac!(3); $mac!(4); };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
