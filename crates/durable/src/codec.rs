//! Little-endian binary encoding primitives shared by the snapshot segment
//! and the WAL record payloads.
//!
//! Everything is length-prefixed and fixed-width little-endian; there is no
//! varint cleverness to get wrong. Decoding is *hostile-input safe*: every
//! read is bounds-checked and every error is a typed [`DecodeError`] with a
//! byte offset — recovery feeds these routines bytes that a crash (or the
//! fault injector) may have torn or flipped, and the contract is that they
//! return errors, never panic.

use std::fmt;

use swdb_model::Term;
use swdb_store::IdTriple;

/// A structural decoding failure: what was expected, and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset in the input at which decoding failed.
    pub offset: usize,
    /// What the decoder was trying to read.
    pub expected: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decode error at byte {}: expected {}",
            self.offset, self.expected
        )
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over an encoded byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Returns `Ok` only if every byte has been consumed.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError {
                offset: self.pos,
                expected: "end of input",
            })
        }
    }

    fn take(&mut self, n: usize, expected: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError {
                offset: self.pos,
                expected,
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string. The length is validated
    /// against the remaining input *before* allocation, so a corrupted
    /// length cannot balloon memory.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError {
                offset: self.pos,
                expected: "string bytes",
            });
        }
        let raw = self.take(len, "string bytes")?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => Err(DecodeError {
                offset: self.pos - len,
                expected: "utf-8 string",
            }),
        }
    }

    /// Reads a tagged [`Term`] (0 = IRI, 1 = blank).
    pub fn term(&mut self) -> Result<Term, DecodeError> {
        let tag = self.u8()?;
        let text = self.string()?;
        match tag {
            0 => Ok(Term::iri(text)),
            1 => Ok(Term::blank(text)),
            _ => Err(DecodeError {
                offset: self.pos,
                expected: "term tag 0|1",
            }),
        }
    }

    /// Reads an [`IdTriple`] (three u32s).
    pub fn id_triple(&mut self) -> Result<IdTriple, DecodeError> {
        Ok((self.u32()?, self.u32()?, self.u32()?))
    }

    /// Reads a length-prefixed vector via `item`. The count is sanity
    /// checked against the minimum encoded size of one item so corrupted
    /// counts fail fast instead of allocating.
    pub fn vec<T>(
        &mut self,
        min_item_bytes: usize,
        mut item: impl FnMut(&mut Self) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let count = self.u32()? as usize;
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(DecodeError {
                offset: self.pos,
                expected: "vector items",
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(item(self)?);
        }
        Ok(out)
    }
}

/// An append-only encoder; the write-side mirror of [`Reader`].
#[derive(Default)]
pub struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    /// An empty encoder.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long to encode"));
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Appends a tagged [`Term`].
    pub fn term(&mut self, term: &Term) {
        match term {
            Term::Iri(iri) => {
                self.u8(0);
                self.string(iri.as_str());
            }
            Term::Blank(blank) => {
                self.u8(1);
                self.string(blank.as_str());
            }
        }
    }

    /// Appends an [`IdTriple`].
    pub fn id_triple(&mut self, (s, p, o): IdTriple) {
        self.u32(s);
        self.u32(p);
        self.u32(o);
    }

    /// Appends a length-prefixed vector via `item`.
    pub fn vec<T>(&mut self, items: &[T], mut item: impl FnMut(&mut Self, &T)) {
        self.u32(u32::try_from(items.len()).expect("vector too long to encode"));
        for it in items {
            item(self, it);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_strings_terms_and_triples_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.string("héllo");
        w.term(&Term::iri("ex:a"));
        w.term(&Term::blank("b0"));
        w.id_triple((1, 2, 3));
        w.vec(&[10u32, 20, 30], |w, &v| w.u32(v));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.term().unwrap(), Term::iri("ex:a"));
        assert_eq!(r.term().unwrap(), Term::blank("b0"));
        assert_eq!(r.id_triple().unwrap(), (1, 2, 3));
        assert_eq!(r.vec(4, |r| r.u32()).unwrap(), vec![10, 20, 30]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_a_typed_error_not_a_panic() {
        let mut w = Writer::new();
        w.string("some payload text");
        let bytes = w.into_bytes();
        // Every proper prefix fails cleanly.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.string().is_err(), "prefix of {cut} bytes should fail");
        }
    }

    #[test]
    fn corrupted_lengths_do_not_allocate_or_panic() {
        // A string length far beyond the buffer.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).string().is_err());

        // A vector count far beyond the buffer.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).vec(12, |r| r.id_triple()).is_err());
    }

    #[test]
    fn bad_term_tag_and_bad_utf8_are_errors() {
        let mut w = Writer::new();
        w.u8(9); // invalid tag
        w.string("x");
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).term().is_err());

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]); // invalid utf-8
        assert!(Reader::new(&bytes).string().is_err());
    }

    #[test]
    fn unconsumed_trailing_bytes_are_rejected_by_finish() {
        let mut w = Writer::new();
        w.u32(1);
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }
}
