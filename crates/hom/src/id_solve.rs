//! The id-space backtracking matcher.
//!
//! The string-space [`crate::Solver`] joins cloned [`swdb_model::Term`]s
//! through a per-call [`crate::GraphIndex`]. This module is its
//! dictionary-encoded generalization: patterns are triples of
//! [`IdPatternTerm`]s (interned constants or dense variable slots), a
//! binding is a `[Option<TermId>]` slot array, and candidates are visited in
//! place via range scans over an [`swdb_store::IdIndex`] — no term cloning,
//! no string hashing, no materialized candidate `Vec`.
//!
//! The target of the search is abstracted behind [`IdTarget`] so the same
//! solver drives three different consumers:
//!
//! * `swdb-query::exec` joins compiled query bodies against a plain
//!   [`IdIndex`] (the cached evaluation index of the facade's read path) —
//!   or against an [`Overlay`], the layered view `base ∪ added − removed`
//!   that evaluates a *scoped* delta (a query premise) over a published
//!   index without cloning or mutating it;
//! * `swdb-normal::id_core` runs the *retraction search* of the core
//!   computation — an endomorphism avoiding one triple — against an
//!   [`Avoiding`] view that masks the avoided triple out of any target
//!   (Definition 3.7: `G` is not lean iff some `μ : G → G − {t}` exists);
//!   since [`Avoiding`] is generic, the same search also cores overlays.
//!
//! Join ordering is the shared [`crate::most_constrained`] rule; selectivity
//! comes from [`IdTarget::candidate_count`] (a range count, no allocation).

use std::collections::BTreeSet;
use std::ops::ControlFlow;

use swdb_obs::Budget;
use swdb_store::{IdIndex, IdPattern, IdTriple, TermId};

/// One position of an id-space triple pattern: an interned constant or a
/// dense variable slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdPatternTerm {
    /// A constant, already resolved to its dictionary id.
    Const(TermId),
    /// A variable, identified by its slot in the binding array.
    Var(usize),
}

/// A triple pattern over [`IdPatternTerm`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdTriplePattern {
    /// Subject position.
    pub subject: IdPatternTerm,
    /// Predicate position.
    pub predicate: IdPatternTerm,
    /// Object position.
    pub object: IdPatternTerm,
}

impl IdTriplePattern {
    /// Resolves the pattern under a partial binding to an [`IdPattern`]
    /// scan: constants and bound slots become bound positions, unbound
    /// slots become wildcards.
    pub fn to_scan(self, binding: &[Option<TermId>]) -> IdPattern {
        let resolve = |t: IdPatternTerm| match t {
            IdPatternTerm::Const(id) => Some(id),
            IdPatternTerm::Var(slot) => binding[slot],
        };
        (
            resolve(self.subject),
            resolve(self.predicate),
            resolve(self.object),
        )
    }
}

/// What an [`IdSolver`] searches against: anything that can count and
/// enumerate the triples matching an [`IdPattern`].
/// A target is also required to be [`Sync`]: every implementor is a purely
/// immutable snapshot view (shared references into `BTreeSet`-backed
/// indexes, no interior mutability), and the parallel closure-propagation
/// workers in `swdb-reason` share one `&impl IdTarget` across
/// `std::thread::scope` threads. The bound makes that sharing a compile-time
/// guarantee instead of a convention.
pub trait IdTarget: Sync {
    /// Counts the triples matching the pattern without materializing them —
    /// the selectivity probe behind most-constrained-first join ordering.
    fn candidate_count(&self, pattern: IdPattern) -> usize;

    /// Visits every triple matching the pattern; the visitor returns `true`
    /// to keep scanning, `false` to stop early.
    fn scan_while(&self, pattern: IdPattern, visit: impl FnMut(IdTriple) -> bool);

    /// Membership probe. The default routes through [`candidate_count`] on
    /// the fully-bound pattern; implementors with a cheaper direct probe
    /// should override it.
    ///
    /// [`candidate_count`]: IdTarget::candidate_count
    fn contains(&self, (s, p, o): IdTriple) -> bool {
        self.candidate_count((Some(s), Some(p), Some(o))) > 0
    }
}

impl IdTarget for IdIndex {
    fn candidate_count(&self, pattern: IdPattern) -> usize {
        IdIndex::candidate_count(self, pattern)
    }

    fn scan_while(&self, pattern: IdPattern, visit: impl FnMut(IdTriple) -> bool) {
        IdIndex::scan_while(self, pattern, visit)
    }

    fn contains(&self, ids: IdTriple) -> bool {
        IdIndex::contains(self, ids)
    }
}

/// An [`IdTarget`] with one triple masked out: the target `G − {t}` of the
/// retraction search. Masking beats cloning — the non-leanness probe runs
/// once per blank triple per round, and a clone per probe is exactly the
/// quadratic blowup the string-space `find_map_avoiding` pays. Generic over
/// the underlying target so the same view drives the durable core engine
/// (over the published [`IdIndex`]) and the scoped premise-overlay core
/// (over an [`Overlay`]).
pub struct Avoiding<'a, T: IdTarget = IdIndex> {
    target: &'a T,
    avoid: IdTriple,
}

impl<'a, T: IdTarget> Avoiding<'a, T> {
    /// Creates the masked view `target − {avoid}`.
    pub fn new(target: &'a T, avoid: IdTriple) -> Self {
        Avoiding { target, avoid }
    }

    fn masks(&self, (s, p, o): IdPattern) -> bool {
        s.is_none_or(|s| s == self.avoid.0)
            && p.is_none_or(|p| p == self.avoid.1)
            && o.is_none_or(|o| o == self.avoid.2)
            && self.target.contains(self.avoid)
    }
}

impl<T: IdTarget> IdTarget for Avoiding<'_, T> {
    fn candidate_count(&self, pattern: IdPattern) -> usize {
        let raw = self.target.candidate_count(pattern);
        raw - usize::from(self.masks(pattern))
    }

    fn scan_while(&self, pattern: IdPattern, mut visit: impl FnMut(IdTriple) -> bool) {
        self.target
            .scan_while(pattern, |t| t == self.avoid || visit(t))
    }

    fn contains(&self, ids: IdTriple) -> bool {
        ids != self.avoid && self.target.contains(ids)
    }
}

/// The empty removal set shared by overlays constructed without removals.
static EMPTY_REMOVALS: BTreeSet<IdTriple> = BTreeSet::new();

/// A layered view `base ∪ added − removed` over a published [`IdIndex`]:
/// the evaluation target of a *scoped* delta. The base index stays exactly
/// as published — the overlay contributes the delta's additions and masks
/// the base triples the delta invalidates — so a transient graph (a query
/// premise and its consequences) can be queried over `D + P` without
/// cloning or mutating the durable structures for `D`.
///
/// Invariants the constructor's caller maintains: `added` is disjoint from
/// `base`, and `removed ⊆ base`. Counts then compose exactly.
pub struct Overlay<'a> {
    base: &'a IdIndex,
    added: &'a IdIndex,
    removed: &'a BTreeSet<IdTriple>,
}

impl<'a> Overlay<'a> {
    /// A purely additive overlay: `base ∪ added`.
    pub fn new(base: &'a IdIndex, added: &'a IdIndex) -> Self {
        Overlay {
            base,
            added,
            removed: &EMPTY_REMOVALS,
        }
    }

    /// The full layered view `base ∪ added − removed`.
    pub fn with_removed(
        base: &'a IdIndex,
        added: &'a IdIndex,
        removed: &'a BTreeSet<IdTriple>,
    ) -> Self {
        Overlay {
            base,
            added,
            removed,
        }
    }
}

fn pattern_admits((s, p, o): IdPattern, (ts, tp, to): IdTriple) -> bool {
    s.is_none_or(|s| s == ts) && p.is_none_or(|p| p == tp) && o.is_none_or(|o| o == to)
}

impl IdTarget for Overlay<'_> {
    fn candidate_count(&self, pattern: IdPattern) -> usize {
        // `removed ⊆ base` and `added ∩ base = ∅`, so the three counts
        // compose without double counting. The removal set is the handful
        // of base triples a scoped delta folds away, so a linear filter
        // beats indexing it three ways.
        let masked = if self.removed.is_empty() {
            0
        } else {
            self.removed
                .iter()
                .filter(|&&t| pattern_admits(pattern, t))
                .count()
        };
        self.base.candidate_count(pattern) + self.added.candidate_count(pattern) - masked
    }

    fn scan_while(&self, pattern: IdPattern, mut visit: impl FnMut(IdTriple) -> bool) {
        let mut stopped = false;
        self.base.scan_while(pattern, |t| {
            if self.removed.contains(&t) {
                return true;
            }
            let keep = visit(t);
            stopped = !keep;
            keep
        });
        if !stopped {
            self.added.scan_while(pattern, visit);
        }
    }

    fn contains(&self, ids: IdTriple) -> bool {
        self.added.contains(ids) || (self.base.contains(ids) && !self.removed.contains(&ids))
    }
}

/// Records the join order an [`IdSolver`] actually chose: the original
/// pattern indices in the order of the search's **first descent** to each
/// depth. Pattern selection is dynamic (most-constrained-first against live
/// candidate counts), so the order is a run-time fact, not a compile-time
/// plan — this log is how `EXPLAIN` surfaces it without changing the search.
///
/// Backtracking can re-enter a depth with different bindings and pick a
/// different pattern there; the log keeps the first choice per depth, which
/// is the order the initial (most selective) probe path took.
#[derive(Debug, Default)]
pub struct JoinOrderLog {
    order: std::cell::RefCell<Vec<usize>>,
}

impl JoinOrderLog {
    /// An empty log.
    pub fn new() -> Self {
        JoinOrderLog::default()
    }

    /// Records `pattern_index` as the choice at `depth` unless that depth
    /// already has one.
    fn record(&self, depth: usize, pattern_index: usize) {
        let mut order = self.order.borrow_mut();
        if order.len() == depth {
            order.push(pattern_index);
        }
    }

    /// The recorded order so far (original pattern indices, outermost
    /// first).
    pub fn order(&self) -> Vec<usize> {
        self.order.borrow().clone()
    }

    /// Takes the recorded order, resetting the log for reuse.
    pub fn take(&self) -> Vec<usize> {
        std::mem::take(&mut *self.order.borrow_mut())
    }
}

/// A prepared id-space matcher: a pattern list with `slots` variables
/// against one [`IdTarget`].
///
/// The search mirrors [`crate::Solver`] — dynamic most-constrained-first
/// pattern selection, backtracking over candidates — entirely in id space.
///
/// An optional cooperative [`Budget`] (see [`IdSolver::with_budget`])
/// bounds the backtracking: the search spends one unit per candidate
/// visited and one per selectivity probe, and unwinds as soon as the
/// budget trips. An exhausted search that found no solution means
/// *unknown*, not *absent* — callers must check [`Budget::is_exhausted`]
/// before concluding non-existence. Solutions found before exhaustion are
/// genuine. Without a budget the search is exactly as before (one branch
/// per call).
pub struct IdSolver<'a, T: IdTarget> {
    patterns: &'a [IdTriplePattern],
    slots: usize,
    target: &'a T,
    recorder: Option<&'a JoinOrderLog>,
    budget: Option<&'a Budget>,
    order: Option<&'a [usize]>,
}

impl<'a, T: IdTarget> IdSolver<'a, T> {
    /// Creates a solver for the given patterns (with variable slots
    /// `0..slots`) and target.
    pub fn new(patterns: &'a [IdTriplePattern], slots: usize, target: &'a T) -> Self {
        IdSolver {
            patterns,
            slots,
            target,
            recorder: None,
            budget: None,
            order: None,
        }
    }

    /// Like [`IdSolver::new`], additionally recording the join order the
    /// search chooses into `recorder` (see [`JoinOrderLog`]).
    pub fn with_recorder(
        patterns: &'a [IdTriplePattern],
        slots: usize,
        target: &'a T,
        recorder: &'a JoinOrderLog,
    ) -> Self {
        IdSolver {
            patterns,
            slots,
            target,
            recorder: Some(recorder),
            budget: None,
            order: None,
        }
    }

    /// Executes a **static join plan** instead of the dynamic
    /// most-constrained-first selection: `order` lists the original pattern
    /// indices in execution order (a permutation of `0..patterns.len()`).
    /// The search then issues **zero** selectivity probes — a planner has
    /// already paid them once — while the candidate scans, repeated-slot
    /// consistency checks, and budget accounting stay identical. Any
    /// permutation yields the same solution *set* (join order is
    /// correctness-neutral), only the traversal cost differs.
    pub fn with_order(mut self, order: &'a [usize]) -> Self {
        debug_assert_eq!(order.len(), self.patterns.len());
        self.order = Some(order);
        self
    }

    /// Like [`IdSolver::with_recorder`] as a builder: records the join
    /// order the search takes (planned or dynamic) into `recorder`.
    pub fn recording_into(mut self, recorder: &'a JoinOrderLog) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Bounds the search by a cooperative budget, checked at probe
    /// granularity (each candidate scanned and each selectivity probe
    /// spends one unit). The budget is shared state: one [`Budget`] can
    /// govern many solver calls, which is how a whole retraction-search
    /// round gets one slice.
    pub fn with_budget(mut self, budget: &'a Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Enumerates complete solutions, invoking `visit` with the slot array
    /// (every slot `Some`). The visitor stops the enumeration by returning
    /// [`ControlFlow::Break`].
    pub fn for_each_solution<B>(
        &self,
        visit: &mut impl FnMut(&[Option<TermId>]) -> ControlFlow<B>,
    ) -> Option<B> {
        let mut binding: Vec<Option<TermId>> = vec![None; self.slots];
        let outcome = if let Some(order) = self.order {
            self.search_planned(0, order, &mut binding, visit)
        } else {
            let mut remaining: Vec<&IdTriplePattern> = self.patterns.iter().collect();
            self.search(&mut remaining, &mut binding, visit)
        };
        match outcome {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    /// The static-plan counterpart of [`IdSolver::search`]: the pattern at
    /// each depth is `order[depth]`, so no per-node selection round and no
    /// selectivity probes happen. Budget accounting keeps the per-candidate
    /// unit plus one unit per node entered (the probe units the dynamic
    /// path would have spent are exactly what the plan saves).
    fn search_planned<B>(
        &self,
        depth: usize,
        order: &[usize],
        binding: &mut Vec<Option<TermId>>,
        visit: &mut impl FnMut(&[Option<TermId>]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        let Some(&pattern_index) = order.get(depth) else {
            return visit(binding);
        };
        if let Some(budget) = self.budget {
            if !budget.spend(1) {
                return ControlFlow::Continue(());
            }
        }
        let chosen = self.patterns[pattern_index];
        if let Some(log) = self.recorder {
            log.record(depth, pattern_index);
        }
        let mut broke: Option<B> = None;
        self.target.scan_while(chosen.to_scan(binding), |triple| {
            if self.budget.is_some_and(|b| !b.spend(1)) {
                return false;
            }
            let Some((newly_bound, bound_count)) = try_bind(&chosen, triple, binding) else {
                return true;
            };
            let keep_scanning = match self.search_planned(depth + 1, order, binding, visit) {
                ControlFlow::Break(b) => {
                    broke = Some(b);
                    false
                }
                ControlFlow::Continue(()) => true,
            };
            for &slot in &newly_bound[..bound_count] {
                binding[slot] = None;
            }
            keep_scanning
        });
        match broke {
            Some(b) => ControlFlow::Break(b),
            None => ControlFlow::Continue(()),
        }
    }

    fn search<B>(
        &self,
        remaining: &mut Vec<&'a IdTriplePattern>,
        binding: &mut Vec<Option<TermId>>,
        visit: &mut impl FnMut(&[Option<TermId>]) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if remaining.is_empty() {
            return visit(binding);
        }
        // One unit per selectivity probe issued below plus one for the
        // selection round itself; an exhausted budget abandons this branch
        // (and, since exhaustion is sticky, every enclosing one).
        if let Some(budget) = self.budget {
            if !budget.spend(remaining.len() as u64 + 1) {
                return ControlFlow::Continue(());
            }
        }
        let depth = self.patterns.len() - remaining.len();
        let best_pos = crate::most_constrained(remaining, |p| {
            self.target.candidate_count(p.to_scan(binding))
        })
        .expect("remaining not empty");
        let chosen = remaining.swap_remove(best_pos);
        if let Some(log) = self.recorder {
            // Recover the original pattern index from the reference's offset
            // into the pattern slice (safe pointer arithmetic on addresses).
            let offset =
                chosen as *const IdTriplePattern as usize - self.patterns.as_ptr() as usize;
            log.record(depth, offset / std::mem::size_of::<IdTriplePattern>());
        }

        let mut broke: Option<B> = None;
        self.target.scan_while(chosen.to_scan(binding), |triple| {
            // One budget unit per candidate visited; stop the scan as
            // soon as the slice is gone.
            if self.budget.is_some_and(|b| !b.spend(1)) {
                return false;
            }
            let Some((newly_bound, bound_count)) = try_bind(chosen, triple, binding) else {
                return true;
            };
            let keep_scanning = match self.search(remaining, binding, visit) {
                ControlFlow::Break(b) => {
                    broke = Some(b);
                    false
                }
                ControlFlow::Continue(()) => true,
            };
            for &slot in &newly_bound[..bound_count] {
                binding[slot] = None;
            }
            keep_scanning
        });
        // Restore the pattern list order-insensitively (selection is
        // dynamic, so only the set matters).
        remaining.push(chosen);
        let last = remaining.len() - 1;
        remaining.swap(best_pos.min(last), last);
        match broke {
            Some(b) => ControlFlow::Break(b),
            None => ControlFlow::Continue(()),
        }
    }

    /// Returns `true` if at least one solution exists.
    pub fn exists(&self) -> bool {
        self.for_each_solution(&mut |_slots| ControlFlow::Break(()))
            .is_some()
    }

    /// Returns the first complete slot assignment, if any.
    pub fn first_solution(&self) -> Option<Vec<TermId>> {
        self.for_each_solution(&mut |slots| {
            ControlFlow::Break(
                slots
                    .iter()
                    .map(|slot| slot.expect("complete solution"))
                    .collect(),
            )
        })
    }
}

/// Binds the unbound slots of `chosen` to the candidate triple's positions.
/// Bound positions already match by construction of the scan; a repeated
/// variable's second occurrence is checked against the binding its first
/// occurrence just made. Returns the newly bound slots on success; on a
/// consistency clash the partial binds are undone and `None` is returned.
fn try_bind(
    chosen: &IdTriplePattern,
    (s, p, o): IdTriple,
    binding: &mut [Option<TermId>],
) -> Option<([usize; 3], usize)> {
    let mut newly_bound = [usize::MAX; 3];
    let mut bound_count = 0;
    for (position, actual) in [
        (chosen.subject, s),
        (chosen.predicate, p),
        (chosen.object, o),
    ] {
        if let IdPatternTerm::Var(slot) = position {
            match binding[slot] {
                Some(existing) if existing == actual => {}
                Some(_) => {
                    for &undo in &newly_bound[..bound_count] {
                        binding[undo] = None;
                    }
                    return None;
                }
                None => {
                    binding[slot] = Some(actual);
                    newly_bound[bound_count] = slot;
                    bound_count += 1;
                }
            }
        }
    }
    Some((newly_bound, bound_count))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> IdIndex {
        let mut index = IdIndex::new();
        for t in [(1, 10, 2), (1, 10, 3), (2, 11, 3), (4, 10, 2)] {
            index.insert(t);
        }
        index
    }

    const fn var(slot: usize) -> IdPatternTerm {
        IdPatternTerm::Var(slot)
    }

    const fn constant(id: TermId) -> IdPatternTerm {
        IdPatternTerm::Const(id)
    }

    fn pattern(s: IdPatternTerm, p: IdPatternTerm, o: IdPatternTerm) -> IdTriplePattern {
        IdTriplePattern {
            subject: s,
            predicate: p,
            object: o,
        }
    }

    #[test]
    fn joins_over_a_plain_index() {
        let idx = index();
        // (?X, 10, ?Y), (?Y, 11, ?Z): 1 -10-> 3? no 3 -11-> …; 1 -10-> 2,
        // 2 -11-> 3 matches.
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        let solver = IdSolver::new(&patterns, 3, &idx);
        assert!(solver.exists());
        assert_eq!(solver.first_solution(), Some(vec![1, 2, 3]));
    }

    #[test]
    fn avoiding_view_masks_exactly_one_triple() {
        let idx = index();
        let avoiding = Avoiding::new(&idx, (1, 10, 2));
        assert_eq!(avoiding.candidate_count((Some(1), Some(10), None)), 1);
        assert_eq!(idx.candidate_count((Some(1), Some(10), None)), 2);
        let mut seen = Vec::new();
        avoiding.scan_while((None, Some(10), None), |t| {
            seen.push(t);
            true
        });
        // POS order: (10, 2, 4) sorts before (10, 3, 1).
        assert_eq!(seen, vec![(4, 10, 2), (1, 10, 3)]);
        // A pattern that cannot match the avoided triple is uncorrected.
        assert_eq!(avoiding.candidate_count((Some(2), None, None)), 1);
    }

    #[test]
    fn avoidance_search_finds_the_redundancy_witness() {
        // The id rendering of Example 3.8 G1: (a, p, X), (a, p, Y) with
        // a=1, p=10, X=2, Y=3 — avoiding (1, 10, 2) maps X to Y.
        let mut idx = IdIndex::new();
        idx.insert((1, 10, 2));
        idx.insert((1, 10, 3));
        let patterns = [
            pattern(constant(1), constant(10), var(0)),
            pattern(constant(1), constant(10), var(1)),
        ];
        let avoiding = Avoiding::new(&idx, (1, 10, 2));
        let solution = IdSolver::new(&patterns, 2, &avoiding)
            .first_solution()
            .expect("X and Y both map to Y");
        assert_eq!(solution, vec![3, 3]);
        // A lean variant — distinguishable continuations — has no witness.
        idx.insert((2, 11, 5));
        idx.insert((3, 12, 5));
        let patterns = [
            pattern(constant(1), constant(10), var(0)),
            pattern(var(0), constant(11), constant(5)),
        ];
        let avoiding = Avoiding::new(&idx, (1, 10, 2));
        assert!(!IdSolver::new(&patterns, 1, &avoiding).exists());
    }

    #[test]
    fn overlay_layers_additions_and_removals_over_the_base() {
        let idx = index();
        let mut added = IdIndex::new();
        added.insert((9, 10, 2));
        let removed: BTreeSet<IdTriple> = [(1, 10, 2)].into_iter().collect();
        let overlay = Overlay::with_removed(&idx, &added, &removed);
        assert!(overlay.contains((9, 10, 2)), "added triple is visible");
        assert!(!overlay.contains((1, 10, 2)), "removed triple is masked");
        assert!(overlay.contains((1, 10, 3)), "base survives");
        // Counts compose: base has 3 (p=10), minus 1 removed, plus 1 added.
        assert_eq!(overlay.candidate_count((None, Some(10), None)), 3);
        let mut seen: Vec<IdTriple> = Vec::new();
        overlay.scan_while((None, Some(10), None), |t| {
            seen.push(t);
            true
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 10, 3), (4, 10, 2), (9, 10, 2)]);
        // Early exit stops before the added layer is scanned.
        let mut first = Vec::new();
        overlay.scan_while((None, Some(10), None), |t| {
            first.push(t);
            false
        });
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn solver_joins_across_the_overlay_layers() {
        // (?X, 10, ?Y), (?Y, 11, ?Z) where the second hop only exists in
        // the added layer.
        let idx = index();
        let mut added = IdIndex::new();
        added.insert((3, 11, 7));
        let removed = BTreeSet::new();
        let overlay = Overlay::with_removed(&idx, &added, &removed);
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        let solver = IdSolver::new(&patterns, 3, &overlay);
        let mut solutions: Vec<Vec<TermId>> = Vec::new();
        solver.for_each_solution(&mut |slots| {
            solutions.push(slots.iter().map(|s| s.unwrap()).collect());
            ControlFlow::<()>::Continue(())
        });
        solutions.sort();
        assert_eq!(
            solutions,
            vec![vec![1, 2, 3], vec![1, 3, 7], vec![4, 2, 3]],
            "the [1, 3, 7] chain crosses from the base into the added layer"
        );
    }

    #[test]
    fn avoiding_composes_with_the_overlay() {
        let idx = index();
        let mut added = IdIndex::new();
        added.insert((1, 10, 9));
        let overlay = Overlay::new(&idx, &added);
        let avoiding = Avoiding::new(&overlay, (1, 10, 9));
        assert!(!avoiding.contains((1, 10, 9)));
        assert_eq!(avoiding.candidate_count((Some(1), Some(10), None)), 2);
        let mut seen = Vec::new();
        avoiding.scan_while((Some(1), Some(10), None), |t| {
            seen.push(t);
            true
        });
        assert_eq!(seen, vec![(1, 10, 2), (1, 10, 3)]);
    }

    #[test]
    fn repeated_slots_force_equality() {
        let idx = index();
        let loops = [pattern(var(0), var(1), var(0))];
        assert!(!IdSolver::new(&loops, 2, &idx).exists());
        let mut with_loop = index();
        with_loop.insert((7, 10, 7));
        assert_eq!(
            IdSolver::new(&loops, 2, &with_loop).first_solution(),
            Some(vec![7, 10])
        );
    }

    #[test]
    fn recorder_logs_first_descent_join_order() {
        let idx = index();
        // (?X, 10, ?Y) has 3 candidates, (?Y, 11, ?Z) has 1 — the most-
        // constrained rule must descend into the second pattern first.
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        let log = JoinOrderLog::new();
        let solver = IdSolver::with_recorder(&patterns, 3, &idx, &log);
        assert!(solver.exists());
        assert_eq!(log.order(), vec![1, 0]);
        assert_eq!(log.take(), vec![1, 0]);
        assert!(log.order().is_empty(), "take resets the log");
    }

    #[test]
    fn planned_order_yields_the_same_solutions_as_dynamic_selection() {
        let idx = index();
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        let mut dynamic: Vec<Vec<TermId>> = Vec::new();
        IdSolver::new(&patterns, 3, &idx).for_each_solution(&mut |slots| {
            dynamic.push(slots.iter().map(|s| s.unwrap()).collect());
            ControlFlow::<()>::Continue(())
        });
        dynamic.sort();
        // Every permutation — including the anti-selective one — agrees.
        for order in [[0, 1], [1, 0]] {
            let mut planned: Vec<Vec<TermId>> = Vec::new();
            IdSolver::new(&patterns, 3, &idx)
                .with_order(&order)
                .for_each_solution(&mut |slots| {
                    planned.push(slots.iter().map(|s| s.unwrap()).collect());
                    ControlFlow::<()>::Continue(())
                });
            planned.sort();
            assert_eq!(planned, dynamic, "order {order:?} changed the answers");
        }
    }

    #[test]
    fn planned_order_is_what_the_recorder_sees() {
        let idx = index();
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        // Deliberately the opposite of what dynamic selection would pick.
        let order = [0, 1];
        let log = JoinOrderLog::new();
        let solver = IdSolver::new(&patterns, 3, &idx)
            .with_order(&order)
            .recording_into(&log);
        assert!(solver.exists());
        assert_eq!(log.order(), vec![0, 1]);
    }

    #[test]
    fn planned_search_respects_the_budget() {
        let mut idx = IdIndex::new();
        for o in 0..100 {
            idx.insert((1, 10, o));
        }
        let patterns = [pattern(constant(1), constant(10), var(0))];
        let order = [0];
        let budget = Budget::steps(4);
        let solver = IdSolver::new(&patterns, 1, &idx)
            .with_order(&order)
            .with_budget(&budget);
        let mut seen = 0usize;
        solver.for_each_solution(&mut |_slots| {
            seen += 1;
            ControlFlow::<()>::Continue(())
        });
        assert!(budget.is_exhausted());
        assert!(seen > 0 && seen < 100, "partial: got {seen} of 100");
    }

    #[test]
    fn empty_pattern_list_has_the_empty_solution() {
        let idx = index();
        let solver = IdSolver::new(&[], 0, &idx);
        assert!(solver.exists());
        assert_eq!(solver.first_solution(), Some(vec![]));
    }

    #[test]
    fn a_tripped_budget_stops_the_search_and_reports_unknown() {
        let idx = index();
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        // Unbudgeted, the join succeeds (see joins_over_a_plain_index).
        assert!(IdSolver::new(&patterns, 3, &idx).exists());
        // With a one-step budget the search cannot even finish the first
        // selection round: it stops, and the budget says so.
        let budget = Budget::steps(1);
        let solver = IdSolver::new(&patterns, 3, &idx).with_budget(&budget);
        assert!(!solver.exists(), "search abandoned, no witness produced");
        assert!(
            budget.is_exhausted(),
            "the caller can tell 'unknown' from 'absent'"
        );
    }

    #[test]
    fn a_generous_budget_changes_nothing() {
        let idx = index();
        let patterns = [
            pattern(var(0), constant(10), var(1)),
            pattern(var(1), constant(11), var(2)),
        ];
        let budget = Budget::steps(1_000_000);
        let solver = IdSolver::new(&patterns, 3, &idx).with_budget(&budget);
        assert_eq!(solver.first_solution(), Some(vec![1, 2, 3]));
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn solutions_found_before_exhaustion_are_kept() {
        // One pattern, many candidates: the first candidate is reached
        // within budget even though a full enumeration would not be.
        let mut idx = IdIndex::new();
        for o in 0..100 {
            idx.insert((1, 10, o));
        }
        let patterns = [pattern(constant(1), constant(10), var(0))];
        let budget = Budget::steps(4);
        let solver = IdSolver::new(&patterns, 1, &idx).with_budget(&budget);
        assert_eq!(solver.first_solution(), Some(vec![0]));
        let budget = Budget::steps(4);
        let solver = IdSolver::new(&patterns, 1, &idx).with_budget(&budget);
        let mut seen = 0usize;
        solver.for_each_solution(&mut |_slots| {
            seen += 1;
            ControlFlow::<()>::Continue(())
        });
        assert!(budget.is_exhausted());
        assert!(
            seen > 0 && seen < 100,
            "partial enumeration: got {seen} of 100"
        );
    }
}
