//! # swdb-hom — homomorphism and pattern-matching engine
//!
//! The algorithmic heart of the reproduction: searching for maps
//! `μ : G1 → G2` between RDF graphs (§2.1, §2.4 of *Foundations of Semantic
//! Web Databases*) and, more generally, matching conjunctions of triple
//! patterns with variables against a target graph. Everything above this
//! crate (entailment, leanness, cores, query answering, containment) is a
//! thin layer of orchestration over these searches.
//!
//! * [`pattern`] — triple patterns, pattern graphs, bindings (valuations),
//!   and the `Q_G` translation of §2.4.
//! * [`index`] — per-predicate / per-position indexes of the target graph.
//! * [`solve`] — the backtracking matcher with dynamic most-constrained-first
//!   join ordering.
//! * [`id_solve`] — the dictionary-encoded generalization of the matcher:
//!   `TermId` patterns joined directly over an `swdb_store::IdIndex`, with
//!   pluggable targets (including the `G − {t}` view of the retraction
//!   search).
//! * [`acyclic`] — blank-induced-cycle detection, GYO α-acyclicity, and the
//!   polynomial semijoin evaluation for acyclic patterns (the paper's
//!   polynomial special cases of entailment).
//! * [`maps`] — RDF-map search built on top of the matcher.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acyclic;
pub mod id_solve;
pub mod index;
pub mod maps;
pub mod pattern;
pub mod solve;

pub use acyclic::{acyclic_exists, has_blank_induced_cycle, is_acyclic_pattern};
pub use id_solve::{
    Avoiding, IdPatternTerm, IdSolver, IdTarget, IdTriplePattern, JoinOrderLog, Overlay,
};
pub use index::GraphIndex;
pub use maps::{
    all_maps, exists_map, exists_map_indexed, find_map, find_map_avoiding, find_map_indexed,
    for_each_map,
};
pub use pattern::{
    parse_pattern_term, pattern, pattern_graph, Binding, PatternGraph, PatternTerm, TriplePattern,
    Variable,
};
pub use solve::{match_pattern, most_constrained, pattern_matches, Solver, DEFAULT_SOLUTION_LIMIT};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use swdb_model::{Graph, Term, Triple};

    use crate::maps::{exists_map, find_map};

    fn arb_graph(max_triples: usize) -> impl Strategy<Value = Graph> {
        let term = prop_oneof![
            (0u8..5).prop_map(|i| Term::iri(format!("ex:n{i}"))),
            (0u8..3).prop_map(|i| Term::blank(format!("B{i}"))),
        ];
        let pred = (0u8..2).prop_map(|i| swdb_model::Iri::new(format!("ex:p{i}")));
        proptest::collection::vec((term.clone(), pred, term), 0..=max_triples).prop_map(|ts| {
            ts.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn found_maps_are_valid(g1 in arb_graph(6), g2 in arb_graph(6)) {
            if let Some(map) = find_map(&g1, &g2) {
                prop_assert!(map.is_map_between(&g1, &g2));
            }
        }

        #[test]
        fn exists_and_find_agree(g1 in arb_graph(5), g2 in arb_graph(5)) {
            prop_assert_eq!(exists_map(&g1, &g2), find_map(&g1, &g2).is_some());
        }

        #[test]
        fn every_graph_maps_into_itself(g in arb_graph(8)) {
            prop_assert!(exists_map(&g, &g));
        }

        #[test]
        fn subgraphs_map_into_supergraphs(g in arb_graph(8)) {
            let half: Graph = g.iter().take(g.len() / 2).cloned().collect();
            prop_assert!(exists_map(&half, &g));
        }

        #[test]
        fn mapping_is_transitive(g1 in arb_graph(4), g2 in arb_graph(4), g3 in arb_graph(4)) {
            if exists_map(&g1, &g2) && exists_map(&g2, &g3) {
                prop_assert!(exists_map(&g1, &g3));
            }
        }

        #[test]
        fn grounding_blanks_preserves_mapping_into_target(g in arb_graph(6)) {
            // G always maps into its Skolemization (send each blank to its
            // constant), mirroring Proposition 5.4's use of grounding.
            let grounded = swdb_model::skolemize(&g);
            prop_assert!(exists_map(&g, &grounded));
        }
    }
}
