//! Indexes over a target RDF graph used to drive the pattern matcher.

use std::collections::BTreeMap;

use swdb_model::{Graph, Iri, Term, Triple};

use crate::pattern::{Binding, PatternTerm, TriplePattern};

/// An index of an RDF graph by predicate, by (predicate, subject) and by
/// (predicate, object), supporting candidate generation for partially bound
/// triple patterns.
#[derive(Clone, Debug, Default)]
pub struct GraphIndex {
    all: Vec<Triple>,
    by_predicate: BTreeMap<Iri, Vec<Triple>>,
    by_predicate_subject: BTreeMap<(Iri, Term), Vec<Triple>>,
    by_predicate_object: BTreeMap<(Iri, Term), Vec<Triple>>,
    by_subject: BTreeMap<Term, Vec<Triple>>,
    by_object: BTreeMap<Term, Vec<Triple>>,
}

impl GraphIndex {
    /// Builds the index for a graph.
    pub fn new(graph: &Graph) -> Self {
        let mut index = GraphIndex::default();
        for t in graph.iter() {
            index.all.push(t.clone());
            index
                .by_predicate
                .entry(t.predicate().clone())
                .or_default()
                .push(t.clone());
            index
                .by_predicate_subject
                .entry((t.predicate().clone(), t.subject().clone()))
                .or_default()
                .push(t.clone());
            index
                .by_predicate_object
                .entry((t.predicate().clone(), t.object().clone()))
                .or_default()
                .push(t.clone());
            index
                .by_subject
                .entry(t.subject().clone())
                .or_default()
                .push(t.clone());
            index
                .by_object
                .entry(t.object().clone())
                .or_default()
                .push(t.clone());
        }
        index
    }

    /// Total number of triples indexed.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Returns `true` if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// All indexed triples.
    pub fn triples(&self) -> &[Triple] {
        &self.all
    }

    /// Resolves a pattern position under the current binding: `Some(term)`
    /// if the position is a constant or a bound variable, `None` if it is an
    /// unbound variable.
    fn resolve(position: &PatternTerm, binding: &Binding) -> Option<Term> {
        match position {
            PatternTerm::Const(t) => Some(t.clone()),
            PatternTerm::Var(v) => binding.get(v).cloned(),
        }
    }

    /// Returns the candidate triples that could match `pattern` given the
    /// already-bound variables in `binding`. The narrowest applicable index
    /// is used; the returned slice may still contain non-matching triples
    /// for the unresolved positions (the solver re-checks every position).
    pub fn candidates<'a>(&'a self, pattern: &TriplePattern, binding: &Binding) -> &'a [Triple] {
        let s = Self::resolve(&pattern.subject, binding);
        let p = Self::resolve(&pattern.predicate, binding);
        let o = Self::resolve(&pattern.object, binding);
        match (s, p, o) {
            (Some(s), Some(p), _) => {
                if let Some(p) = p.as_iri() {
                    self.by_predicate_subject
                        .get(&(p.clone(), s))
                        .map_or(&[][..], Vec::as_slice)
                } else {
                    &[]
                }
            }
            (_, Some(p), Some(o)) => {
                if let Some(p) = p.as_iri() {
                    self.by_predicate_object
                        .get(&(p.clone(), o))
                        .map_or(&[][..], Vec::as_slice)
                } else {
                    &[]
                }
            }
            (_, Some(p), _) => {
                if let Some(p) = p.as_iri() {
                    self.by_predicate.get(p).map_or(&[][..], Vec::as_slice)
                } else {
                    &[]
                }
            }
            (Some(s), None, _) => self.by_subject.get(&s).map_or(&[][..], Vec::as_slice),
            (None, None, Some(o)) => self.by_object.get(&o).map_or(&[][..], Vec::as_slice),
            (None, None, None) => &self.all,
        }
    }

    /// Estimated number of candidates for a pattern under a binding, used for
    /// most-constrained-first ordering in the solver.
    pub fn selectivity(&self, pattern: &TriplePattern, binding: &Binding) -> usize {
        self.candidates(pattern, binding).len()
    }

    /// Checks whether a fully resolved pattern matches a concrete triple.
    pub fn matches(pattern: &TriplePattern, binding: &Binding, triple: &Triple) -> bool {
        let check = |position: &PatternTerm, actual: &Term| -> bool {
            match Self::resolve(position, binding) {
                Some(expected) => &expected == actual,
                None => true,
            }
        };
        check(&pattern.subject, triple.subject())
            && check(&pattern.predicate, &Term::Iri(triple.predicate().clone()))
            && check(&pattern.object, triple.object())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::pattern;
    use swdb_model::graph;

    fn data() -> Graph {
        graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "ex:c"),
            ("ex:b", "ex:q", "ex:c"),
            ("_:X", "ex:p", "ex:b"),
        ])
    }

    #[test]
    fn candidates_by_predicate() {
        let idx = GraphIndex::new(&data());
        let p = pattern("?S", "ex:p", "?O");
        assert_eq!(idx.candidates(&p, &Binding::new()).len(), 3);
        let q = pattern("?S", "ex:q", "?O");
        assert_eq!(idx.candidates(&q, &Binding::new()).len(), 1);
        let none = pattern("?S", "ex:zzz", "?O");
        assert!(idx.candidates(&none, &Binding::new()).is_empty());
    }

    #[test]
    fn candidates_narrow_with_bound_subject() {
        let idx = GraphIndex::new(&data());
        let p = pattern("?S", "ex:p", "?O");
        let binding = Binding::from_pairs([("S", Term::iri("ex:a"))]);
        assert_eq!(idx.candidates(&p, &binding).len(), 2);
    }

    #[test]
    fn candidates_with_variable_predicate_fall_back_to_position_indexes() {
        let idx = GraphIndex::new(&data());
        let p = pattern("ex:a", "?P", "?O");
        assert_eq!(idx.candidates(&p, &Binding::new()).len(), 2);
        let all = pattern("?S", "?P", "?O");
        assert_eq!(idx.candidates(&all, &Binding::new()).len(), 4);
    }

    #[test]
    fn matches_checks_every_resolved_position() {
        let t = swdb_model::triple("ex:a", "ex:p", "ex:b");
        let p = pattern("?S", "ex:p", "ex:b");
        assert!(GraphIndex::matches(&p, &Binding::new(), &t));
        let p2 = pattern("?S", "ex:p", "ex:c");
        assert!(!GraphIndex::matches(&p2, &Binding::new(), &t));
        let bound = Binding::from_pairs([("S", Term::iri("ex:z"))]);
        assert!(!GraphIndex::matches(&p, &bound, &t));
    }

    #[test]
    fn blank_predicate_binding_yields_no_candidates() {
        let idx = GraphIndex::new(&data());
        let p = pattern("?S", "?P", "?O");
        let binding = Binding::from_pairs([("P", Term::blank("N"))]);
        assert!(idx.candidates(&p, &binding).is_empty());
    }
}
