//! E19 — incremental normal form: cold `nf(D)` build and post-mutation
//! refresh of the evaluation index.
//!
//! PR 2 made premise-free answering id-space end to end but still built the
//! evaluation index by running the *string-space* `core(·)` over the
//! maintained closure — ~7 s on the 10k university workload — and dropped
//! the whole index on any mutation. This experiment measures the
//! replacement, the component-decomposed incremental core engine
//! (`swdb_normal::IdCoreEngine`):
//!
//! * **cold** — building the evaluation structure from scratch:
//!   `swdb_normal::core(closure_graph)` (the PR 2 path: one monolithic
//!   retraction search, a graph clone + string index per probe) vs
//!   `IdCoreEngine::from_triples` over the same closure (ground triples
//!   stream through; each blank component is cored locally in id space).
//! * **refresh** — a warm facade absorbing one mutation and re-answering a
//!   query: a *ground* delta (pure index maintenance on the read path) and
//!   a *blank* delta (re-cores only the touched component), measured as one
//!   insert+query+remove+query round trip. Under the PR 2 design each of
//!   those mutations would have paid the full cold build again.
//!
//! Results land on stdout (criterion + report rows) and in
//! `BENCH_e19.json` at the workspace root. Acceptance: ground-delta refresh
//! ≥ 20× faster than a full engine rebuild on the 10k university workload,
//! and the cold build ≥ 5× faster than the string-space baseline there.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{json_prologue, metrics_block, quick, report_row};
use swdb_core::{MetricsLevel, SemanticWebDatabase};
use swdb_model::{isomorphic, triple, Graph, Term, Triple};
use swdb_normal::IdCoreEngine;
use swdb_query::Semantics;
use swdb_reason::MaterializedStore;
use swdb_store::GraphStats;
use swdb_workloads::{
    inject_blank_redundancy, simple_graph, university, SimpleGraphConfig, UniversityConfig,
};

/// A university workload of roughly `target` triples (≈ 1 anonymous-advisor
/// blank per 5 students, all singleton components).
fn university_workload(target: usize) -> Graph {
    let departments = (target / 160).max(1);
    university(
        &UniversityConfig {
            departments,
            courses_per_department: 10,
            professors_per_department: 6,
            students_per_department: 30,
            enrollments_per_student: 3,
        },
        0xE19,
    )
}

/// A random ground graph with blank redundancy injected: each shadow triple
/// uses fresh blank labels, so components stay small while the string-space
/// core still has real folding work on every one of them.
fn random_workload(target: usize) -> Graph {
    let ground = simple_graph(
        &SimpleGraphConfig {
            triples: target,
            uri_nodes: target / 5,
            blank_nodes: 0,
            predicates: 8,
            blank_probability: 0.0,
        },
        0xE19,
    );
    inject_blank_redundancy(&ground, target / 50, 0xE19)
}

fn query_for(workload: &str) -> swdb_query::Query {
    match workload {
        "university" => swdb_workloads::university::workers_query(),
        _ => swdb_query::query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]),
    }
}

/// Best-of-N wall clock after warm-up.
fn measure(rounds: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

struct ColdRow {
    workload: &'static str,
    triples: usize,
    closure_triples: usize,
    blank_components: usize,
    string_core_ms: f64,
    engine_ms: f64,
}

struct RefreshRow {
    workload: &'static str,
    triples: usize,
    kind: &'static str,
    refresh_us: f64,
    rebuild_ms: f64,
}

fn cold_point(
    group: &mut criterion::BenchmarkGroup<'_>,
    workload: &'static str,
    data: &Graph,
    cold: &mut Vec<ColdRow>,
) -> f64 {
    let n = data.len();
    let stats = GraphStats::of(data);
    let materialized = MaterializedStore::from_graph(data);

    // Both cold paths must produce the same core before being compared.
    let spec = swdb_normal::core(&materialized.closure_graph());
    let engine = IdCoreEngine::from_triples(
        materialized.closure_index().iter(),
        materialized.store().dictionary(),
    );
    let decoded: Graph = engine
        .index()
        .iter()
        .map(|ids| materialized.store().materialize(ids))
        .collect();
    assert!(
        isomorphic(&decoded, &spec),
        "engine and string-space cores disagree on {workload} n={n}"
    );

    let string_core = measure(2, || {
        criterion::black_box(swdb_normal::core(&materialized.closure_graph()));
    });
    let engine_build = measure(3, || {
        criterion::black_box(IdCoreEngine::from_triples(
            materialized.closure_index().iter(),
            materialized.store().dictionary(),
        ));
    });
    cold.push(ColdRow {
        workload,
        triples: n,
        closure_triples: materialized.closure_len(),
        blank_components: stats.blank_components,
        string_core_ms: string_core.as_secs_f64() * 1e3,
        engine_ms: engine_build.as_secs_f64() * 1e3,
    });
    report_row(
        "E19",
        &format!("cold {workload} n={n}"),
        &[
            ("closure", materialized.closure_len().to_string()),
            ("components", stats.blank_components.to_string()),
            (
                "string_core_ms",
                format!("{:.1}", string_core.as_secs_f64() * 1e3),
            ),
            (
                "engine_ms",
                format!("{:.1}", engine_build.as_secs_f64() * 1e3),
            ),
            (
                "speedup",
                format!(
                    "{:.1}x",
                    string_core.as_secs_f64() / engine_build.as_secs_f64().max(1e-9)
                ),
            ),
        ],
    );
    group.bench_with_input(
        BenchmarkId::new(format!("cold_engine/{workload}"), n),
        &n,
        |b, _| {
            b.iter(|| {
                IdCoreEngine::from_triples(
                    materialized.closure_index().iter(),
                    materialized.store().dictionary(),
                )
            })
        },
    );
    engine_build.as_secs_f64() * 1e3
}

fn refresh_point(
    group: &mut criterion::BenchmarkGroup<'_>,
    workload: &'static str,
    data: &Graph,
    kind: &'static str,
    edit: Triple,
    rebuild_ms: f64,
    rows: &mut Vec<RefreshRow>,
) {
    let n = data.len();
    let q = query_for(workload);
    let mut db = SemanticWebDatabase::from_graph(data.clone());
    let _ = db.answer(&q, Semantics::Union); // build the engine once

    // One refresh = absorb a mutation and re-answer: insert+query+remove+
    // query, halved. Under the drop-and-rebuild design each half would pay
    // a full cold build.
    let round = measure(5, || {
        assert!(db.insert(edit.clone()));
        criterion::black_box(db.answer(&q, Semantics::Union));
        assert!(db.remove(&edit));
        criterion::black_box(db.answer(&q, Semantics::Union));
    });
    let refresh_us = round.as_secs_f64() * 1e6 / 2.0;
    rows.push(RefreshRow {
        workload,
        triples: n,
        kind,
        refresh_us,
        rebuild_ms,
    });
    report_row(
        "E19",
        &format!("refresh {workload} n={n} {kind}"),
        &[
            ("refresh_us", format!("{refresh_us:.1}")),
            ("rebuild_ms", format!("{rebuild_ms:.1}")),
            (
                "vs_rebuild",
                format!("{:.0}x", rebuild_ms * 1e3 / refresh_us.max(1e-9)),
            ),
        ],
    );
    group.bench_with_input(
        BenchmarkId::new(format!("refresh_{kind}/{workload}"), n),
        &n,
        |b, _| {
            b.iter(|| {
                db.insert(edit.clone());
                let a = db.answer(&q, Semantics::Union);
                db.remove(&edit);
                criterion::black_box(a)
            })
        },
    );
}

fn ground_edit(workload: &str) -> Triple {
    match workload {
        "university" => triple("uni:profFresh", "uni:worksFor", "uni:dept0"),
        _ => triple("ex:nFresh", "ex:p0", "ex:n0"),
    }
}

fn blank_edit(workload: &str) -> Triple {
    match workload {
        "university" => Triple::new(
            Term::iri("uni:studentFresh"),
            "uni:advisedBy",
            Term::blank("advisorFresh"),
        ),
        _ => Triple::new(Term::iri("ex:n0"), "ex:p0", Term::blank("freshShadow")),
    }
}

/// One instrumented refresh cycle on the 10k university point: a ground and
/// a blank edit against the maintained evaluation engine at `Debug` level,
/// so the report carries the core engine's counters and span histograms.
fn instrumented_snapshot() -> String {
    let mut db = SemanticWebDatabase::from_graph(university_workload(10_000));
    db.set_metrics_level(MetricsLevel::Debug);
    let _ = db.evaluation_graph();
    for t in [ground_edit("university"), blank_edit("university")] {
        db.insert(t.clone());
        db.remove(&t);
    }
    db.metrics_snapshot()
}

fn write_json(cold: &[ColdRow], rows: &[RefreshRow], metrics_json: &str) {
    let mut out = json_prologue("e19_incremental_nf");
    out.push_str("  \"acceptance\": \"ground-delta refresh >= 20x engine rebuild on 10k university; cold engine build >= 5x string-space core\",\n");
    out.push_str("  \"mode\": \"release, best-of-N after warm-up\",\n  \"cold_build\": [\n");
    for (i, c) in cold.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"triples\": {}, \"closure_triples\": {}, \"blank_components\": {}, \"string_core_ms\": {:.1}, \"engine_ms\": {:.1}, \"speedup\": {:.1}}}{}\n",
            c.workload,
            c.triples,
            c.closure_triples,
            c.blank_components,
            c.string_core_ms,
            c.engine_ms,
            c.string_core_ms / c.engine_ms.max(1e-6),
            if i + 1 < cold.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"refresh\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"triples\": {}, \"kind\": \"{}\", \"refresh_us\": {:.1}, \"rebuild_ms\": {:.1}, \"vs_rebuild\": {:.0}}}{}\n",
            r.workload,
            r.triples,
            r.kind,
            r.refresh_us,
            r.rebuild_ms,
            r.rebuild_ms * 1e3 / r.refresh_us.max(1e-6),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&metrics_block(metrics_json));
    out.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e19.json");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_e19.json: {e}");
    } else {
        println!("[E19] results recorded in BENCH_e19.json");
    }
}

fn bench(c: &mut Criterion) {
    let mut cold = Vec::new();
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("e19_incremental_nf");
    for &target in &[1_000usize, 10_000] {
        for (workload, data) in [
            ("university", university_workload(target)),
            ("random_rdf", random_workload(target)),
        ] {
            let rebuild_ms = cold_point(&mut group, workload, &data, &mut cold);
            refresh_point(
                &mut group,
                workload,
                &data,
                "ground",
                ground_edit(workload),
                rebuild_ms,
                &mut rows,
            );
            refresh_point(
                &mut group,
                workload,
                &data,
                "blank",
                blank_edit(workload),
                rebuild_ms,
                &mut rows,
            );
        }
    }
    group.finish();
    write_json(&cold, &rows, &instrumented_snapshot());

    // Acceptance (release-mode): the recorded numbers must clear the bars.
    for c in &cold {
        if c.workload == "university" && c.triples > 5_000 {
            assert!(
                c.string_core_ms >= 5.0 * c.engine_ms,
                "cold build must beat the string-space core 5x at 10k university: {:.1}ms vs {:.1}ms",
                c.string_core_ms,
                c.engine_ms
            );
        }
    }
    for r in &rows {
        if r.workload == "university" && r.triples > 5_000 && r.kind == "ground" {
            assert!(
                r.rebuild_ms * 1e3 >= 20.0 * r.refresh_us,
                "ground refresh must beat a full rebuild 20x at 10k university: {:.1}us vs {:.1}ms",
                r.refresh_us,
                r.rebuild_ms
            );
        }
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
