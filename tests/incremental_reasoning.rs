//! End-to-end tests of the `swdb-reason` subsystem through the facade: the
//! maintained closure against the recomputing specification on real
//! workloads, closure-answered scans, and the headline property that a
//! single-triple edit is orders of magnitude cheaper than recomputation.

use std::time::Instant;

use semweb_foundations::core::SemanticWebDatabase;
use semweb_foundations::entailment::rdfs_closure;
use semweb_foundations::model::{rdfs, triple, Iri, Term};
use semweb_foundations::reason::MaterializedStore;
use semweb_foundations::workloads::{
    schema_graph, university, SchemaGraphConfig, UniversityConfig,
};

#[test]
fn materialized_store_matches_spec_on_the_university_workload() {
    let data = university(
        &UniversityConfig {
            departments: 2,
            courses_per_department: 3,
            professors_per_department: 2,
            students_per_department: 4,
            enrollments_per_student: 2,
        },
        7,
    );
    let materialized = MaterializedStore::from_graph(&data);
    assert_eq!(materialized.closure_graph(), rdfs_closure(&data));
}

#[test]
fn database_closure_stays_consistent_across_a_mutation_session() {
    let mut db = SemanticWebDatabase::from_graph(university(
        &UniversityConfig {
            departments: 1,
            courses_per_department: 3,
            professors_per_department: 2,
            students_per_department: 3,
            enrollments_per_student: 1,
        },
        3,
    ));
    // A write/read session: grow the schema, assert data, retract, minimize.
    db.insert(triple("uni:teaches", rdfs::DOM, "uni:Lecturer"));
    db.insert(triple("uni:Lecturer", rdfs::SC, "uni:Staff"));
    assert_eq!(db.closure(), db.closure_recomputed());
    db.remove(&triple("uni:Lecturer", rdfs::SC, "uni:Staff"));
    assert_eq!(db.closure(), db.closure_recomputed());
    db.minimize();
    assert_eq!(db.closure(), db.closure_recomputed());
}

#[test]
fn closure_scans_see_inferred_triples_through_the_reasoner() {
    let db = SemanticWebDatabase::from_graph(semweb_foundations::model::graph([
        ("ex:paints", rdfs::SP, "ex:creates"),
        ("ex:creates", rdfs::DOM, "ex:Artist"),
        ("ex:Picasso", "ex:paints", "ex:Guernica"),
    ]));
    let creators = db
        .reasoner()
        .scan_closure(None, Some(&Iri::new("ex:creates")), None);
    assert!(creators.contains(&triple("ex:Picasso", "ex:creates", "ex:Guernica")));
    let types = db.reasoner().scan_closure(
        Some(&Term::iri("ex:Picasso")),
        Some(&Iri::new(rdfs::TYPE)),
        None,
    );
    assert!(types.contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist")));
}

#[test]
fn single_triple_edits_beat_full_recomputation_by_an_order_of_magnitude() {
    // The acceptance property behind bench E17, demonstrated at a scale
    // that stays fast in debug builds; the bench reports it at 1k/10k.
    let g = schema_graph(
        &SchemaGraphConfig {
            classes: 16,
            properties: 6,
            edge_probability: 0.12,
            instances: 300,
            data_triples: 1_500,
        },
        0xE17,
    );
    let mut materialized = MaterializedStore::from_graph(&g);
    // Fresh subjects typed with existing classes: guaranteed not asserted,
    // and propagation still walks the real subclass hierarchy. Two disjoint
    // batches so the insert side gets a best-of-two too.
    let batch = |tag: &str| -> Vec<_> {
        (0..20)
            .map(|i| triple(&format!("ex:fresh{tag}{i}"), rdfs::TYPE, "ex:Class0"))
            .collect()
    };
    let batches = [batch("A"), batch("B")];

    // Best of two on both sides keeps a one-off scheduler stall from
    // producing a false ratio; the real margin is ~1000×, the bar 10×.
    let t0 = Instant::now();
    let full = rdfs_closure(&g);
    let first = t0.elapsed();
    let t0 = Instant::now();
    let _ = rdfs_closure(&g);
    let full_time = first.min(t0.elapsed());
    assert!(full.len() >= g.len());

    let per_insert = batches
        .iter()
        .map(|batch| {
            let t1 = Instant::now();
            for delta in batch {
                materialized.insert(delta);
            }
            t1.elapsed() / batch.len() as u32
        })
        .min()
        .expect("two batches");

    assert!(
        full_time >= per_insert * 10,
        "expected ≥10× speedup: full recomputation {full_time:?} vs single insert {per_insert:?}"
    );
    // Retract the deltas (untimed) — the engine must be exact afterwards.
    for delta in batches.iter().flatten() {
        materialized.remove(delta);
    }
    assert_eq!(materialized.closure_graph(), full);
}
