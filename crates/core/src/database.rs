//! The `SemanticWebDatabase` facade.
//!
//! A downstream application interacts with one value of this type: it holds
//! the data, knows which entailment regime is in force (simple or RDFS),
//! caches the evaluation index used for query answering, and exposes the
//! operations studied in the paper — entailment, equivalence, closure, core,
//! normal form, query answering under both semantics, and redundancy
//! elimination.
//!
//! ## The read path
//!
//! Premise-free queries — the hot path — run **entirely in id space**
//! through `swdb_query::exec`: the body is compiled to `TermId` patterns
//! against the store dictionary (a body constant that was never interned
//! short-circuits to zero answers) and joined directly over a cached
//! SPO/POS/OSP [`swdb_store::IdIndex`] of the evaluation graph. The
//! evaluation graph keeps the paper's semantics: `nf(D) = core(cl(D))`
//! under RDFS, `core(D)` under simple entailment — answers stay invariant
//! under database equivalence (Theorem 4.6).
//!
//! The whole pipeline behind that index is **incremental**. `cl(D)` is the
//! maintained materialization of `swdb-reason` (semi-naive insert, DRed
//! delete — never a recomputed fixpoint), and the `core(·)` step is the
//! [`swdb_normal::IdCoreEngine`]: ground closure triples pass straight
//! through (a map fixes URIs, so they always survive the core), blank
//! triples are partitioned into connected components and cored by local
//! id-space retraction searches. A mutation feeds the engine the exact
//! closure delta reported by [`MaterializedStore`]: a ground delta is pure
//! `O(log n)` index maintenance, a blank-touching delta re-cores only the
//! affected component(s). Nothing is dropped and rebuilt; the cold build
//! (first query) itself runs component-by-component in id space.
//!
//! Queries **with premises** run through the same id engine, by one of two
//! mechanisms selected per query:
//!
//! * **Premise-free expansion** (simple regime, ground premise): the query
//!   is rewritten into the union `Ω_q` of premise-free queries
//!   (Proposition 5.9, [`swdb_query::premise_free_expansion`]) — computed
//!   once per call — and every member joins the *same* cached evaluation
//!   index; single answers dedupe across members in id space.
//! * **Premise overlay** (RDFS regime, or blank-bearing premises): the
//!   premise is treated as a *scoped, transient delta* over the maintained
//!   engines. Its closure growth `cl(D + P) − cl(D)` is previewed against
//!   the maintained closure without committing anything
//!   ([`MaterializedStore::preview_insert`]), the incremental core engine
//!   cores the overlaid set as a diff ([`swdb_normal::EvalOverlay`]), and
//!   the query joins the layered view `index ∪ added − removed`
//!   ([`swdb_hom::Overlay`]). The published evaluation index is never
//!   cloned or mutated — it is bit-identical before and after — and the
//!   computed overlay is cached per premise, so repeated queries sharing a
//!   premise pay for the delta once until the next mutation.
//!
//! The string-space evaluator remains the executable specification via
//! [`SemanticWebDatabase::answer_recomputed`] — `nf(D + P)` normalized
//! wholesale per call — which the equivalence property tests pin both id
//! mechanisms against (up to isomorphism: the core is unique only up to
//! iso, Theorem 3.10).
//!
//! ## The write path
//!
//! Mutations keep every maintained structure in step without recomputing
//! anything: a mutation runs through [`MaterializedStore`] (semi-naive
//! insert propagation, DRed delete), and the exact closure delta it reports
//! feeds the evaluation engine and the asserted-store core.
//!
//! The propagation itself has **two interchangeable execution schedules**,
//! selected by [`SemanticWebDatabase::set_threads`] (default: the
//! `SWDB_THREADS` environment variable, else the machine's available
//! parallelism):
//!
//! * thread count 1 — the original sequential depth-first schedule,
//!   preserved exactly;
//! * thread count `n > 1` — `swdb_reason::parallel`'s round-based sharded
//!   schedule: each round partitions the frontier by the
//!   `(rule, hypothesis)` paths its predicates wake, runs the independent
//!   rule joins on up to `n` scoped worker threads against an immutable
//!   snapshot of the closure index, and commits the merged, deduplicated
//!   conclusions single-threadedly as the next frontier. The DRed delete's
//!   overdeletion cascade and rederivation probes parallelize the same way.
//!
//! Because the RDFS rules are monotone and the closure is a set, both
//! schedules reach the identical fixpoint — the maintained closure index,
//! the delta logs consumed by the evaluation engine, and therefore the
//! published evaluation index are bit-identical across thread counts. The
//! differential tests (`crates/reason/tests/parallel_differential.rs`, the
//! facade stress test `tests/parallel_facade_stress.rs`) sweep thread
//! counts to keep that claim executable; bench E21 records the bulk-load
//! throughput. Small rounds (single-triple edits) run inline regardless of
//! the configured ceiling, so point-write latency never pays a spawn.
//!
//! ## Degraded mode — bounding the NP-hard tail
//!
//! Everything above is polynomial except one step: the per-component
//! retraction searches behind `core(·)` are NP-hard (Theorem 3.12), so a
//! hostile blank component — say an `enc(K_n)` clique — can stall a commit
//! for hours while the rest of the database waits. The facade therefore
//! threads a **per-component budget** (fold steps and/or wall clock;
//! [`SemanticWebDatabase::set_core_budget`], `SWDB_CORE_BUDGET`,
//! `SWDB_CORE_BUDGET_MS`) through every core search. A component whose
//! slice runs out is **published uncored**: its current survivor set enters
//! the evaluation index as-is — a sound superset of its true core, since
//! the engine only ever shrinks the published set by *applying found
//! retraction witnesses* — and the component is flagged. Query answers over
//! a degraded index remain sound (every reported answer is entailed) and
//! complete (the core is never dropped, so no entailed answer is lost);
//! what may linger is redundancy, so the answer graph is equivalent to the
//! unbudgeted one but may mention redundant blanks a finished core search
//! would have folded away. The flag is surfaced as `non_minimal` on
//! [`swdb_query::Explain`] and [`SemanticWebDatabase::answer_with_status`],
//! as [`SemanticWebDatabase::is_degraded`], and as the
//! `core_budget_exhausted` counter / `uncored_*` gauges in
//! [`SemanticWebDatabase::metrics_snapshot`].
//! [`SemanticWebDatabase::refresh_degraded`] retries every uncored
//! component with a fresh slice at a quiet moment, resuming from the
//! published survivors, and is guaranteed to fully recover under
//! [`CoreBudgetMode::Unlimited`]. The default [`CoreBudgetMode::Auto`]
//! budgets only components over the oversized-blank warning threshold, so
//! benign workloads are bit-identical to the unbudgeted engine.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swdb_durable::{
    Durability, Io, SnapshotPayload, StdIo, WalRecord, DEFAULT_WAL_COMPACT_THRESHOLD,
};
use swdb_model::{BlankNode, Graph, Term, Triple};
use swdb_normal::{CoreBudget, CoreBudgetMode, EvalOverlay, IdCoreEngine};
use swdb_obs::{Counter, Gauge, Hist, Metrics, MetricsLevel};
use swdb_query::{Explain, NormalizedDatabase, Query, Semantics};
use swdb_reason::{ClosureDelta, MaterializedStore};
use swdb_store::{Dictionary, GraphStats, IdIndex, IdTriple};

/// The entailment regime a database operates under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EntailmentRegime {
    /// Simple entailment: blank nodes are existential, the RDFS vocabulary
    /// carries no special semantics (Definition 2.2, Theorem 2.8(2)).
    Simple,
    /// Full RDFS entailment over the `{sp, sc, type, dom, range}` fragment
    /// (the default; Theorem 2.8(1)).
    #[default]
    Rdfs,
}

/// How many distinct premises keep a cached overlay between mutations.
const PREMISE_CACHE_CAPACITY: usize = 8;

/// Worst-case budget for the Proposition 5.9 expansion: the subset
/// enumeration visits at most `Σ_{R ⊆ B} |P|^|R| = (|P| + 1)^|B|` maps, so
/// gating on that bound keeps the rewriting cheap *and* guarantees no
/// subset's map enumeration can hit the solver's
/// [`swdb_hom::DEFAULT_SOLUTION_LIMIT`] cap (which would silently truncate
/// the expansion). Queries over budget take the premise overlay, which is
/// linear in the delta.
const EXPANSION_MAP_BUDGET: u64 = 1 << 19;

/// The default worker-thread ceiling for closure maintenance: the
/// `SWDB_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. `1` selects the
/// sequential schedule exactly; the differential tests pin every count to
/// the same closure, so the choice is purely a throughput knob.
fn default_threads() -> usize {
    match std::env::var("SWDB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        // Any explicit setting wins; 0 clamps to 1 (the sequential
        // schedule), matching `set_threads(0)`.
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The WAL compaction threshold: `SWDB_WAL_COMPACT` (records; `0` disables
/// auto-compaction), else [`DEFAULT_WAL_COMPACT_THRESHOLD`].
fn wal_compact_threshold() -> u64 {
    std::env::var("SWDB_WAL_COMPACT")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_WAL_COMPACT_THRESHOLD)
}

/// Wire encoding of the entailment regime (snapshot + WAL records).
fn encode_regime(regime: EntailmentRegime) -> u8 {
    match regime {
        EntailmentRegime::Simple => 0,
        EntailmentRegime::Rdfs => 1,
    }
}

fn decode_regime(wire: u8) -> EntailmentRegime {
    if wire == 0 {
        EntailmentRegime::Simple
    } else {
        EntailmentRegime::Rdfs
    }
}

/// Wire encoding of the core budget: `(mode, steps, millis)` with
/// `u64::MAX` standing in for "no limit".
fn encode_budget(mode: CoreBudgetMode) -> (u8, u64, u64) {
    match mode {
        CoreBudgetMode::Unlimited => (0, u64::MAX, u64::MAX),
        CoreBudgetMode::Budgeted(b) => {
            (1, b.steps.unwrap_or(u64::MAX), b.millis.unwrap_or(u64::MAX))
        }
        CoreBudgetMode::Auto => (2, u64::MAX, u64::MAX),
    }
}

fn decode_budget(mode: u8, steps: u64, millis: u64) -> CoreBudgetMode {
    match mode {
        0 => CoreBudgetMode::Unlimited,
        1 => CoreBudgetMode::Budgeted(CoreBudget {
            steps: (steps != u64::MAX).then_some(steps),
            millis: (millis != u64::MAX).then_some(millis),
        }),
        _ => CoreBudgetMode::Auto,
    }
}

/// A WAL record whose N-Triples payload failed to parse during recovery —
/// possible only via outside interference, since the payload passed its CRC.
fn replay_parse_error(e: swdb_store::ParseError) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!(
            "WAL replay: record payload is not valid N-Triples (line {}: {})",
            e.line, e.message
        ),
    )
}

/// A semantic-web database: an RDF graph with an entailment regime and the
/// derived structures needed to answer queries.
#[derive(Debug)]
pub struct SemanticWebDatabase {
    graph: Graph,
    regime: EntailmentRegime,
    /// The dictionary-encoded store plus its incrementally maintained
    /// `RDFS-cl(G)` (`swdb-reason`). Every mutation updates it in place —
    /// semi-naive propagation on insert, DRed on remove — so closure reads
    /// never recompute a fixpoint.
    reasoner: MaterializedStore,
    /// The incremental core engine over the evaluation graph queries run
    /// against (`nf(D)` under RDFS, `core(D)` under simple entailment),
    /// encoded against the store dictionary's ids. Built lazily on first
    /// use, then *maintained* under the closure deltas of every mutation —
    /// neither the closure fixpoint nor the core is ever recomputed for it.
    evaluation: Option<IdCoreEngine>,
    /// Cached premise overlays, keyed by premise graph: the scoped
    /// evaluation-index diff a premise induces ([`EvalOverlay`]), valid
    /// until the next mutation or regime switch. Repeated queries sharing a
    /// premise hit the cache and skip the closure preview + overlay core.
    premise_cache: Vec<(Graph, EvalOverlay)>,
    /// A second core engine over the *asserted* store, powering
    /// [`SemanticWebDatabase::minimize`] under the RDFS regime (under
    /// simple entailment the evaluation engine already cores the asserted
    /// graph). Built on first minimize, then maintained under base deltas.
    asserted_core: Option<IdCoreEngine>,
    /// Worker-thread ceiling for closure propagation and DRed cascades
    /// (mirrored into the reasoner; see [`SemanticWebDatabase::set_threads`]).
    threads: usize,
    /// Per-component budget for the NP-hard core searches (mirrored into
    /// both maintained engines; see
    /// [`SemanticWebDatabase::set_core_budget`]). Defaults from
    /// `SWDB_CORE_BUDGET` / `SWDB_CORE_BUDGET_MS`, else
    /// [`CoreBudgetMode::Auto`].
    core_budget: CoreBudgetMode,
    /// The shared observability handle (`swdb-obs`): one lock-free counter /
    /// histogram sheet threaded through the reasoner, the core engines and
    /// the query executor. Level defaults from `SWDB_METRICS`
    /// (off/counters/debug) and is `Off` — near-zero cost — unless set.
    metrics: Metrics,
    /// The attached crash-safe durability layer (`swdb-durable`): snapshots
    /// plus a write-ahead log under a data directory. `None` — the default
    /// unless `SWDB_DATA_DIR` is set or [`SemanticWebDatabase::open`] /
    /// [`SemanticWebDatabase::persist_to`] was used — keeps the database
    /// purely in memory. The discipline on any IO error is **fail-stop**:
    /// the layer detaches (recorded in
    /// [`SemanticWebDatabase::durability_error`]) and the in-memory
    /// database keeps working; the data directory is left in a state the
    /// next `open` recovers to the last durably-acknowledged mutation.
    durability: Option<Durability>,
    /// Why the durability layer detached, if it did (fail-stop record).
    durability_error: Option<String>,
    /// The MVCC publication slot: the writer's last explicitly published
    /// immutable snapshot ([`crate::publish::PublishedSnapshot`]), pinned
    /// lock-free-in-effect by any number of [`SnapshotReader`] handles.
    /// Starts at epoch 0 (empty); [`SemanticWebDatabase::publish`] swaps in
    /// the next epoch.
    publish_slot: Arc<crate::publish::PublishSlot>,
    /// The compiled plan + expansion cache (`swdb_query::plan`): join
    /// orders costed once per query shape and `Ω_q` expansions computed
    /// once per premise query, invalidated by a generation bump on every
    /// mutation, regime switch, and dictionary growth. Defaults from
    /// `SWDB_PLAN_CACHE` (on unless `0`/`off`); published snapshots get
    /// their own cache (immutable substrate — it never invalidates).
    plan_cache: swdb_query::PlanCache,
}

/// Sequence number making `SWDB_DATA_DIR` subdirectories unique within one
/// process (combined with the pid for uniqueness across processes).
static DATA_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

impl Default for SemanticWebDatabase {
    fn default() -> Self {
        let mut db = SemanticWebDatabase::detached_with_metrics(Metrics::from_env());
        // Opt-in ambient durability: with SWDB_DATA_DIR set, every database
        // persists into its own fresh subdirectory. Attachment failure is
        // deliberately silent here (a default constructor cannot return
        // `Result`); use `open`/`persist_to` for checked attachment.
        if let Ok(root) = std::env::var("SWDB_DATA_DIR") {
            if !root.trim().is_empty() {
                let seq = DATA_DIR_SEQ.fetch_add(1, Ordering::SeqCst);
                let dir = PathBuf::from(root).join(format!("db-{}-{seq}", std::process::id()));
                if let Ok((durability, _)) = Durability::open(
                    &dir,
                    Arc::new(StdIo),
                    db.metrics.clone(),
                    wal_compact_threshold(),
                ) {
                    db.durability = Some(durability);
                }
            }
        }
        db
    }
}

impl Clone for SemanticWebDatabase {
    /// Clones the in-memory database **without** the durability layer: two
    /// handles appending to one WAL would interleave their records into a
    /// history neither produced, so the clone starts detached (attach its
    /// own directory with [`SemanticWebDatabase::persist_to`]).
    fn clone(&self) -> Self {
        SemanticWebDatabase {
            graph: self.graph.clone(),
            regime: self.regime,
            reasoner: self.reasoner.clone(),
            evaluation: self.evaluation.clone(),
            premise_cache: self.premise_cache.clone(),
            asserted_core: self.asserted_core.clone(),
            threads: self.threads,
            core_budget: self.core_budget,
            metrics: self.metrics.clone(),
            durability: None,
            durability_error: None,
            // A fresh, unpublished slot: readers pinned on the original keep
            // observing the original's publications, never the clone's.
            publish_slot: Arc::new(crate::publish::PublishSlot::empty(self.metrics.clone())),
            // A fresh, empty plan cache (same enablement): the clone's
            // mutations must never resurrect plans costed on the original.
            plan_cache: swdb_query::PlanCache::new(self.plan_cache.enabled()),
        }
    }
}

impl SemanticWebDatabase {
    /// Creates an empty database under the RDFS regime.
    pub fn new() -> Self {
        SemanticWebDatabase::default()
    }

    /// The in-memory constructor behind [`Default`]: everything wired to
    /// the given metrics handle, no durability attached.
    fn detached_with_metrics(metrics: Metrics) -> Self {
        let threads = default_threads();
        let mut reasoner = MaterializedStore::with_threads(threads);
        reasoner.set_metrics(metrics.clone());
        SemanticWebDatabase {
            graph: Graph::default(),
            regime: EntailmentRegime::default(),
            reasoner,
            evaluation: None,
            premise_cache: Vec::new(),
            asserted_core: None,
            threads,
            core_budget: CoreBudgetMode::from_env(),
            publish_slot: Arc::new(crate::publish::PublishSlot::empty(metrics.clone())),
            metrics,
            durability: None,
            durability_error: None,
            plan_cache: swdb_query::PlanCache::from_env(),
        }
    }

    // ----- durability -----

    /// Opens (creating if needed) a durable database at `dir` and recovers
    /// whatever consistent state the directory holds: the newest valid
    /// snapshot loads by pure deserialization — dictionary, base store,
    /// maintained closure and both core-engine states come back exactly as
    /// exported, with **no closure fixpoint and no core search** — and the
    /// WAL suffix committed after it replays through the same incremental
    /// delta paths a live mutation takes (counted by the
    /// `recovery_replayed_deltas` metric). A torn final WAL record — the
    /// expected signature of a crash mid-commit — is detected by checksum,
    /// truncated, and counted (`recovery_torn_tails`); everything durably
    /// acknowledged before the crash survives.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        SemanticWebDatabase::open_with_io(dir.as_ref(), Arc::new(StdIo), Metrics::from_env())
    }

    /// [`SemanticWebDatabase::open`] with an explicit IO implementation and
    /// metrics handle — the entry point of the fault-injection tests
    /// ([`swdb_durable::FaultIo`]) and of callers that need to observe the
    /// recovery counters race-free.
    pub fn open_with_io(dir: &Path, io: Arc<dyn Io>, metrics: Metrics) -> io::Result<Self> {
        let span = metrics.span(Hist::SpanRecoveryNs);
        let (durability, recovered) =
            Durability::open(dir, io, metrics.clone(), wal_compact_threshold())?;
        let mut db = SemanticWebDatabase::detached_with_metrics(metrics.clone());
        if let Some(snapshot) = recovered.snapshot.as_ref() {
            db.restore_from_snapshot(snapshot);
        }
        // Replay the WAL suffix through the live mutation paths. The
        // durability field is still `None` here, so nothing gets re-logged.
        let replayed = recovered.wal.len() as u64;
        for record in &recovered.wal {
            db.replay(record)?;
        }
        db.metrics.count(Counter::RecoveryReplayedDeltas, replayed);
        db.durability = Some(durability);
        drop(span);
        Ok(db)
    }

    /// Attaches durability to an in-memory database: opens `dir`, writes
    /// the **current** state as a snapshot (replacing whatever generation
    /// the directory held), and logs every subsequent mutation to the WAL.
    /// The prior durability attachment of this value, if any, is replaced.
    pub fn persist_to(&mut self, dir: impl AsRef<Path>) -> io::Result<()> {
        self.persist_to_with_io(dir.as_ref(), Arc::new(StdIo))
    }

    /// [`SemanticWebDatabase::persist_to`] with an explicit IO
    /// implementation (fault-injection entry point).
    pub fn persist_to_with_io(&mut self, dir: &Path, io: Arc<dyn Io>) -> io::Result<()> {
        let (mut durability, _prior) =
            Durability::open(dir, io, self.metrics.clone(), wal_compact_threshold())?;
        durability.rotate(&self.snapshot_payload())?;
        self.durability = Some(durability);
        self.durability_error = None;
        Ok(())
    }

    /// Rotates now: writes the current state as a new snapshot generation
    /// and truncates the WAL (crash-safe; see [`swdb_durable`] for the
    /// write ordering). Returns `Ok(false)` when no durability layer is
    /// attached. On error the layer detaches (fail-stop) — the directory
    /// still recovers to its pre-rotation state.
    pub fn snapshot_now(&mut self) -> io::Result<bool> {
        if self.durability.is_none() {
            return Ok(false);
        }
        let payload = self.snapshot_payload();
        match self
            .durability
            .as_mut()
            .expect("checked above")
            .rotate(&payload)
        {
            Ok(()) => Ok(true),
            Err(e) => {
                self.detach_durability(format!("snapshot rotation failed ({e})"));
                Err(e)
            }
        }
    }

    /// The data directory mutations are being persisted into, if any.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir())
    }

    /// `true` while a durability layer is attached and healthy.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Why the durability layer detached, if it fail-stopped on an IO
    /// error. `None` while healthy (or never attached).
    pub fn durability_error(&self) -> Option<&str> {
        self.durability_error.as_deref()
    }

    /// Live records in the current WAL generation (0 when detached).
    pub fn wal_records(&self) -> u64 {
        self.durability.as_ref().map_or(0, |d| d.wal_records())
    }

    /// Exports the complete durable image of the current state: regime,
    /// budget, the dictionary in id order, base + closure triples, and the
    /// exported state of both core engines (including per-component
    /// `uncored` flags, so degraded mode survives a reopen exactly).
    fn snapshot_payload(&self) -> SnapshotPayload {
        let store = self.reasoner.store();
        let dictionary = store.dictionary();
        let (budget_mode, budget_steps, budget_millis) = encode_budget(self.core_budget);
        SnapshotPayload {
            regime: encode_regime(self.regime),
            budget_mode,
            budget_steps,
            budget_millis,
            terms: dictionary.iter().map(|(_, t)| t.clone()).collect(),
            base: store.iter_ids().collect(),
            closure: self.reasoner.closure_index().iter().collect(),
            evaluation: self
                .evaluation
                .as_ref()
                .map(|e| e.export_state(dictionary))
                .into_iter()
                .collect(),
            asserted_core: self
                .asserted_core
                .as_ref()
                .map(|e| e.export_state(dictionary))
                .into_iter()
                .collect(),
        }
    }

    /// Rebuilds every maintained structure from a decoded snapshot — pure
    /// deserialization: the dictionary replays in id order (reproducing the
    /// exact id assignment), the closure is adopted without rule
    /// propagation, and the core engines restore from their exported
    /// component states without any retraction search.
    fn restore_from_snapshot(&mut self, snapshot: &SnapshotPayload) {
        self.regime = decode_regime(snapshot.regime);
        self.core_budget = decode_budget(
            snapshot.budget_mode,
            snapshot.budget_steps,
            snapshot.budget_millis,
        );
        let mut reasoner =
            MaterializedStore::restore(&snapshot.terms, &snapshot.base, &snapshot.closure);
        reasoner.set_threads(self.threads);
        reasoner.set_metrics(self.metrics.clone());
        self.reasoner = reasoner;
        self.graph = self.reasoner.store().to_graph();
        let dictionary = self.reasoner.store().dictionary();
        self.evaluation = snapshot.evaluation.first().map(|state| {
            IdCoreEngine::from_state(state, dictionary, self.metrics.clone(), self.core_budget)
        });
        self.asserted_core = snapshot.asserted_core.first().map(|state| {
            IdCoreEngine::from_state(state, dictionary, self.metrics.clone(), self.core_budget)
        });
        self.premise_cache.clear();
        // The dictionary was rebuilt wholesale: doom every cached plan.
        self.plan_cache.bump_generation();
    }

    /// Re-applies one WAL record through the live mutation paths (the
    /// incremental engines absorb each delta exactly as the original run's
    /// did). Only called while durability is detached, so nothing re-logs.
    fn replay(&mut self, record: &WalRecord) -> io::Result<()> {
        match record {
            WalRecord::InsertGraph(text) => {
                let graph = swdb_store::parse(text).map_err(replay_parse_error)?;
                self.insert_graph(&graph);
            }
            WalRecord::RemoveGraph(text) => {
                let graph = swdb_store::parse(text).map_err(replay_parse_error)?;
                for triple in graph.iter() {
                    self.remove(triple);
                }
            }
            WalRecord::SetRegime(wire) => self.set_regime(decode_regime(*wire)),
            WalRecord::SetBudget {
                mode,
                steps,
                millis,
            } => {
                self.set_core_budget(decode_budget(*mode, *steps, *millis));
            }
            WalRecord::RefreshDegraded => {
                self.refresh_degraded();
            }
        }
        Ok(())
    }

    /// Durably commits one mutation's records (a single append + fsync),
    /// then rotates if the WAL has outgrown the compaction threshold. Any
    /// IO error fail-stops the layer: it detaches, the error is recorded,
    /// and the in-memory database continues.
    fn log_wal(&mut self, records: &[WalRecord]) {
        let Some(durability) = self.durability.as_mut() else {
            return;
        };
        if let Err(e) = durability.commit(records) {
            self.detach_durability(format!("WAL commit failed ({e})"));
            return;
        }
        if self
            .durability
            .as_ref()
            .is_some_and(|d| d.needs_compaction())
        {
            let payload = self.snapshot_payload();
            if let Err(e) = self
                .durability
                .as_mut()
                .expect("checked above")
                .rotate(&payload)
            {
                self.detach_durability(format!("WAL compaction rotation failed ({e})"));
            }
        }
    }

    /// The fail-stop transition: drop the layer, record why, and zero the
    /// compaction gauge so the metrics warning stops firing for a WAL
    /// nobody appends to anymore.
    fn detach_durability(&mut self, why: String) {
        self.durability = None;
        self.durability_error = Some(format!(
            "{why}; durability detached — this database continues in memory only, \
             and the data directory recovers to its last durable state on the \
             next open"
        ));
        self.metrics.count(Counter::DurabilityDetached, 1);
        self.metrics.gauge_set(Gauge::WalCompactThreshold, 0);
        self.metrics.gauge_set(Gauge::WalLiveRecords, 0);
    }

    /// Sets the worker-thread ceiling for the write path (clamped to at
    /// least 1). `1` runs the original sequential propagation/DRed
    /// schedule; higher counts run `swdb_reason::parallel`'s round-based
    /// sharded schedule on bulk work (small rounds stay inline). The
    /// maintained closure — and with it every published read structure —
    /// is identical for every count, so no cache is invalidated here.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.reasoner.set_threads(self.threads);
    }

    /// The configured worker-thread ceiling (defaults to `SWDB_THREADS` or
    /// the machine's available parallelism).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the per-component budget for the NP-hard core searches (the
    /// retraction searches behind `core(·)`), propagated to both maintained
    /// engines. A component whose budget slice runs out is **published
    /// uncored** — a sound superset of its true core, flagged degraded —
    /// instead of stalling the write path; see the "Degraded mode" section
    /// of [`swdb_normal::id_core`] for the soundness argument and
    /// [`SemanticWebDatabase::refresh_degraded`] for the retry.
    ///
    /// The default comes from the `SWDB_CORE_BUDGET` environment variable
    /// (a fold-step count; `off`/`unlimited` disables budgeting) and
    /// `SWDB_CORE_BUDGET_MS` (a wall-clock ceiling), else
    /// [`CoreBudgetMode::Auto`]: components at or under the oversized-blank
    /// warning threshold run unbudgeted (bit-identical to the unbudgeted
    /// engine on benign data), larger ones get a slice proportional to the
    /// threshold.
    ///
    /// Cached premise overlays are invalidated: an overlay computed under a
    /// different budget may carry a different `non_minimal` flag.
    pub fn set_core_budget(&mut self, mode: CoreBudgetMode) {
        self.core_budget = mode;
        self.premise_cache.clear();
        if let Some(engine) = self.evaluation.as_mut() {
            engine.set_core_budget(mode);
        }
        if let Some(engine) = self.asserted_core.as_mut() {
            engine.set_core_budget(mode);
        }
        if self.durability.is_some() {
            let (mode, steps, millis) = encode_budget(mode);
            self.log_wal(&[WalRecord::SetBudget {
                mode,
                steps,
                millis,
            }]);
        }
    }

    /// The configured core-search budget mode.
    pub fn core_budget(&self) -> CoreBudgetMode {
        self.core_budget
    }

    /// `true` while any maintained engine holds a component published
    /// uncored (degraded mode): the evaluation graph — and with it
    /// merge-semantics answers — or the asserted-store core behind
    /// [`SemanticWebDatabase::minimize`] is a sound but possibly
    /// non-minimal superset of the true core. Answers stay sound and
    /// complete either way; see [`SemanticWebDatabase::refresh_degraded`].
    pub fn is_degraded(&self) -> bool {
        self.evaluation.as_ref().is_some_and(|e| e.is_degraded())
            || self.asserted_core.as_ref().is_some_and(|e| e.is_degraded())
    }

    /// Components currently published uncored, across both maintained
    /// engines.
    pub fn uncored_components(&self) -> usize {
        self.evaluation
            .as_ref()
            .map_or(0, |e| e.uncored_components())
            + self
                .asserted_core
                .as_ref()
                .map_or(0, |e| e.uncored_components())
    }

    /// Published triples inside uncored components — the portion of the
    /// maintained cores that may be non-minimal.
    pub fn uncored_triples(&self) -> usize {
        self.evaluation.as_ref().map_or(0, |e| e.uncored_triples())
            + self
                .asserted_core
                .as_ref()
                .map_or(0, |e| e.uncored_triples())
    }

    /// The quiet-moment retry of degraded mode: every uncored component of
    /// every maintained engine gets a fresh budget slice and resumes its
    /// core search from the published survivors (monotone — applied folds
    /// are genuine retractions, so no work is lost). Returns `true` when no
    /// component remains uncored; guaranteed to fully recover under
    /// [`CoreBudgetMode::Unlimited`]. Cached premise overlays are
    /// invalidated because the published evaluation index may shrink.
    pub fn refresh_degraded(&mut self) -> bool {
        self.premise_cache.clear();
        // The published evaluation index may shrink under a resumed core
        // search, invalidating costed cardinalities.
        self.plan_cache.bump_generation();
        let dictionary = self.reasoner.store().dictionary();
        let mut recovered = true;
        if let Some(engine) = self.evaluation.as_mut() {
            recovered &= engine.recore_uncored(dictionary);
        }
        if let Some(engine) = self.asserted_core.as_mut() {
            recovered &= engine.recore_uncored(dictionary);
        }
        if self.durability.is_some() {
            // Logged so a replay repeats the retry at the same point in the
            // mutation sequence: under a step-count budget that makes the
            // recovered degraded flags deterministic (wall-clock budgets
            // remain inherently run-dependent).
            self.log_wal(&[WalRecord::RefreshDegraded]);
        }
        recovered
    }

    /// Sets the metrics recording level at runtime. `Off` (the default
    /// unless `SWDB_METRICS` says otherwise) keeps every instrumentation
    /// site to one relaxed atomic load; `Counters` turns on the lock-free
    /// counter sheet; `Debug` additionally records histograms and span
    /// timings. The level applies retroactively to every engine sharing the
    /// handle — no structure is rebuilt.
    pub fn set_metrics_level(&mut self, level: MetricsLevel) {
        self.metrics.set_level(level);
    }

    /// The shared [`Metrics`] handle every subsystem of this database
    /// records into (clones share state, so a held clone keeps observing).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Freezes the current metrics into deterministic JSON (keys sorted,
    /// integers only): counters, per-rule firings, gauges, histograms
    /// (debug level), and early warnings such as an oversized blank
    /// component. A fail-stop durability detach surfaces here too: the
    /// recorded [`SemanticWebDatabase::durability_error`] joins the
    /// `warnings` block (alongside the `durability_detached` counter), so
    /// detachment is observable without polling the facade. See
    /// [`swdb_obs::MetricsSnapshot`] for the typed form.
    pub fn metrics_snapshot(&self) -> String {
        let mut snapshot = self.metrics.snapshot();
        if let Some(why) = &self.durability_error {
            snapshot.warnings.push(format!("durability_error: {why}"));
        }
        snapshot.to_json()
    }

    // ----- publication (the MVCC read side) -----

    /// Atomically publishes the current evaluation state as an immutable
    /// [`PublishedSnapshot`](crate::publish::PublishedSnapshot) and returns
    /// it. The snapshot carries a clone of the dictionary and the evaluation
    /// `IdIndex` (built first if cold), the epoch (monotonically increasing
    /// from 1), and the degraded flags in force at publication time
    /// (`non_minimal` from the core budget, `durability_detached` from the
    /// fail-stop record). Every [`SnapshotReader`](crate::publish::SnapshotReader)
    /// handle on this database observes the new epoch on its next pin;
    /// already-pinned snapshots are untouched — that is the MVCC contract:
    /// a pinned snapshot stays bit-identical however the writer mutates,
    /// and a reader answering on one never blocks `insert`/`remove`.
    ///
    /// Publication is **explicit**: mutations do not republish on their
    /// own (a bulk load would otherwise clone the index per triple). The
    /// serving layer (`swdb-server`) publishes once per write request.
    pub fn publish(&mut self) -> Arc<crate::publish::PublishedSnapshot> {
        let metrics = self.metrics.clone();
        let span = metrics.span(Hist::SpanSnapshotPublishNs);
        self.ensure_evaluation();
        let engine = self.evaluation.as_ref().expect("just ensured");
        let epoch = self.publish_slot.pin().epoch() + 1;
        let snapshot = Arc::new(crate::publish::PublishedSnapshot::new(
            epoch,
            self.regime,
            self.graph.len(),
            engine.is_degraded(),
            self.durability_error.is_some(),
            self.reasoner.store().dictionary().clone(),
            engine.index().clone(),
            self.metrics.clone(),
            // The snapshot is immutable, so its plans stay valid for its
            // whole lifetime: a fresh cache, never invalidated.
            swdb_query::PlanCache::new(self.plan_cache.enabled()),
        ));
        self.publish_slot.swap(Arc::clone(&snapshot));
        self.metrics.count(Counter::SnapshotsPublished, 1);
        self.metrics.gauge_set(Gauge::PublishedEpoch, epoch);
        drop(span);
        snapshot
    }

    /// A clonable, `Send + Sync` handle onto this database's publication
    /// slot: each [`SnapshotReader::pin`](crate::publish::SnapshotReader::pin)
    /// returns the latest published snapshot as a plain `Arc` the reader
    /// thread queries without any further coordination with the writer.
    /// Publishes epoch 1 first if nothing has been published yet, so a
    /// fresh reader never observes the empty epoch-0 placeholder.
    pub fn reader(&mut self) -> crate::publish::SnapshotReader {
        if self.publish_slot.pin().epoch() == 0 {
            self.publish();
        }
        crate::publish::SnapshotReader::new(Arc::clone(&self.publish_slot))
    }

    /// The currently published snapshot (epoch 0 and empty until the first
    /// [`SemanticWebDatabase::publish`]). Equivalent to pinning through a
    /// [`SnapshotReader`](crate::publish::SnapshotReader), but borrowable
    /// from `&self`.
    pub fn published(&self) -> Arc<crate::publish::PublishedSnapshot> {
        self.publish_slot.pin()
    }

    /// Creates an empty database under the given regime.
    pub fn with_regime(regime: EntailmentRegime) -> Self {
        SemanticWebDatabase {
            regime,
            ..SemanticWebDatabase::default()
        }
    }

    /// Wraps an existing graph. The initial closure materialization is one
    /// frontier-batched fixpoint, parallel-sharded when the configured
    /// thread ceiling allows.
    pub fn from_graph(graph: Graph) -> Self {
        let mut db = SemanticWebDatabase::default();
        db.reasoner.insert_graph(&graph);
        db.graph = graph;
        db
    }

    /// Loads a database from the N-Triples-style syntax of
    /// [`swdb_store::ntriples`].
    pub fn from_ntriples(text: &str) -> Result<Self, swdb_store::ParseError> {
        Ok(SemanticWebDatabase::from_graph(swdb_store::parse(text)?))
    }

    /// Serializes the stored graph.
    pub fn to_ntriples(&self) -> String {
        swdb_store::serialize(&self.graph)
    }

    /// The entailment regime in force.
    pub fn regime(&self) -> EntailmentRegime {
        self.regime
    }

    /// Switches the entailment regime (invalidates the normalization cache
    /// and the cached premise overlays; the asserted-store core used by
    /// `minimize` is regime-independent and survives).
    pub fn set_regime(&mut self, regime: EntailmentRegime) {
        if self.regime != regime {
            self.regime = regime;
            self.evaluation = None;
            self.premise_cache.clear();
            // Plans were costed against the old regime's evaluation index;
            // expansions are regime-gated. Doom both.
            self.plan_cache.bump_generation();
            if self.durability.is_some() {
                self.log_wal(&[WalRecord::SetRegime(encode_regime(regime))]);
            }
        }
    }

    /// Whether the compiled plan + expansion cache is in use (defaults
    /// from `SWDB_PLAN_CACHE`: on unless set to `0`/`off`/`false`/`no`).
    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache.enabled()
    }

    /// Enables or disables the compiled plan + expansion cache. The cache
    /// is replaced (emptied) either way; disabling routes every query back
    /// through the classic per-call compile-and-probe path, which the
    /// equivalence property tests pin the planned path against.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache = swdb_query::PlanCache::new(enabled);
    }

    /// The stored graph (the raw assertions, not their closure).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of asserted triples.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if no triple is asserted.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Inserts a triple. Returns `true` if it was new. The maintained
    /// closure is extended by delta propagation, not recomputed, and the
    /// cached evaluation index absorbs the closure delta in place.
    pub fn insert(&mut self, triple: impl Into<Triple>) -> bool {
        let triple = triple.into();
        let added = self.graph.insert(triple.clone());
        if added {
            let delta = self.reasoner.insert_with_delta(&triple);
            self.feed_delta(&delta, false);
            if self.durability.is_some() {
                let text = swdb_store::serialize(&std::iter::once(triple).collect());
                self.log_wal(&[WalRecord::InsertGraph(text)]);
            }
        }
        added
    }

    /// Removes a triple. Returns `true` if it was present. The maintained
    /// closure retracts exactly the consequences that lost support (DRed),
    /// and the cached evaluation index absorbs the closure delta in place.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        let removed = self.graph.remove(triple);
        if removed {
            let delta = self.reasoner.remove_with_delta(triple);
            self.feed_delta(&delta, true);
            if self.durability.is_some() {
                let text = swdb_store::serialize(&std::iter::once(triple.clone()).collect());
                self.log_wal(&[WalRecord::RemoveGraph(text)]);
            }
        }
        removed
    }

    /// Inserts every triple of a graph. The maintained closure is extended
    /// in one frontier-batched semi-naive round
    /// ([`MaterializedStore::insert_graph`]) rather than a propagation
    /// fixpoint per triple, so bulk loads amortize the index probes; the
    /// evaluation index absorbs the whole batch as one delta.
    pub fn insert_graph(&mut self, graph: &Graph) {
        for t in graph.iter() {
            self.graph.insert(t.clone());
        }
        let delta = self.reasoner.insert_graph_with_delta(graph);
        self.feed_delta(&delta, false);
        if self.durability.is_some() && !graph.is_empty() {
            self.log_wal(&[WalRecord::InsertGraph(swdb_store::serialize(graph))]);
        }
    }

    /// Routes one mutation's closure delta into the maintained engines.
    /// Under RDFS the evaluation graph is `core(cl(D))`, so the evaluation
    /// engine consumes the *closure* delta; under simple entailment it is
    /// `core(D)`, so it consumes the base assertion/retraction itself. The
    /// asserted-store core (if built) always consumes the base delta, and
    /// every mutation invalidates the cached premise overlays.
    fn feed_delta(&mut self, delta: &ClosureDelta, removal: bool) {
        self.premise_cache.clear();
        // Mutation: the evaluation index (and possibly the dictionary)
        // changed under every costed plan.
        self.plan_cache.bump_generation();
        let none: &[IdTriple] = &[];
        if let Some(engine) = self.evaluation.as_mut() {
            let dictionary = self.reasoner.store().dictionary();
            let (added, removed): (&[IdTriple], &[IdTriple]) = match (self.regime, removal) {
                (EntailmentRegime::Rdfs, _) => (&delta.added, &delta.removed),
                (EntailmentRegime::Simple, false) => (&delta.base, none),
                (EntailmentRegime::Simple, true) => (none, &delta.base),
            };
            engine.apply_delta(added, removed, dictionary);
        }
        if let Some(engine) = self.asserted_core.as_mut() {
            let dictionary = self.reasoner.store().dictionary();
            let (added, removed): (&[IdTriple], &[IdTriple]) = if removal {
                (none, &delta.base)
            } else {
                (&delta.base, none)
            };
            engine.apply_delta(added, removed, dictionary);
        }
        // The largest-blank-component early warning fires on every commit,
        // not just on demand: the engine path observes it inside
        // `apply_delta`; before the engine's cold build the stored graph is
        // scanned directly (gated on the metrics level, so the unobserved
        // write path pays one relaxed load).
        if self.evaluation.is_none() && self.metrics.on(MetricsLevel::Counters) {
            let stats = GraphStats::of(&self.graph);
            self.metrics
                .observe_largest_blank_component(stats.largest_blank_component() as u64);
        }
    }

    /// Descriptive statistics of the stored graph. Also feeds the
    /// largest-blank-component early warning: the observation updates the
    /// metrics gauge and counts a warning when the size exceeds the
    /// configured threshold (`SWDB_BLANK_WARN`, or
    /// [`swdb_obs::Metrics::set_blank_warn_threshold`]).
    pub fn stats(&self) -> GraphStats {
        let stats = GraphStats::of(&self.graph);
        self.metrics
            .observe_largest_blank_component(stats.largest_blank_component() as u64);
        stats
    }

    // ----- semantics -----

    /// Does the database entail the given graph under the current regime?
    pub fn entails(&self, conclusion: &Graph) -> bool {
        match self.regime {
            EntailmentRegime::Simple => swdb_entailment::simple_entails(&self.graph, conclusion),
            EntailmentRegime::Rdfs => swdb_entailment::entails(&self.graph, conclusion),
        }
    }

    /// Is the database equivalent to the given graph under the current
    /// regime?
    pub fn equivalent_to(&self, other: &Graph) -> bool {
        match self.regime {
            EntailmentRegime::Simple => swdb_entailment::simple_equivalent(&self.graph, other),
            EntailmentRegime::Rdfs => swdb_entailment::equivalent(&self.graph, other),
        }
    }

    /// The RDFS closure `cl(D)` of the stored graph, served from the
    /// incrementally maintained materialization (Theorem 3.6(2): `cl`
    /// coincides with `RDFS-cl`, which `swdb-reason` maintains). The
    /// recomputing spec path remains available as
    /// [`SemanticWebDatabase::closure_recomputed`].
    pub fn closure(&self) -> Graph {
        self.reasoner.closure_graph()
    }

    /// The closure recomputed from scratch through
    /// `swdb_normal::closure` / `swdb_entailment::rdfs_closure` — the
    /// executable specification the incremental path is property-tested
    /// against.
    pub fn closure_recomputed(&self) -> Graph {
        swdb_normal::closure(&self.graph)
    }

    /// Membership in `cl(D)` as one indexed probe against the maintained
    /// closure — no fixpoint, no graph traversal.
    pub fn closure_contains(&self, triple: &Triple) -> bool {
        self.reasoner.closure_contains(triple)
    }

    /// The maintained store + closure (the `swdb-reason` subsystem), for
    /// callers that want id-level scans over asserted or inferred triples.
    pub fn reasoner(&self) -> &MaterializedStore {
        &self.reasoner
    }

    /// The core of the stored graph.
    pub fn core(&self) -> Graph {
        swdb_normal::core(&self.graph)
    }

    /// The normal form `nf(D)` under the current regime: `core(cl(D))` for
    /// RDFS, `core(D)` for simple entailment.
    pub fn normal_form(&self) -> Graph {
        match self.regime {
            EntailmentRegime::Simple => swdb_normal::core(&self.graph),
            EntailmentRegime::Rdfs => swdb_normal::normal_form(&self.graph),
        }
    }

    /// Is the stored graph lean?
    pub fn is_lean(&self) -> bool {
        swdb_normal::is_lean(&self.graph)
    }

    /// Replaces the stored graph by its core, removing redundancy while
    /// preserving equivalence. Returns the number of triples removed.
    ///
    /// The core of the *asserted* graph is read off an [`IdCoreEngine`] in
    /// id space — under simple entailment the evaluation engine already is
    /// one; under RDFS a second engine over the asserted store is built
    /// lazily here and then maintained under base deltas — so minimizing
    /// never runs the string-space retraction search.
    pub fn minimize(&mut self) -> usize {
        let before = self.graph.len();
        let core = self.asserted_core_graph();
        // The core is a subgraph: retract the dropped triples one by one so
        // the maintained closure — and with it the maintained engines —
        // shrinks incrementally too.
        let dropped: Vec<Triple> = self.graph.difference(&core).iter().cloned().collect();
        for t in &dropped {
            let delta = self.reasoner.remove_with_delta(t);
            self.feed_delta(&delta, true);
        }
        self.graph = core;
        if self.durability.is_some() && !dropped.is_empty() {
            let text = swdb_store::serialize(&dropped.iter().cloned().collect());
            self.log_wal(&[WalRecord::RemoveGraph(text)]);
        }
        before - self.graph.len()
    }

    /// The core of the asserted graph, decoded from the maintained id
    /// engine that covers it. The result is a genuine subgraph of the
    /// stored graph (the engine retracts, never renames).
    fn asserted_core_graph(&mut self) -> Graph {
        let engine = if self.regime == EntailmentRegime::Simple {
            self.ensure_evaluation();
            self.evaluation.as_ref().expect("just ensured")
        } else {
            if self.asserted_core.is_none() {
                self.asserted_core = Some(IdCoreEngine::from_triples_budgeted(
                    self.reasoner.store().iter_ids(),
                    self.reasoner.store().dictionary(),
                    self.metrics.clone(),
                    self.core_budget,
                ));
            }
            self.asserted_core.as_ref().expect("just built")
        };
        let store = self.reasoner.store();
        engine
            .index()
            .iter()
            .map(|ids| store.materialize(ids))
            .collect()
    }

    // ----- query answering -----

    /// Ensures the id-space evaluation engine is built, then returns the
    /// evaluation index with the dictionary it is encoded against.
    ///
    /// The evaluation graph is `nf(D) = core(cl(D))` under RDFS and
    /// `core(D)` under simple entailment. The cold build never leaves id
    /// space: under RDFS the maintained closure index feeds the core engine
    /// directly (no closure fixpoint, no string-graph materialization);
    /// under simple entailment the asserted store does. Afterwards the
    /// engine is kept in step by [`SemanticWebDatabase::feed_delta`], so
    /// this cold path runs once, not per mutation.
    fn evaluation(&mut self) -> (&Dictionary, &IdIndex) {
        self.ensure_evaluation();
        (
            self.reasoner.store().dictionary(),
            self.evaluation.as_ref().expect("just initialised").index(),
        )
    }

    /// Builds the evaluation engine if it is not built yet (the cold path
    /// behind [`SemanticWebDatabase::evaluation`]).
    fn ensure_evaluation(&mut self) {
        if self.evaluation.is_none() {
            let dictionary = self.reasoner.store().dictionary();
            let engine = match self.regime {
                EntailmentRegime::Rdfs => IdCoreEngine::from_triples_budgeted(
                    self.reasoner.closure_index().iter(),
                    dictionary,
                    self.metrics.clone(),
                    self.core_budget,
                ),
                // Under simple entailment, matching against the core of D
                // gives equivalence-invariant answers without applying the
                // vocabulary rules.
                EntailmentRegime::Simple => IdCoreEngine::from_triples_budgeted(
                    self.reasoner.store().iter_ids(),
                    dictionary,
                    self.metrics.clone(),
                    self.core_budget,
                ),
            };
            self.evaluation = Some(engine);
        }
    }

    /// The evaluation graph premise-free queries run against, decoded to
    /// terms: `nf(D) = core(cl(D))` under RDFS, `core(D)` under simple
    /// entailment (built/maintained incrementally; the equivalence tests
    /// pin it against the recomputing `swdb_normal` pipeline up to
    /// isomorphism).
    pub fn evaluation_graph(&mut self) -> Graph {
        self.evaluation();
        let store = self.reasoner.store();
        self.evaluation
            .as_ref()
            .expect("just ensured")
            .index()
            .iter()
            .map(|ids| store.materialize(ids))
            .collect()
    }

    /// Does this premise query go through the Proposition 5.9 expansion?
    /// Delegates to the shared gate [`expansion_eligible`] (also used by
    /// [`crate::publish::PublishedSnapshot`], whose servable set is exactly
    /// "premise-free or expansion-eligible").
    fn premise_via_expansion(&self, query: &Query) -> bool {
        expansion_eligible(self.regime, query)
    }

    /// Returns the position of the cached overlay for this premise,
    /// computing (and caching) it on a miss.
    ///
    /// The premise's terms are interned (append-only; no index is touched),
    /// its blanks renamed apart from every interned blank label first — the
    /// id-space counterpart of the capture-avoiding `Graph::merge` the spec
    /// path uses. Under RDFS the transient delta is the premise's closure
    /// growth `cl(D + P) − cl(D)`, previewed against the maintained closure
    /// without committing; under simple entailment it is the premise's
    /// not-yet-asserted triples. The evaluation engine then cores the
    /// overlaid set as a scoped diff — the published index stays
    /// bit-identical.
    fn premise_overlay(&mut self, premise: &Graph) -> usize {
        self.ensure_evaluation();
        if let Some(at) = self.premise_cache.iter().position(|(g, _)| g == premise) {
            self.metrics.count(Counter::OverlayCacheHits, 1);
            return at;
        }
        self.metrics.count(Counter::OverlayCacheMisses, 1);
        let t0 = self
            .metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let renamed = rename_premise_apart(premise, &self.graph);
        let before = self.reasoner.store().dictionary().len();
        let ids = self.reasoner.intern_graph(&renamed);
        if self.reasoner.store().dictionary().len() != before {
            // Interning the premise grew the dictionary. Plans never cache
            // resolved ids (constants re-resolve per call), but the growth
            // is the agreed invalidation signal alongside mutation and
            // regime switch: doom cached plans so none outlives a
            // dictionary it was not costed under.
            self.plan_cache.bump_generation();
        }
        let engine = self.evaluation.as_ref().expect("just ensured");
        let delta: Vec<IdTriple> = match self.regime {
            EntailmentRegime::Rdfs => self.reasoner.preview_insert(&ids),
            EntailmentRegime::Simple => ids.into_iter().filter(|&t| !engine.maintains(t)).collect(),
        };
        let overlay = engine.overlay_core(&delta, self.reasoner.store().dictionary());
        if let Some(t0) = t0 {
            self.metrics
                .record(Hist::SpanOverlayBuildNs, t0.elapsed().as_nanos() as u64);
        }
        if self.premise_cache.len() >= PREMISE_CACHE_CAPACITY {
            self.premise_cache.remove(0);
            self.metrics.count(Counter::OverlayCacheEvictions, 1);
        }
        self.premise_cache.push((premise.clone(), overlay));
        self.premise_cache.len() - 1
    }

    /// The evaluation substrate of an overlaid premise query: the
    /// dictionary plus the layered view `index ∪ added − removed` over the
    /// published evaluation index (computing and caching the overlay first
    /// if needed).
    fn premise_target(&mut self, premise: &Graph) -> (&Dictionary, swdb_hom::Overlay<'_>) {
        let at = self.premise_overlay(premise);
        let overlay = &self.premise_cache[at].1;
        let target = overlay.target(self.evaluation.as_ref().expect("overlay built it").index());
        (self.reasoner.store().dictionary(), target)
    }

    /// Answers a query under the given semantics — entirely in id space.
    /// Premise-free queries join the cached evaluation index directly;
    /// premise queries go through the Proposition 5.9 expansion or the
    /// premise overlay (see the module docs).
    pub fn answer(&mut self, query: &Query, semantics: Semantics) -> Graph {
        let metrics = self.metrics.clone();
        let t0 = metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let out = self.answer_inner(query, semantics, &metrics);
        if let Some(t0) = t0 {
            metrics.record(Hist::SpanQueryAnswerNs, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// [`SemanticWebDatabase::answer`] plus the degradation flag of the
    /// substrate the answer was computed against: `true` when a core-budget
    /// exhaustion left that substrate (the published evaluation graph, or
    /// this query's premise overlay) a sound but possibly non-minimal
    /// superset of the true core. The answer itself is still sound and
    /// complete — equivalent to the unbudgeted answer — but may mention
    /// redundant blanks a finished core search would have folded away.
    /// Callers that need minimality can poll
    /// [`SemanticWebDatabase::refresh_degraded`] and re-ask.
    pub fn answer_with_status(&mut self, query: &Query, semantics: Semantics) -> (Graph, bool) {
        let answer = self.answer(query, semantics);
        (answer, self.query_non_minimal(query))
    }

    /// The `non_minimal` flag for a query that was just answered: the
    /// evaluation engine's degradation for the premise-free and expansion
    /// mechanisms, the cached overlay's flag for the overlay mechanism
    /// (which already folds the engine's state in). Falls back to the
    /// engine state on a cache miss (e.g. the overlay was evicted between
    /// answering and asking).
    fn query_non_minimal(&self, query: &Query) -> bool {
        let engine_degraded = self.evaluation.as_ref().is_some_and(|e| e.is_degraded());
        if query.is_premise_free() || self.premise_via_expansion(query) {
            return engine_degraded;
        }
        self.premise_cache
            .iter()
            .find(|(g, _)| g == query.premise())
            .map_or(engine_degraded, |(_, overlay)| overlay.non_minimal)
    }

    /// The dispatch behind [`SemanticWebDatabase::answer`] (split out so the
    /// span timing wraps every mechanism once).
    fn answer_inner(&mut self, query: &Query, semantics: Semantics, metrics: &Metrics) -> Graph {
        if query.is_premise_free() {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            return swdb_query::planned_answer(
                &self.plan_cache,
                query,
                dictionary,
                index,
                semantics,
                metrics,
            );
        }
        if self.premise_via_expansion(query) {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, metrics);
                return swdb_query::planned_answer_union(
                    &self.plan_cache,
                    &members,
                    dictionary,
                    index,
                    semantics,
                    metrics,
                );
            }
            let members = swdb_query::premise_free_expansion(query);
            if metrics.on(MetricsLevel::Counters) {
                metrics.count(Counter::QueryCompiled, 1);
                let metered = swdb_query::MeteredTarget::new(index);
                let answer = swdb_query::id_answer_union_of_queries(
                    &members, dictionary, &metered, semantics,
                );
                metered.flush(metrics);
                metrics.count(Counter::QueryAnswers, answer.len() as u64);
                return answer;
            }
            return swdb_query::id_answer_union_of_queries(&members, dictionary, index, semantics);
        }
        let (dictionary, target) = self.premise_target(query.premise());
        swdb_query::id_answer_metered(query, dictionary, &target, semantics, metrics)
    }

    /// Explains how [`SemanticWebDatabase::answer`] would (and does) execute
    /// this query: the mechanism chosen by the dispatch (`premise_free`,
    /// `expansion`, or `overlay`), the compiled pattern count, the join
    /// order actually taken by the most-constrained-first solver (original
    /// body-pattern indices, in descent order at the first full descent),
    /// and the measured candidate probes, enumerated bindings, and answer
    /// count. Runs the real execution pipeline with a recorder attached —
    /// the join order reported is the one `swdb_query::exec` chooses, not a
    /// re-derivation — so explaining is roughly as expensive as answering.
    /// For the expansion mechanism, `members` counts the premise-free
    /// members of `Ω_q`; `join_order` and `patterns` describe the first
    /// member, probes/bindings/answers sum over all of them.
    pub fn explain(&mut self, query: &Query, semantics: Semantics) -> Explain {
        let metrics = self.metrics.clone();
        if query.is_premise_free() {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            let mut explain = swdb_query::planned_explain(
                &self.plan_cache,
                query,
                dictionary,
                index,
                semantics,
                &metrics,
            );
            explain.non_minimal = self.query_non_minimal(query);
            return explain;
        }
        if self.premise_via_expansion(query) {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            let mut explain = if self.plan_cache.enabled() {
                let (members, hit) =
                    swdb_query::expansion_members(&self.plan_cache, query, &metrics);
                swdb_query::planned_explain_union(
                    &self.plan_cache,
                    &members,
                    dictionary,
                    index,
                    semantics,
                    &metrics,
                    hit,
                )
            } else {
                let members = swdb_query::premise_free_expansion(query);
                let mut merged: Option<Explain> = None;
                for member in &members {
                    let e = swdb_query::explain_premise_free(member, dictionary, index, semantics);
                    match merged.as_mut() {
                        None => merged = Some(e),
                        Some(m) => {
                            m.probes += e.probes;
                            m.bindings += e.bindings;
                            m.answers += e.answers;
                            m.truncated |= e.truncated;
                        }
                    }
                }
                let mut explain = merged.unwrap_or_else(|| Explain::empty("expansion", semantics));
                explain.mechanism = "expansion";
                explain.members = members.len();
                explain
            };
            explain.non_minimal = self.query_non_minimal(query);
            return explain;
        }
        let (dictionary, target) = self.premise_target(query.premise());
        let mut explain = swdb_query::explain_premise_free(query, dictionary, &target, semantics);
        explain.mechanism = "overlay";
        explain.non_minimal = self.query_non_minimal(query);
        explain
    }

    /// The recomputing specification path for query answering: evaluates
    /// through the string-space solver over a freshly normalized evaluation
    /// graph, exactly as the facade did before the id-space engine existed.
    /// The equivalence property tests pin [`SemanticWebDatabase::answer`]
    /// against this, the same way `closure()` is pinned against
    /// [`SemanticWebDatabase::closure_recomputed`].
    pub fn answer_recomputed(&self, query: &Query, semantics: Semantics) -> Graph {
        swdb_query::answer_against(query, &self.normalized_for(query), semantics)
    }

    /// The paper-defined evaluation graph of a query under the current
    /// regime, recomputed wholesale in string space: `nf(D + P)` under RDFS
    /// (`core(cl(D + P))`), `core(D + P)` under simple entailment — with
    /// `D + P` the capture-avoiding merge. Premise-free queries drop the
    /// `+ P`.
    fn normalized_for(&self, query: &Query) -> NormalizedDatabase {
        match (self.regime, query.is_premise_free()) {
            (EntailmentRegime::Rdfs, true) => NormalizedDatabase::without_premise(&self.graph),
            (EntailmentRegime::Rdfs, false) => NormalizedDatabase::new(&self.graph, query),
            (EntailmentRegime::Simple, true) => {
                NormalizedDatabase::assume_normalized(swdb_normal::core(&self.graph))
            }
            (EntailmentRegime::Simple, false) => NormalizedDatabase::assume_normalized(
                swdb_normal::core(&self.graph.merge(query.premise())),
            ),
        }
    }

    /// Answers a query under union semantics (the paper's default).
    pub fn answer_union(&mut self, query: &Query) -> Graph {
        self.answer(query, Semantics::Union)
    }

    /// Answers a query under merge semantics.
    pub fn answer_merge(&mut self, query: &Query) -> Graph {
        self.answer(query, Semantics::Merge)
    }

    /// The pre-answer (list of single answers) of a query, computed through
    /// the same id paths as [`SemanticWebDatabase::answer`].
    pub fn pre_answers(&mut self, query: &Query) -> Vec<Graph> {
        let metrics = self.metrics.clone();
        if query.is_premise_free() {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            return swdb_query::planned_pre_answers(
                &self.plan_cache,
                query,
                dictionary,
                index,
                &metrics,
            );
        }
        if self.premise_via_expansion(query) {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, &metrics);
                return swdb_query::planned_pre_answers_union(
                    &self.plan_cache,
                    &members,
                    dictionary,
                    index,
                    &metrics,
                );
            }
            let members = swdb_query::premise_free_expansion(query);
            return swdb_query::id_pre_answers_of_queries(&members, dictionary, index);
        }
        let (dictionary, target) = self.premise_target(query.premise());
        swdb_query::id_pre_answers_metered(query, dictionary, &target, &metrics)
    }

    /// Returns `true` if the query has no answer over this database. Every
    /// path — premise-free, expansion, overlay — early-exits on the first
    /// witnessing matching instead of materializing the pre-answer (for the
    /// expansion, per member).
    pub fn answer_is_empty(&mut self, query: &Query) -> bool {
        let metrics = self.metrics.clone();
        if query.is_premise_free() {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            return swdb_query::planned_answer_is_empty(
                &self.plan_cache,
                query,
                dictionary,
                index,
                &metrics,
            );
        }
        if self.premise_via_expansion(query) {
            self.ensure_evaluation();
            let dictionary = self.reasoner.store().dictionary();
            let index = self.evaluation.as_ref().expect("just ensured").index();
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, &metrics);
                return swdb_query::planned_union_is_empty(
                    &self.plan_cache,
                    &members,
                    dictionary,
                    index,
                    &metrics,
                );
            }
            let members = swdb_query::premise_free_expansion(query);
            return swdb_query::id_union_answer_is_empty(&members, dictionary, index);
        }
        let (dictionary, target) = self.premise_target(query.premise());
        swdb_query::id_answer_is_empty_metered(query, dictionary, &target, &metrics)
    }

    /// Answers a query and removes redundancy from the result (returns the
    /// core of the answer graph; §6.2).
    pub fn answer_without_redundancy(&mut self, query: &Query, semantics: Semantics) -> Graph {
        swdb_query::eliminate_redundancy(&self.answer(query, semantics))
    }

    // ----- containment -----

    /// Decides `q ⊑ q'` under the requested notion, delegating to
    /// `swdb-containment`.
    pub fn query_contained_in(
        q: &Query,
        q_prime: &Query,
        notion: swdb_containment::Notion,
    ) -> bool {
        swdb_containment::contained_in(q, q_prime, notion)
    }
}

impl From<Graph> for SemanticWebDatabase {
    fn from(graph: Graph) -> Self {
        SemanticWebDatabase::from_graph(graph)
    }
}

/// The shared dispatch gate for the Proposition 5.9 expansion, used by the
/// facade's `answer` dispatch and by [`crate::publish::PublishedSnapshot`]
/// (a snapshot can serve exactly the premise-free and expansion mechanisms —
/// both need only the dictionary + index pair it carries).
///
/// Only under simple entailment (once RDFS vocabulary is interpreted, a
/// premise data triple can fire rules against stored schema, which no
/// premise-free rewriting over `nf(D)` can see — the paper notes Prop. 5.9
/// fails there), only for ground premises (a premise blank reached by the
/// head would be Skolemized per expansion member instead of shared across
/// single answers), only for blank-free heads (head blanks Skolemize over
/// *all* body variables, and μ substitutes some of those away per member,
/// changing the Skolem values), and only within [`EXPANSION_MAP_BUDGET`].
/// Everything else takes the overlay, which needs the mutable facade.
pub(crate) fn expansion_eligible(regime: EntailmentRegime, query: &Query) -> bool {
    let within_budget = (query.premise().len() as u64)
        .saturating_add(1)
        .checked_pow(query.body().len() as u32)
        .is_some_and(|worst_case| worst_case <= EXPANSION_MAP_BUDGET);
    regime == EntailmentRegime::Simple
        && query.premise().is_ground()
        && !swdb_query::head_has_blank_consts(query)
        && within_budget
}

/// Renames apart every premise blank whose label also names a blank of the
/// stored graph — the id-space counterpart of the capture avoidance in
/// [`Graph::merge`]: a premise blank is existentially scoped to the query
/// and must never be identified with a database blank that happens to share
/// its label. Every blank reachable by evaluation (the evaluation graph's,
/// the closure's) is a stored-graph blank, so clashing against the stored
/// graph — not the append-only dictionary — suffices and keeps the renaming
/// deterministic across repeated queries (no per-repeat fresh labels).
fn rename_premise_apart(premise: &Graph, stored: &Graph) -> Graph {
    let mine = stored.blank_nodes();
    let theirs = premise.blank_nodes();
    let clashes: Vec<&BlankNode> = theirs.iter().filter(|b| mine.contains(*b)).collect();
    if clashes.is_empty() {
        return premise.clone();
    }
    let used: std::collections::BTreeSet<&str> = mine
        .iter()
        .chain(theirs.iter())
        .map(|b| b.as_str())
        .collect();
    let mut renaming: std::collections::BTreeMap<BlankNode, Term> =
        std::collections::BTreeMap::new();
    let mut counter = 0usize;
    for blank in clashes {
        let fresh = loop {
            let candidate = format!("{}~p{}", blank.as_str(), counter);
            counter += 1;
            if !used.contains(candidate.as_str()) {
                break candidate;
            }
        };
        renaming.insert(blank.clone(), Term::blank(fresh));
    }
    premise.apply(&swdb_model::TermMap::from_bindings(renaming))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_hom::Variable;
    use swdb_model::{graph, rdfs, triple};
    use swdb_query::query;

    fn sample() -> SemanticWebDatabase {
        SemanticWebDatabase::from_graph(graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:creates", rdfs::DOM, "ex:Artist"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]))
    }

    #[test]
    fn insert_remove_and_cache_invalidation() {
        let mut db = sample();
        assert_eq!(db.len(), 3);
        let q = query([("?X", "ex:creates", "?Y")], [("?X", "ex:creates", "?Y")]);
        assert_eq!(db.answer_union(&q).len(), 1);
        db.insert(triple("ex:Rodin", "ex:paints", "ex:TheThinker"));
        assert_eq!(
            db.answer_union(&q).len(),
            2,
            "cache must be refreshed after insert"
        );
        db.remove(&triple("ex:Rodin", "ex:paints", "ex:TheThinker"));
        assert_eq!(db.answer_union(&q).len(), 1);
    }

    #[test]
    fn regimes_change_entailment_and_answers() {
        let mut db = sample();
        let inferred = graph([("ex:Picasso", rdfs::TYPE, "ex:Artist")]);
        assert!(db.entails(&inferred), "RDFS regime sees domain typing");
        db.set_regime(EntailmentRegime::Simple);
        assert!(!db.entails(&inferred), "simple regime does not");
        let q = query(
            [("?X", rdfs::TYPE, "ex:Artist")],
            [("?X", rdfs::TYPE, "ex:Artist")],
        );
        assert!(db.answer_union(&q).is_empty());
        db.set_regime(EntailmentRegime::Rdfs);
        assert!(!db.answer_union(&q).is_empty());
    }

    #[test]
    fn incremental_closure_matches_recomputation_under_mutation() {
        let mut db = sample();
        assert_eq!(db.closure(), db.closure_recomputed());
        db.insert(triple("ex:creates", rdfs::RANGE, "ex:Artifact"));
        assert_eq!(db.closure(), db.closure_recomputed());
        assert!(db.closure_contains(&triple("ex:Guernica", rdfs::TYPE, "ex:Artifact")));
        db.remove(&triple("ex:paints", rdfs::SP, "ex:creates"));
        assert_eq!(db.closure(), db.closure_recomputed());
        assert!(!db.closure_contains(&triple("ex:Picasso", "ex:creates", "ex:Guernica")));
        db.insert_graph(&graph([
            ("ex:Artist", rdfs::SC, "ex:Person"),
            ("ex:Picasso", rdfs::TYPE, "ex:Artist"),
        ]));
        assert_eq!(db.closure(), db.closure_recomputed());
        assert!(db.closure_contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Person")));
    }

    #[test]
    fn minimize_keeps_the_maintained_closure_in_step() {
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("ex:b", rdfs::TYPE, "ex:C"),
        ]));
        assert!(db.minimize() > 0);
        assert_eq!(db.closure(), db.closure_recomputed());
    }

    #[test]
    fn ntriples_round_trip() {
        let db = sample();
        let text = db.to_ntriples();
        let restored = SemanticWebDatabase::from_ntriples(&text).unwrap();
        assert_eq!(restored.graph(), db.graph());
    }

    #[test]
    fn minimize_removes_redundant_blanks() {
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
        ]));
        assert!(!db.is_lean());
        let removed = db.minimize();
        assert_eq!(removed, 1);
        assert!(db.is_lean());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn closure_core_and_normal_form_are_consistent() {
        let db = sample();
        let cl = db.closure();
        assert!(db.graph().is_subgraph_of(&cl));
        assert!(db.equivalent_to(&cl));
        let nf = db.normal_form();
        assert!(db.equivalent_to(&nf));
        assert!(swdb_normal::is_lean(&nf));
    }

    #[test]
    fn id_read_path_matches_the_recomputing_specification() {
        // The redundant blank shadow makes nf(D) a proper subgraph of
        // cl(D), so this exercises the core step of the evaluation index,
        // not just the closure.
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:creates", rdfs::DOM, "ex:Artist"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:a", "ex:p", "ex:b"),
            ("_:N", "ex:p", "ex:b"),
        ]));
        let queries = [
            query([("?X", "ex:creates", "?Y")], [("?X", "ex:creates", "?Y")]),
            query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]),
            query([("?X", "?P", "?Y")], [("?X", "?P", "?Y")]),
            query(
                [("?X", rdfs::TYPE, "ex:Artist")],
                [("?X", rdfs::TYPE, "ex:Artist")],
            ),
        ];
        for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
            db.set_regime(regime);
            for q in &queries {
                assert_eq!(
                    db.answer(q, Semantics::Union),
                    db.answer_recomputed(q, Semantics::Union),
                    "union answers must be identical under {regime:?} for {q}"
                );
                assert!(
                    swdb_model::isomorphic(
                        &db.answer(q, Semantics::Merge),
                        &db.answer_recomputed(q, Semantics::Merge),
                    ),
                    "merge answers must be isomorphic under {regime:?} for {q}"
                );
            }
        }
    }

    #[test]
    fn unknown_body_constants_short_circuit_to_empty_answers() {
        let mut db = sample();
        let q = query(
            [("?X", "ex:neverSeen", "?Y")],
            [("?X", "ex:neverSeen", "?Y")],
        );
        assert!(db.answer_union(&q).is_empty());
        assert!(db.pre_answers(&q).is_empty());
        assert!(db.answer_is_empty(&q));
    }

    #[test]
    fn premise_queries_run_through_the_overlay_under_rdfs() {
        // The §4 running example: all relatives of Peter, knowing son ⊑
        // relative. The premise schema triple must fire against the stored
        // data triple through the closure *preview* — nothing is committed.
        let mut db = SemanticWebDatabase::from_graph(graph([("ex:John", "ex:son", "ex:Peter")]));
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            swdb_hom::pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            graph([("ex:son", rdfs::SP, "ex:relative")]),
        )
        .unwrap();
        let answers = db.answer_union(&q);
        assert!(answers.contains(&triple("ex:John", "ex:relative", "ex:Peter")));
        assert!(!db.answer_is_empty(&q));
        // The overlaid evaluation never perturbed the durable state: the
        // premise-free read path and the closure are exactly as before.
        assert!(!db.closure_contains(&triple("ex:John", "ex:relative", "ex:Peter")));
        let premise_free = query(
            [("?X", "ex:relative", "ex:Peter")],
            [("?X", "ex:relative", "ex:Peter")],
        );
        assert!(db.answer_union(&premise_free).is_empty());
    }

    #[test]
    fn overlaid_premise_queries_leave_the_evaluation_index_bit_identical() {
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:a", "ex:p", "_:X"),
        ]));
        for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
            db.set_regime(regime);
            let before = db.evaluation_graph();
            let q = swdb_query::Query::with_premise(
                swdb_hom::pattern_graph([("?X", rdfs::TYPE, "ex:Artist")]),
                swdb_hom::pattern_graph([("?X", rdfs::TYPE, "ex:Artist")]),
                graph([
                    ("ex:creates", rdfs::DOM, "ex:Artist"),
                    ("ex:a", "ex:p", "_:X"),
                    ("ex:extra", "ex:p", "ex:b"),
                ]),
            )
            .unwrap();
            let _ = db.answer(&q, Semantics::Union);
            let _ = db.pre_answers(&q);
            let _ = db.answer_is_empty(&q);
            assert_eq!(
                db.evaluation_graph(),
                before,
                "{regime:?}: the published evaluation graph changed under an overlaid query"
            );
        }
    }

    #[test]
    fn premise_paths_agree_with_the_recomputing_specification() {
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:u", "ex:q", "ex:a"),
            ("ex:u", "ex:q", "ex:c"),
            ("ex:c", "ex:t", "ex:s"),
        ]));
        let queries = [
            // Example 5.10's shape (simple query, ground premise).
            swdb_query::Query::with_premise(
                swdb_hom::pattern_graph([("?X", "ex:p", "?Y")]),
                swdb_hom::pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
                graph([("ex:a", "ex:t", "ex:s"), ("ex:b", "ex:t", "ex:s")]),
            )
            .unwrap(),
            // RDFS vocabulary in the premise.
            swdb_query::Query::with_premise(
                swdb_hom::pattern_graph([("?X", "ex:creates", "?Y")]),
                swdb_hom::pattern_graph([("?X", "ex:creates", "?Y")]),
                graph([("ex:sketches", rdfs::SP, "ex:creates")]),
            )
            .unwrap(),
            // A blank-bearing premise (overlay path in both regimes).
            swdb_query::Query::with_premise(
                swdb_hom::pattern_graph([("?X", "ex:q", "?Y")]),
                swdb_hom::pattern_graph([("?X", "ex:q", "?Y")]),
                graph([("ex:w", "ex:q", "_:P")]),
            )
            .unwrap(),
        ];
        for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
            db.set_regime(regime);
            for q in &queries {
                for semantics in [Semantics::Union, Semantics::Merge] {
                    let id = db.answer(q, semantics);
                    let spec = db.answer_recomputed(q, semantics);
                    assert!(
                        swdb_model::isomorphic(&id, &spec),
                        "{regime:?}/{semantics:?}: {id} vs {spec} for {q}"
                    );
                }
                assert_eq!(
                    db.answer_is_empty(q),
                    db.answer_recomputed(q, Semantics::Union).is_empty(),
                    "{regime:?}: emptiness diverged for {q}"
                );
            }
        }
    }

    #[test]
    fn ground_simple_premises_take_the_expansion_path() {
        let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        db.insert(triple("ex:u", "ex:q", "ex:a"));
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?X", "ex:p", "?Y")]),
            swdb_hom::pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(db.premise_via_expansion(&q));
        let answers = db.answer_union(&q);
        assert!(answers.contains(&triple("ex:u", "ex:p", "ex:a")));
        assert_eq!(answers.len(), 1);
        assert!(
            db.premise_cache.is_empty(),
            "the expansion path needs no overlay"
        );
        assert!(!db.answer_is_empty(&q));
    }

    #[test]
    fn skolemized_heads_with_premises_take_the_overlay_even_when_simple() {
        // The head blank Skolemizes over all body variables; expansion
        // members substitute some of them away, so their Skolem values
        // cannot coincide with the direct evaluation's — such queries must
        // route to the overlay.
        let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        db.insert(triple("ex:u", "ex:q", "ex:a"));
        db.insert(triple("ex:u", "ex:q", "ex:b"));
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?X", "ex:p", "_:H")]),
            swdb_hom::pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s"), ("ex:b", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(!db.premise_via_expansion(&q));
        assert!(
            swdb_model::isomorphic(
                &db.answer(&q, Semantics::Union),
                &db.answer_recomputed(&q, Semantics::Union)
            ),
            "Skolemized premise answers must match the spec"
        );
    }

    #[test]
    fn constrained_premise_queries_expand_without_losing_answers() {
        let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        db.insert(triple("ex:unrelated", "ex:r", "ex:z"));
        let q = swdb_query::Query::with_all(
            swdb_hom::pattern_graph([("?X", "ex:p", "?Y")]),
            swdb_hom::pattern_graph([("?X", "ex:q", "?Y")]),
            graph([("ex:a", "ex:q", "ex:b")]),
            [Variable::new("Y")].into_iter().collect(),
        )
        .unwrap();
        assert!(db.premise_via_expansion(&q));
        let answers = db.answer_union(&q);
        assert!(
            answers.contains(&triple("ex:a", "ex:p", "ex:b")),
            "the fully-premise-matched member must keep its (discharged) constraint: {answers}"
        );
        assert!(swdb_model::isomorphic(
            &answers,
            &db.answer_recomputed(&q, Semantics::Union)
        ));
        assert!(!db.answer_is_empty(&q));
    }

    #[test]
    fn premise_overlays_are_cached_until_a_mutation() {
        let mut db = SemanticWebDatabase::from_graph(graph([("ex:John", "ex:son", "ex:Peter")]));
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            swdb_hom::pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            graph([("ex:son", rdfs::SP, "ex:relative")]),
        )
        .unwrap();
        let _ = db.answer_union(&q);
        assert_eq!(db.premise_cache.len(), 1);
        let _ = db.answer_union(&q);
        assert_eq!(db.premise_cache.len(), 1, "second call hits the cache");
        db.insert(triple("ex:Mary", "ex:son", "ex:Peter"));
        assert!(
            db.premise_cache.is_empty(),
            "mutations invalidate premise overlays"
        );
        let answers = db.answer_union(&q);
        assert!(answers.contains(&triple("ex:Mary", "ex:relative", "ex:Peter")));
        assert_eq!(db.premise_cache.len(), 1);
    }

    #[test]
    fn premise_blanks_never_capture_database_blanks() {
        // The database and the premise both use the label _:X; the premise
        // copy is a different existential and must not be identified with
        // the stored one (Graph::merge semantics).
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:marked", "ex:yes"),
        ]));
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?W", "ex:marked", "?V")]),
            swdb_hom::pattern_graph([("ex:b", "ex:p", "?W"), ("?W", "ex:marked", "?V")]),
            graph([("ex:b", "ex:p", "_:X")]),
        )
        .unwrap();
        // The premise's _:X hangs off ex:b and is unmarked; only a captured
        // blank would make the body match.
        assert!(db.answer_union(&q).is_empty());
        assert!(
            swdb_model::isomorphic(
                &db.answer(&q, Semantics::Union),
                &db.answer_recomputed(&q, Semantics::Union)
            ),
            "capture avoidance must match the merge-based spec"
        );
    }

    #[test]
    fn answer_without_redundancy_is_lean() {
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "ex:b"),
            ("_:Y", "ex:r", "ex:b"),
        ]));
        let q = query([("?Z", "ex:p", "?U")], [("?Z", "ex:p", "?U")]);
        let raw = db.answer(&q, Semantics::Union);
        assert!(!swdb_normal::is_lean(&raw));
        let clean = db.answer_without_redundancy(&q, Semantics::Union);
        assert!(swdb_normal::is_lean(&clean));
        assert!(swdb_entailment::equivalent(&raw, &clean));
    }

    #[test]
    fn stats_reflect_the_stored_graph() {
        let db = sample();
        let stats = db.stats();
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.schema_triples, 2);
    }

    #[test]
    fn budgeted_answers_are_flagged_sound_and_recoverable() {
        use swdb_normal::CoreBudget;
        let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        db.set_metrics_level(MetricsLevel::Counters);
        // One fold-step per component: too little to prove any fold, so
        // every blank component is published uncored.
        db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
        db.insert_graph(&graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
        ]));
        let q = query([("?S", "ex:p", "?O")], [("?S", "ex:p", "?O")]);
        let (answers, non_minimal) = db.answer_with_status(&q, Semantics::Union);
        assert!(
            non_minimal,
            "exhaustion must be surfaced on the answer path"
        );
        assert!(db.is_degraded());
        assert_eq!(db.uncored_components(), 2);
        assert!(db.uncored_triples() >= 2);
        assert!(db.explain(&q, Semantics::Union).non_minimal);
        // Sound: the certain answer survives, and the whole answer graph is
        // equivalent to the spec's (only redundancy lingers).
        assert!(answers.contains(&triple("ex:a", "ex:p", "ex:b")));
        let spec = db.answer_recomputed(&q, Semantics::Union);
        assert!(spec.is_subgraph_of(&answers), "superset, never a subset");
        assert!(swdb_entailment::simple_equivalent(&answers, &spec));
        let snap = db.metrics().snapshot();
        assert!(snap.degraded.core_budget_exhausted >= 2);
        assert_eq!(snap.degraded.uncored_components, 2);
        assert!(db.metrics_snapshot().contains("\"uncored_components\": 2"));
        // Lifting the budget and retrying fully recovers the true core.
        db.set_core_budget(CoreBudgetMode::Unlimited);
        assert!(db.refresh_degraded());
        assert!(!db.is_degraded());
        let (recovered, non_minimal) = db.answer_with_status(&q, Semantics::Union);
        assert!(!non_minimal);
        assert!(!db.explain(&q, Semantics::Union).non_minimal);
        assert!(swdb_model::isomorphic(&recovered, &spec));
    }

    #[test]
    fn budgeted_minimize_degrades_gracefully_and_recovers() {
        use swdb_normal::CoreBudget;
        let mut db = SemanticWebDatabase::from_graph(graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
        ]));
        db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
        assert_eq!(db.minimize(), 0, "budget too small to prove the fold");
        assert!(db.is_degraded());
        assert!(db.uncored_triples() >= 1);
        db.set_core_budget(CoreBudgetMode::Unlimited);
        assert!(db.refresh_degraded());
        assert!(!db.is_degraded());
        assert_eq!(db.minimize(), 1);
        assert!(db.is_lean());
        assert_eq!(db.closure(), db.closure_recomputed());
    }

    #[test]
    fn overlay_queries_report_non_minimal_under_budget() {
        use swdb_normal::CoreBudget;
        let mut db = SemanticWebDatabase::from_graph(graph([("ex:a", "ex:p", "ex:b")]));
        db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
        // A blank-bearing premise routes to the overlay in every regime; its
        // scoped core search exhausts the one-step slice immediately.
        let q = swdb_query::Query::with_premise(
            swdb_hom::pattern_graph([("?S", "ex:p", "?O")]),
            swdb_hom::pattern_graph([("?S", "ex:p", "?O")]),
            graph([("ex:a", "ex:p", "_:P")]),
        )
        .unwrap();
        let (answers, non_minimal) = db.answer_with_status(&q, Semantics::Union);
        assert!(non_minimal, "overlay exhaustion must reach the caller");
        let explain = db.explain(&q, Semantics::Union);
        assert_eq!(explain.mechanism, "overlay");
        assert!(explain.non_minimal);
        assert!(explain.to_json().contains("\"non_minimal\": true"));
        assert!(answers.contains(&triple("ex:a", "ex:p", "ex:b")));
        assert!(swdb_model::isomorphic(
            &swdb_query::eliminate_redundancy(&answers),
            &db.answer_recomputed(&q, Semantics::Union),
        ));
        // The published evaluation graph itself is benign and stays exact:
        // premise-free queries are not flagged.
        let pf = query([("?S", "ex:p", "?O")], [("?S", "ex:p", "?O")]);
        assert!(!db.explain(&pf, Semantics::Union).non_minimal);
    }

    #[test]
    fn containment_is_reachable_through_the_facade() {
        let q = query(
            [("?A", "ex:paints", "?Y")],
            [
                ("?A", "ex:paints", "?Y"),
                ("?Y", "ex:exhibited", "ex:Uffizi"),
            ],
        );
        let q_prime = query([("?A", "ex:paints", "?Y")], [("?A", "ex:paints", "?Y")]);
        assert!(SemanticWebDatabase::query_contained_in(
            &q,
            &q_prime,
            swdb_containment::Notion::Standard
        ));
    }
}
