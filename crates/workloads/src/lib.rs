//! # swdb-workloads — synthetic workload generators
//!
//! Seeded, reproducible generators for every experiment in `EXPERIMENTS.md`:
//!
//! * [`art`] — the Fig. 1 art-gallery graph and its queries (E01, E11);
//! * [`random_rdf`] — random simple graphs, random RDFS schema graphs,
//!   redundancy injection, `sp`/`sc` chains and blank chains (E02, E05, E06,
//!   E08, E10);
//! * [`hard`] — graph-homomorphism encodings: colourability, cliques,
//!   (non-)lean cycles (E03, E08), and the adversarial core family —
//!   blank cliques, hidden folds, deep chains, wide fans — behind the
//!   degraded-mode tests and bench E22;
//! * [`university`] — a LUBM-style university instance with schema-aware
//!   queries (E11, E15, E16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod art;
pub mod hard;
pub mod random_rdf;
pub mod university;

pub use hard::{blank_clique, deep_blank_chain, hidden_fold_instance, wide_blank_fan};
pub use random_rdf::{
    blank_chain, inject_blank_redundancy, sc_chain_with_instance, schema_graph, simple_graph,
    sp_chain, SchemaGraphConfig, SimpleGraphConfig,
};
pub use university::{university, UniversityConfig};
