//! E16 — Theorems 6.2/6.3: redundancy elimination in answers.
//!
//! Answers a blank-generating query over databases with a growing number of
//! "blank bridge" groups and compares the generic leanness check on the
//! union-semantics answer (coNP-shaped) with the structure-aware polynomial
//! check for the merge-semantics answer, plus the cost of eliminating the
//! redundancy outright.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_model::{Graph, Term, Triple};
use swdb_query::{
    answer_is_lean, answer_union, eliminate_redundancy, merge_answer_is_lean, query, Semantics,
};

/// A database with `groups` copies of the Example 3.8 lean pattern: each
/// group has two distinguishable blanks hanging off a shared subject.
fn bridge_database(groups: usize) -> Graph {
    let mut g = Graph::new();
    for i in 0..groups {
        let a = Term::iri(format!("ex:a{i}"));
        let x = Term::blank(format!("x{i}"));
        let y = Term::blank(format!("y{i}"));
        g.insert(Triple::new(
            a.clone(),
            swdb_model::Iri::new("ex:p"),
            x.clone(),
        ));
        g.insert(Triple::new(a, swdb_model::Iri::new("ex:p"), y.clone()));
        g.insert(Triple::new(
            x,
            swdb_model::Iri::new("ex:q"),
            Term::iri(format!("ex:b{i}")),
        ));
        g.insert(Triple::new(
            y,
            swdb_model::Iri::new("ex:r"),
            Term::iri(format!("ex:b{i}")),
        ));
    }
    g
}

fn bench(c: &mut Criterion) {
    let q = query([("?Z", "ex:p", "?U")], [("?Z", "ex:p", "?U")]);
    let mut group = c.benchmark_group("e16_redundancy");
    for &groups in &[2usize, 4, 8] {
        let db = bridge_database(groups);
        let union_answer = answer_union(&q, &db);
        report_row(
            "E16",
            &format!("groups={groups}"),
            &[
                ("database_triples", db.len().to_string()),
                ("union_answer_triples", union_answer.len().to_string()),
                (
                    "union_answer_lean",
                    swdb_normal::is_lean(&union_answer).to_string(),
                ),
            ],
        );
        group.bench_with_input(
            BenchmarkId::new("union_leanness_generic", groups),
            &groups,
            |b, _| b.iter(|| answer_is_lean(&q, &db, Semantics::Union)),
        );
        group.bench_with_input(
            BenchmarkId::new("merge_leanness_poly", groups),
            &groups,
            |b, _| b.iter(|| merge_answer_is_lean(&q, &db)),
        );
        group.bench_with_input(
            BenchmarkId::new("merge_leanness_generic", groups),
            &groups,
            |b, _| b.iter(|| answer_is_lean(&q, &db, Semantics::Merge)),
        );
        group.bench_with_input(
            BenchmarkId::new("eliminate_redundancy", groups),
            &groups,
            |b, _| b.iter(|| eliminate_redundancy(&union_answer)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
