//! Premise elimination (Proposition 5.9, Example 5.10).
//!
//! For *simple* queries (no RDFS vocabulary interpreted), a query with a
//! premise can be rewritten into a union of premise-free queries: for every
//! subset `R ⊆ B` and every map `μ : R → P` such that `μ(B − R)` has no
//! blank nodes, the query `q_μ = (μ(H), μ(B − R), ∅)` is added to the set
//! `Ω_q`. The answer to `q` over any database is the union of the answers of
//! the members of `Ω_q`.
//!
//! The rewriting is worst-case exponential in `|B|` (it enumerates subsets),
//! which is exactly why containment with premises jumps from NP to Π₂ᵖ in
//! Theorem 5.12; experiment E12 measures the blow-up.

use std::collections::BTreeSet;

use swdb_hom::{Binding, IdTarget, PatternGraph, PatternTerm, TriplePattern, Variable};
use swdb_model::{Graph, Term, Triple};
use swdb_store::Dictionary;

use crate::answer::{combine, pre_answers, Semantics};
use crate::exec;
use crate::query::Query;

/// Computes the premise-free expansion `Ω_q` of a query.
///
/// The query should be *simple* (see [`Query::is_simple`]); the expansion is
/// still computed for non-simple queries, but Proposition 5.9 only guarantees
/// answer preservation in the simple case (the paper notes the result fails
/// once RDFS vocabulary is interpreted).
///
/// The enumeration is **output-sensitive**: it recurses over the body
/// patterns, branching each into "stays in `B − R`" or "μ maps it onto a
/// unifiable premise triple", so the work is bounded by the number of
/// consistent partial `(R, μ)` prefixes — not by `2^|B|`. Bodies of any
/// length are handled completely (an earlier bitmask enumeration silently
/// capped subsets at 63 patterns, dropping members of `Ω_q`); the
/// *worst-case* size of `Ω_q` is still exponential (Theorem 5.12), which is
/// why the facade budgets `(|P|+1)^|B|` before choosing this mechanism and
/// routes oversized queries to the overlay instead.
pub fn premise_free_expansion(query: &Query) -> Vec<Query> {
    if query.is_premise_free() {
        return vec![query.clone()];
    }
    let premise: Vec<Triple> = query.premise().iter().cloned().collect();
    let body: Vec<TriplePattern> = query.body().patterns().to_vec();
    let mut builder = ExpansionBuilder {
        query,
        body: &body,
        premise: &premise,
        mu: Binding::new(),
        rest: Vec::new(),
        seen: BTreeSet::new(),
        members: Vec::new(),
    };
    builder.recurse(0);
    builder.members
}

/// The structural identity of an expansion member — head, body, and
/// constraints (the premise is always empty). Different `(R, μ)` pairs
/// frequently produce the same member; this key backs the set-based dedup
/// (the previous `Vec::contains` scan was quadratic in `|Ω_q|`, itself
/// worst-case exponential).
type MemberKey = (Vec<TriplePattern>, Vec<TriplePattern>, BTreeSet<Variable>);

struct ExpansionBuilder<'q> {
    query: &'q Query,
    body: &'q [TriplePattern],
    premise: &'q [Triple],
    /// The partial map μ, grown and shrunk along the recursion.
    mu: Binding,
    /// Indices of body patterns assigned to `B − R` so far.
    rest: Vec<usize>,
    seen: BTreeSet<MemberKey>,
    members: Vec<Query>,
}

impl ExpansionBuilder<'_> {
    fn recurse(&mut self, i: usize) {
        if i == self.body.len() {
            self.emit();
            return;
        }
        // Branch 1: pattern i stays in B − R (taken first, so the member
        // with R = ∅ — the original query with its premise dropped — is
        // always the first one emitted).
        self.rest.push(i);
        self.recurse(i + 1);
        self.rest.pop();
        // Branch 2: μ maps pattern i onto each premise triple it unifies
        // with under the bindings accumulated so far.
        for t in 0..self.premise.len() {
            let mut newly_bound = Vec::new();
            if unify(
                &self.body[i],
                &self.premise[t],
                &mut self.mu,
                &mut newly_bound,
            ) {
                self.recurse(i + 1);
            }
            for v in &newly_bound {
                self.mu.unbind(v);
            }
        }
    }

    /// One complete `(R, μ)` pair: run the blank-leak and constraint checks
    /// and materialize the member `q_μ = (μ(H), μ(B − R), ∅)`.
    fn emit(&mut self) {
        let mu = &self.mu;
        // μ(B − R) must have no blanks: no variable of B − R may be sent
        // to a blank node of P. (Each rest variable is checked once per
        // emitted pair — the per-μ set rebuild of the old enumeration is
        // gone with the enumeration itself.)
        let maps_rest_var_to_blank = self.rest.iter().any(|&i| {
            self.body[i]
                .variables()
                .any(|v| matches!(mu.get(v), Some(Term::Blank(_))))
        });
        if maps_rest_var_to_blank {
            return;
        }
        // Constraints on variables μ substitutes away are decided now:
        // a constrained variable sent to a blank of P makes the member
        // unsatisfiable (skip it), one sent to a ground term satisfies
        // its constraint (drop it); only constraints on variables that
        // survive into the member are carried over.
        let mut constraints: BTreeSet<Variable> = BTreeSet::new();
        for v in self.query.constraints() {
            match mu.get(v) {
                Some(Term::Blank(_)) => return,
                Some(_) => {}
                None => {
                    constraints.insert(v.clone());
                }
            }
        }
        // Head variables sent to blanks of P would also reintroduce
        // blanks, but into the head, which stays legal (heads may contain
        // blanks); we keep those.
        let new_head = apply_binding_to_pattern(self.query.head(), mu);
        let new_body: PatternGraph = self
            .rest
            .iter()
            .map(|&i| apply_binding_to_triple_pattern(&self.body[i], mu))
            .collect();
        let candidate = Query::with_all(new_head, new_body, Graph::new(), constraints);
        let Ok(candidate) = candidate else {
            // Unreachable in practice: μ binds every variable of R, so a
            // head (or surviving constrained) variable either keeps a
            // body occurrence in B − R or was substituted above. Kept as
            // a guard so a malformed member can never enter Ω_q.
            return;
        };
        let key: MemberKey = (
            candidate.head().patterns().to_vec(),
            candidate.body().patterns().to_vec(),
            candidate.constraints().clone(),
        );
        if self.seen.insert(key) {
            self.members.push(candidate);
        }
    }
}

/// Unifies one body pattern with one premise triple under the partial map
/// `mu`, binding previously-free variables (recorded into `newly_bound` so
/// the caller can backtrack). Returns `false` on any mismatch; partially
/// added bindings are left for the caller to undo via `newly_bound`.
fn unify(
    pattern: &TriplePattern,
    triple: &Triple,
    mu: &mut Binding,
    newly_bound: &mut Vec<Variable>,
) -> bool {
    let predicate = Term::Iri(triple.predicate().clone());
    let positions = [
        (&pattern.subject, triple.subject()),
        (&pattern.predicate, &predicate),
        (&pattern.object, triple.object()),
    ];
    for (position, actual) in positions {
        match position {
            PatternTerm::Const(c) => {
                if c != actual {
                    return false;
                }
            }
            PatternTerm::Var(v) => match mu.get(v) {
                Some(bound) => {
                    if bound != actual {
                        return false;
                    }
                }
                None => {
                    mu.bind(v.clone(), actual.clone());
                    newly_bound.push(v.clone());
                }
            },
        }
    }
    true
}

fn apply_binding_to_pattern(pattern: &PatternGraph, binding: &Binding) -> PatternGraph {
    pattern
        .patterns()
        .iter()
        .map(|p| apply_binding_to_triple_pattern(p, binding))
        .collect()
}

fn apply_binding_to_triple_pattern(pattern: &TriplePattern, binding: &Binding) -> TriplePattern {
    let apply = |pos: &PatternTerm| -> PatternTerm {
        match pos {
            PatternTerm::Var(v) => match binding.get(v) {
                Some(term) => PatternTerm::Const(term.clone()),
                None => pos.clone(),
            },
            PatternTerm::Const(_) => pos.clone(),
        }
    };
    TriplePattern::new(
        apply(&pattern.subject),
        apply(&pattern.predicate),
        apply(&pattern.object),
    )
}

/// Evaluates a union of queries: the union (or merge) of the individual
/// answers (Proposition 5.11 treats such unions as first-class queries).
pub fn answer_union_of_queries(queries: &[Query], database: &Graph, semantics: Semantics) -> Graph {
    // Set-backed dedup: with an exponential-sized expansion the former
    // `Vec::contains` scan made this loop quadratic in |Ω_q| · |answers|.
    let mut seen: BTreeSet<Graph> = BTreeSet::new();
    let mut singles: Vec<Graph> = Vec::new();
    for q in queries {
        for single in pre_answers(q, database) {
            if seen.insert(single.clone()) {
                singles.push(single);
            }
        }
    }
    combine(singles, semantics)
}

/// The pre-answer of a union of premise-free queries in id space: every
/// member is compiled and joined against the same evaluation target, and
/// single answers are deduplicated *across* members (expansion members
/// overlap heavily — constant heads produced by different `μ` often
/// coincide). This is the execution half of Proposition 5.9: the expansion
/// is computed once, each member reuses the cached id join target.
pub fn id_pre_answers_of_queries<T: IdTarget>(
    queries: &[Query],
    dictionary: &Dictionary,
    target: &T,
) -> Vec<Graph> {
    let mut seen = BTreeSet::new();
    let mut singles: Vec<Graph> = Vec::new();
    for q in queries {
        for single in exec::id_pre_answers(q, dictionary, target) {
            if seen.insert(single.clone()) {
                singles.push(single);
            }
        }
    }
    singles
}

/// Evaluates a union of premise-free queries in id space under the
/// requested semantics — the id engine's counterpart of
/// [`answer_union_of_queries`], used by the facade to answer premise
/// queries through their premise-free expansion.
pub fn id_answer_union_of_queries<T: IdTarget>(
    queries: &[Query],
    dictionary: &Dictionary,
    target: &T,
    semantics: Semantics,
) -> Graph {
    combine(
        id_pre_answers_of_queries(queries, dictionary, target),
        semantics,
    )
}

/// Returns `true` if no member of the union has an answer — emptiness of
/// the expanded premise query. Early-exits on the first member with a
/// witnessing matching instead of materializing any pre-answer.
pub fn id_union_answer_is_empty<T: IdTarget>(
    queries: &[Query],
    dictionary: &Dictionary,
    target: &T,
) -> bool {
    queries
        .iter()
        .all(|q| exec::id_answer_is_empty(q, dictionary, target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::answer_union;
    use crate::query::Query;
    use swdb_hom::pattern_graph;
    use swdb_model::{graph, triple};

    /// Example 5.10: q: (?X, p, ?Y) ← (?X, q, ?Y), (?Y, t, s) with premise
    /// P = {(a, t, s), (b, t, s)}.
    fn example_5_10() -> Query {
        Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s"), ("ex:b", "ex:t", "ex:s")]),
        )
        .unwrap()
    }

    #[test]
    fn example_5_10_expansion_contains_the_three_expected_queries() {
        let q = example_5_10();
        let expansion = premise_free_expansion(&q);
        // q1: (?X, p, a) ← (?X, q, a);  q2: (?X, p, b) ← (?X, q, b);
        // q3: the original query with empty premise.
        let q1 = Query::new(
            pattern_graph([("?X", "ex:p", "ex:a")]),
            pattern_graph([("?X", "ex:q", "ex:a")]),
        )
        .unwrap();
        let q2 = Query::new(
            pattern_graph([("?X", "ex:p", "ex:b")]),
            pattern_graph([("?X", "ex:q", "ex:b")]),
        )
        .unwrap();
        let q3 = Query::new(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
        )
        .unwrap();
        for expected in [&q1, &q2, &q3] {
            assert!(
                expansion.contains(expected),
                "expansion must contain {expected}, got {} queries",
                expansion.len()
            );
        }
        assert!(expansion.iter().all(Query::is_premise_free));
    }

    #[test]
    fn proposition_5_9_expansion_preserves_answers() {
        let q = example_5_10();
        let databases = [
            graph([("ex:u", "ex:q", "ex:a")]),
            graph([("ex:u", "ex:q", "ex:a"), ("ex:v", "ex:q", "ex:b")]),
            graph([("ex:u", "ex:q", "ex:c"), ("ex:c", "ex:t", "ex:s")]),
            graph([("ex:u", "ex:q", "ex:c")]),
            Graph::new(),
        ];
        let expansion = premise_free_expansion(&q);
        for d in &databases {
            let direct = answer_union(&q, d);
            let via_expansion = answer_union_of_queries(&expansion, d, Semantics::Union);
            assert_eq!(direct, via_expansion, "answers must agree on database {d}");
        }
    }

    #[test]
    fn expansion_of_premise_free_query_is_itself() {
        let q = crate::query::query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]);
        let expansion = premise_free_expansion(&q);
        assert_eq!(expansion.len(), 1);
        assert_eq!(expansion[0], q);
    }

    #[test]
    fn blank_premise_values_do_not_leak_into_bodies() {
        // The premise has a blank node; μ may send body variables of R to it,
        // but only if those variables do not occur in B − R.
        let q = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("_:B", "ex:t", "ex:s")]),
        )
        .unwrap();
        let expansion = premise_free_expansion(&q);
        for variant in &expansion {
            let body_has_blank = variant.body().patterns().iter().any(|p| {
                [&p.subject, &p.predicate, &p.object]
                    .into_iter()
                    .any(|pos| matches!(pos, PatternTerm::Const(t) if t.is_blank()))
            });
            assert!(
                !body_has_blank,
                "no expanded body may contain blanks: {variant}"
            );
        }
        // Answers still agree.
        let d = graph([("ex:u", "ex:q", "ex:w"), ("ex:w", "ex:t", "ex:s")]);
        assert_eq!(
            answer_union(&q, &d),
            answer_union_of_queries(&expansion, &d, Semantics::Union)
        );
    }

    #[test]
    fn premise_answers_combine_data_and_premise_matches() {
        // A body triple can match partly in the premise and partly in the
        // data.
        let q = example_5_10();
        let d = graph([("ex:u", "ex:q", "ex:a")]);
        let answers = answer_union(&q, &d);
        assert!(answers.contains(&triple("ex:u", "ex:p", "ex:a")));
        // (u, q, a) is in the data, (a, t, s) in the premise.
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn id_union_evaluation_matches_the_string_union_over_the_same_graph() {
        let q = example_5_10();
        let expansion = premise_free_expansion(&q);
        let databases = [
            graph([("ex:u", "ex:q", "ex:a")]),
            graph([("ex:u", "ex:q", "ex:a"), ("ex:v", "ex:q", "ex:b")]),
            graph([("ex:u", "ex:q", "ex:c"), ("ex:c", "ex:t", "ex:s")]),
            Graph::new(),
        ];
        for d in &databases {
            let store = swdb_store::TripleStore::from_graph(d);
            for semantics in [Semantics::Union, Semantics::Merge] {
                let id = id_answer_union_of_queries(
                    &expansion,
                    store.dictionary(),
                    store.id_index(),
                    semantics,
                );
                let spec = answer_union_of_queries(&expansion, d, semantics);
                assert!(
                    swdb_model::isomorphic(&id, &spec),
                    "{semantics:?} over {d}: {id} vs {spec}"
                );
            }
            assert_eq!(
                id_union_answer_is_empty(&expansion, store.dictionary(), store.id_index()),
                answer_union_of_queries(&expansion, d, Semantics::Union).is_empty(),
                "emptiness diverged over {d}"
            );
        }
    }

    #[test]
    fn constraints_on_substituted_variables_are_decided_at_expansion_time() {
        // The only useful member maps the whole body into P, substituting
        // the constrained ?Y to the ground ex:b — the constraint is then
        // satisfied and must be dropped, not turned into a malformed (and
        // silently skipped) member.
        let q = Query::with_all(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y")]),
            graph([("ex:a", "ex:q", "ex:b")]),
            [Variable::new("Y")].into_iter().collect(),
        )
        .unwrap();
        let expansion = premise_free_expansion(&q);
        let d = Graph::new();
        let via_expansion = answer_union_of_queries(&expansion, &d, Semantics::Union);
        assert_eq!(
            answer_union(&q, &d),
            via_expansion,
            "the fully-premise-matched member must survive with its constraint discharged"
        );
        assert!(via_expansion.contains(&triple("ex:a", "ex:p", "ex:b")));
        // A blank premise value violates the constraint: the member is
        // dropped and the answer stays empty.
        let blanked = q.replacing_premise(graph([("ex:a", "ex:q", "_:B")]));
        let expansion = premise_free_expansion(&blanked);
        assert_eq!(
            answer_union(&blanked, &d),
            answer_union_of_queries(&expansion, &d, Semantics::Union),
        );
        assert!(answer_union_of_queries(&expansion, &d, Semantics::Union).is_empty());
    }

    #[test]
    fn bodies_past_63_patterns_expand_completely() {
        // Regression: the former bitmask enumeration capped subsets at
        // `1u64 << n.min(63)`, so pattern 64+ could never enter R and the
        // members substituting it were silently dropped. The body below has
        // 64 filler patterns over a predicate the premise cannot match plus
        // one trailing pattern that *does* match the premise — exactly the
        // member the cap used to lose.
        let mut body_patterns: Vec<(String, String, String)> = (0..64)
            .map(|i| (format!("?F{i}"), format!("ex:filler{i}"), format!("?G{i}")))
            .collect();
        body_patterns.push(("?Z".into(), "ex:t".into(), "ex:s".into()));
        let body: PatternGraph = body_patterns
            .iter()
            .map(|(s, p, o)| {
                TriplePattern::new(
                    PatternTerm::Var(Variable::new(s)),
                    PatternTerm::iri(p),
                    PatternTerm::Const(Term::iri(o.as_str())),
                )
            })
            .collect();
        let q = Query::with_premise(
            pattern_graph([("?Z", "ex:p", "ex:s")]),
            body,
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        let expansion = premise_free_expansion(&q);
        // R = ∅ (premise dropped) and R = {(?Z, ex:t, ex:s) ↦ (a, t, s)}.
        assert_eq!(expansion.len(), 2, "the matched member must not be lost");
        let matched = expansion
            .iter()
            .find(|m| m.body().patterns().len() == 64)
            .expect("the member that substituted ?Z away");
        assert!(matched
            .head()
            .patterns()
            .iter()
            .any(|p| p.subject == PatternTerm::Const(Term::iri("ex:a"))));
        // And the recursion is output-sensitive: this ran in microseconds,
        // where 2^64 bitmask iterations would never have terminated.
    }

    #[test]
    fn expansion_deduplicates_members_produced_by_different_subsets() {
        // Two identical body patterns: R = {0} and R = {1} produce the same
        // member; the set-backed dedup must keep one.
        let q = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?X")]),
            pattern_graph([("?X", "ex:t", "ex:s"), ("?X", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        let expansion = premise_free_expansion(&q);
        let mut rendered: Vec<String> = expansion.iter().map(|m| m.to_string()).collect();
        let total = rendered.len();
        rendered.sort();
        rendered.dedup();
        assert_eq!(rendered.len(), total, "Ω_q must be duplicate-free");
    }

    #[test]
    fn expansion_size_grows_with_premise_matches() {
        // Ω_q grows with the number of maps from subsets of B into P.
        let base = example_5_10();
        let small = premise_free_expansion(&base).len();
        let bigger_premise = base.replacing_premise(graph([
            ("ex:a", "ex:t", "ex:s"),
            ("ex:b", "ex:t", "ex:s"),
            ("ex:c", "ex:t", "ex:s"),
            ("ex:d", "ex:t", "ex:s"),
        ]));
        let large = premise_free_expansion(&bigger_premise).len();
        assert!(large > small, "more premise facts, more expansion members");
    }
}
