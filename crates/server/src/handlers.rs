//! Request routing and the endpoint handlers. Reads answer from pinned
//! snapshots (no facade lock); writes and overlay-mechanism queries take
//! the facade mutex. Every handler is total: bad input is a `4xx`, a
//! degraded store is a `503`-for-writes, and nothing here unwinds on
//! malformed bytes (panics would only come from engine bugs — which the
//! worker's `catch_unwind` isolates to the one connection).

use std::sync::Arc;

use swdb_core::{PublishedSnapshot, Semantics};
use swdb_model::Graph;

use crate::http::{Request, Response};
use crate::Shared;

/// Minimal JSON string escaping for the handful of strings we embed.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stamps the snapshot-substrate headers every data-bearing response
/// carries: which epoch answered, and whether that substrate was degraded.
fn stamped(response: Response, epoch: u64, degraded: bool) -> Response {
    response
        .header("x-swdb-epoch", epoch.to_string())
        .header("x-swdb-degraded", degraded.to_string())
}

fn retry_later(shared: &Shared, why: &str) -> Response {
    Response::text(503, format!("{why}\n"))
        .header("retry-after", shared.config.retry_after_secs.to_string())
}

/// The route table.
pub(crate) fn handle(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => health(shared),
        ("GET", "/metrics") => metrics(shared),
        ("POST", "/ingest") => ingest(shared, request, false),
        ("POST", "/remove") => ingest(shared, request, true),
        ("POST", "/query") => query(shared, request, false),
        ("POST", "/answer") => query(shared, request, true),
        ("POST", "/panic") if shared.config.enable_test_endpoints => {
            panic!("deliberate test-endpoint panic")
        }
        ("GET" | "POST", _) => Response::text(404, "no such endpoint\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

fn health(shared: &Shared) -> Response {
    let pinned = shared.reader.pin();
    let body = format!(
        "{{\"epoch\": {}, \"asserted_triples\": {}, \"evaluation_triples\": {}, \
         \"non_minimal\": {}, \"durability_detached\": {}}}",
        pinned.epoch(),
        pinned.asserted_triples(),
        pinned.evaluation_triples(),
        pinned.non_minimal(),
        pinned.durability_detached(),
    );
    stamped(
        Response::json(200, body),
        pinned.epoch(),
        pinned.non_minimal(),
    )
}

fn metrics(shared: &Shared) -> Response {
    let db = shared.lock_db();
    Response::json(200, db.metrics_snapshot())
}

/// `POST /ingest` and `POST /remove`: N-Triples body, mutate under the
/// facade lock, publish the next epoch. When durability has fail-stopped,
/// writes are refused with `503` + `Retry-After` — accepting them would
/// silently drop the durability contract — while reads keep serving.
fn ingest(shared: &Shared, request: &Request, removal: bool) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let graph: Graph = match swdb_store::parse(text) {
        Ok(g) => g,
        Err(e) => {
            return Response::text(
                400,
                format!("N-Triples parse error at line {}: {}\n", e.line, e.message),
            )
        }
    };
    let mut db = shared.lock_db();
    if let Some(why) = db.durability_error() {
        let why = format!("writes unavailable — {why}");
        drop(db);
        return retry_later(shared, &why);
    }
    let changed = if removal {
        graph.iter().filter(|t| db.remove(t)).count()
    } else {
        let before = db.len();
        db.insert_graph(&graph);
        db.len() - before
    };
    let snapshot = db.publish();
    drop(db);
    let body = format!(
        "{{\"{}\": {changed}, \"epoch\": {}}}",
        if removal { "removed" } else { "inserted" },
        snapshot.epoch(),
    );
    stamped(
        Response::json(200, body),
        snapshot.epoch(),
        snapshot.non_minimal(),
    )
}

/// `POST /query` (N-Triples answer) and `POST /answer` (JSON envelope):
/// parse the query, answer on the pinned snapshot — lock-free with respect
/// to writers — falling back to the facade lock only for overlay-mechanism
/// premise queries the snapshot cannot serve.
fn query(shared: &Shared, request: &Request, envelope: bool) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let parsed = match swdb_query::parse_query(text) {
        Ok(q) => q,
        Err(e) => return Response::text(400, format!("{e}\n")),
    };
    let semantics = match request.param("semantics") {
        None | Some("union") => Semantics::Union,
        Some("merge") => Semantics::Merge,
        Some(other) => {
            return Response::text(400, format!("unknown semantics {other:?}\n"));
        }
    };
    let pinned: Arc<PublishedSnapshot> = shared.reader.pin();
    let (answer, non_minimal, epoch) = match pinned.answer_with_status(&parsed, semantics) {
        Ok((answer, non_minimal)) => (answer, non_minimal, pinned.epoch()),
        // `SnapshotQueryError` is non-exhaustive; every variant means
        // "needs the live facade".
        Err(_) => {
            // Overlay-mechanism premise query: the one read shape that
            // must consult the live facade.
            let mut db = shared.lock_db();
            let (answer, non_minimal) = db.answer_with_status(&parsed, semantics);
            (answer, non_minimal, pinned.epoch())
        }
    };
    if !envelope {
        let body = swdb_store::serialize(&answer);
        return stamped(Response::text(200, body), epoch, non_minimal);
    }
    let body = format!(
        "{{\"epoch\": {epoch}, \"non_minimal\": {non_minimal}, \"answers\": {}, \
         \"triples\": \"{}\"}}",
        answer.len(),
        json_escape(&swdb_store::serialize(&answer)),
    );
    stamped(Response::json(200, body), epoch, non_minimal)
}
