//! Entailment and equivalence of RDF graphs.
//!
//! The decision procedures follow the characterization of Theorem 2.8:
//!
//! 1. `G1 ⊨ G2` iff there is a map `μ : G2 → RDFS-cl(G1)`;
//! 2. for *simple* graphs (no RDFS vocabulary), `G1 ⊨ G2` iff there is a map
//!    `μ : G2 → G1`.
//!
//! Both problems are NP-complete in general (Theorems 2.9 and 2.10); the
//! polynomial special cases of §2.4 (fixed `G2`, or `G2` without
//! blank-induced cycles) are inherited from the `swdb-hom` engine, which
//! routes acyclic sources through a semijoin evaluation.

use swdb_model::Graph;

use crate::closure::rdfs_closure;

/// Decides simple entailment `G1 ⊨ G2` for simple graphs: existence of a map
/// `G2 → G1` (Theorem 2.8(2)).
///
/// The function does not insist that its arguments are simple; when they are
/// not, it still decides the "map into the graph itself" relation, which is a
/// sound but incomplete approximation of RDFS entailment (the closure is not
/// taken). Use [`entails`] for full RDFS entailment.
pub fn simple_entails(g1: &Graph, g2: &Graph) -> bool {
    swdb_hom::exists_map(g2, g1)
}

/// Decides RDFS entailment `G1 ⊨ G2` via Theorem 2.8(1): a map from `G2`
/// into the closure of `G1`.
pub fn entails(g1: &Graph, g2: &Graph) -> bool {
    if simple_entails(g1, g2) {
        // Shortcut: a map into G1 itself is a fortiori a map into cl(G1).
        return true;
    }
    if g1.is_simple() && g2.is_simple() {
        // For simple graphs the closure adds only reflexive rdfsV triples
        // ((p, sp, p) for the vocabulary and predicates in use), none of
        // which can be the target of a simple G2 triple, so the shortcut
        // above is already complete... except that G2 might itself mention
        // nothing at all (empty graph), which the shortcut handles too.
        return false;
    }
    let closure = rdfs_closure(g1);
    swdb_hom::exists_map(g2, &closure)
}

/// Decides RDFS entailment and returns the witnessing map into the closure,
/// if any.
pub fn entailment_witness(g1: &Graph, g2: &Graph) -> Option<swdb_model::TermMap> {
    let closure = rdfs_closure(g1);
    swdb_hom::find_map(g2, &closure)
}

/// Decides equivalence `G1 ≡ G2` (mutual entailment).
pub fn equivalent(g1: &Graph, g2: &Graph) -> bool {
    entails(g1, g2) && entails(g2, g1)
}

/// Decides equivalence of *simple* graphs by mutual maps (the specialisation
/// of Theorem 2.8 used in Theorem 2.9(2)).
pub fn simple_equivalent(g1: &Graph, g2: &Graph) -> bool {
    simple_entails(g1, g2) && simple_entails(g2, g1)
}

/// The "entailment with vocabulary" pipeline made explicit, for callers that
/// want to reuse the closure (e.g. when testing entailment of many candidate
/// graphs against the same premises): build once with [`EntailmentChecker::new`],
/// then query repeatedly.
pub struct EntailmentChecker {
    closure: Graph,
    index: swdb_hom::GraphIndex,
}

impl EntailmentChecker {
    /// Computes and indexes the closure of the premise graph.
    pub fn new(premises: &Graph) -> Self {
        let closure = rdfs_closure(premises);
        let index = swdb_hom::GraphIndex::new(&closure);
        EntailmentChecker { closure, index }
    }

    /// The materialised closure.
    pub fn closure(&self) -> &Graph {
        &self.closure
    }

    /// Decides whether the premises entail `conclusion`.
    pub fn entails(&self, conclusion: &Graph) -> bool {
        swdb_hom::exists_map_indexed(conclusion, &self.index)
    }

    /// Returns a witnessing map for the entailment, if it holds.
    pub fn witness(&self, conclusion: &Graph) -> Option<swdb_model::TermMap> {
        swdb_hom::find_map_indexed(conclusion, &self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, rdfs};

    #[test]
    fn ground_subset_is_entailed() {
        let g1 = graph([("ex:a", "ex:p", "ex:b"), ("ex:c", "ex:q", "ex:d")]);
        let g2 = graph([("ex:a", "ex:p", "ex:b")]);
        assert!(simple_entails(&g1, &g2));
        assert!(entails(&g1, &g2));
        assert!(!simple_entails(&g2, &g1));
    }

    #[test]
    fn blanks_are_existential_witnesses() {
        // (a, p, b) entails (a, p, _:X): "a is p-related to something".
        let g1 = graph([("ex:a", "ex:p", "ex:b")]);
        let g2 = graph([("ex:a", "ex:p", "_:X")]);
        assert!(simple_entails(&g1, &g2));
        assert!(
            !simple_entails(&g2, &g1),
            "the existential does not entail the ground fact"
        );
    }

    #[test]
    fn simple_entailment_is_not_symmetric_with_shared_blanks() {
        // G1: X connects both triples; G2: two independent blanks.
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]);
        let g2 = graph([("ex:a", "ex:p", "_:Y"), ("_:Z", "ex:q", "ex:b")]);
        assert!(simple_entails(&g1, &g2));
        assert!(!simple_entails(&g2, &g1));
    }

    #[test]
    fn rdfs_entailment_uses_the_closure() {
        let g1 = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        ]);
        let g2 = graph([("ex:Picasso", rdfs::TYPE, "ex:Artist")]);
        assert!(
            !simple_entails(&g1, &g2),
            "not entailed without the vocabulary semantics"
        );
        assert!(entails(&g1, &g2), "entailed under RDFS semantics");
        let witness = entailment_witness(&g1, &g2).unwrap();
        assert!(witness.is_identity(), "ground conclusion maps identically");
    }

    #[test]
    fn subproperty_entailment_through_blank_conclusion() {
        let g1 = graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let g2 = graph([("ex:Picasso", "ex:creates", "_:W")]);
        assert!(entails(&g1, &g2));
        assert!(!entails(&g2, &g1));
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_blank_renaming() {
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]);
        let g2 = graph([("ex:a", "ex:p", "_:Y"), ("_:Y", "ex:q", "ex:b")]);
        assert!(equivalent(&g1, &g1));
        assert!(equivalent(&g1, &g2));
        assert!(simple_equivalent(&g1, &g2));
    }

    #[test]
    fn example_3_8_redundant_graph_is_equivalent_to_its_lean_part() {
        // G1 = {(a, p, X), (a, p, Y)} ≡ {(a, p, X)}.
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let lean = graph([("ex:a", "ex:p", "_:X")]);
        assert!(equivalent(&g1, &lean));
    }

    #[test]
    fn entailment_checker_reuses_the_closure() {
        let schema = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Artist", rdfs::SC, "ex:Person"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
            ("ex:Rembrandt", rdfs::TYPE, "ex:Painter"),
        ]);
        let checker = EntailmentChecker::new(&schema);
        assert!(checker.entails(&graph([("ex:Picasso", rdfs::TYPE, "ex:Person")])));
        assert!(checker.entails(&graph([("ex:Rembrandt", rdfs::TYPE, "ex:Artist")])));
        assert!(!checker.entails(&graph([("ex:Person", rdfs::SC, "ex:Painter")])));
        assert!(checker.closure().contains(&swdb_model::triple(
            "ex:Painter",
            rdfs::SC,
            "ex:Person"
        )));
    }

    #[test]
    fn empty_graph_is_entailed_by_everything_and_entails_only_axioms() {
        let g = graph([("ex:a", "ex:p", "ex:b")]);
        let empty = Graph::new();
        assert!(entails(&g, &empty));
        assert!(!entails(&empty, &g));
        // The empty graph still entails the axiomatic reflexivity triples.
        let axiom = graph([(rdfs::SP, rdfs::SP, rdfs::SP)]);
        assert!(entails(&empty, &axiom));
    }

    #[test]
    fn type_lifting_respects_direction() {
        let g1 = graph([
            ("ex:Dog", rdfs::SC, "ex:Animal"),
            ("ex:rex", rdfs::TYPE, "ex:Dog"),
        ]);
        assert!(entails(&g1, &graph([("ex:rex", rdfs::TYPE, "ex:Animal")])));
        assert!(!entails(&g1, &graph([("ex:rex", rdfs::TYPE, "ex:Cat")])));
        // Downward lifting is unsound and must not be entailed.
        let g2 = graph([
            ("ex:Dog", rdfs::SC, "ex:Animal"),
            ("ex:rex", rdfs::TYPE, "ex:Animal"),
        ]);
        assert!(!entails(&g2, &graph([("ex:rex", rdfs::TYPE, "ex:Dog")])));
    }
}
