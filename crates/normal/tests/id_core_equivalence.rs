//! The incremental id-space core engine against its executable
//! specification: on random blank-heavy graphs, across interleaved inserts
//! and deletes, the engine's published index must stay isomorphic to
//! `swdb_normal::core` of the current triple set (the core is unique up to
//! isomorphism — Theorem 3.10 — so isomorphism is exactly the contract).

use proptest::prelude::*;
use swdb_model::{isomorphic, Graph, Iri, Term, Triple};
use swdb_normal::{core, is_lean, IdCoreEngine};
use swdb_store::TripleStore;

/// Blank-heavy triples over a tight label pool: five reusable blanks and
/// four URIs force shared labels, multi-triple components and plenty of
/// folding opportunities.
fn arb_triple() -> impl Strategy<Value = Triple> {
    let node = prop_oneof![
        2 => (0u8..4).prop_map(|i| Term::iri(format!("ex:n{i}"))),
        3 => (0u8..5).prop_map(|i| Term::blank(format!("B{i}"))),
    ];
    let pred = (0u8..2).prop_map(|i| Iri::new(format!("ex:p{i}")));
    (node.clone(), pred, node).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn decoded_eval(store: &TripleStore, engine: &IdCoreEngine) -> Graph {
    engine
        .index()
        .iter()
        .map(|ids| store.materialize(ids))
        .collect()
}

fn assert_engine_matches_spec(store: &TripleStore, engine: &IdCoreEngine, context: &str) {
    let published = decoded_eval(store, engine);
    let expected = core(&store.to_graph());
    assert!(is_lean(&published), "{context}: published index not lean");
    assert!(
        isomorphic(&published, &expected),
        "{context}: engine {published} vs spec core {expected} of {}",
        store.to_graph()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cold_build_is_the_core(triples in proptest::collection::vec(arb_triple(), 0..12)) {
        let graph = Graph::from_triples(triples);
        let store = TripleStore::from_graph(&graph);
        let engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        assert_engine_matches_spec(&store, &engine, "cold build");
    }

    #[test]
    fn interleaved_mutations_track_the_core(
        initial in proptest::collection::vec(arb_triple(), 0..8),
        ops in proptest::collection::vec((0u8..2, arb_triple()), 1..12),
    ) {
        let graph = Graph::from_triples(initial);
        let mut store = TripleStore::from_graph(&graph);
        let mut engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        for (step, (op, t)) in ops.into_iter().enumerate() {
            if op == 0 {
                let (ids, added) = store.insert_with_ids(&t);
                if added {
                    engine.apply_delta(&[ids], &[], store.dictionary());
                }
            } else if let Some(ids) = store.remove_with_ids(&t) {
                engine.apply_delta(&[], &[ids], store.dictionary());
            }
            assert_engine_matches_spec(&store, &engine, &format!("step {step} ({t})"));
        }
    }

    #[test]
    fn batch_load_equals_triple_by_triple(
        triples in proptest::collection::vec(arb_triple(), 0..10),
    ) {
        // One batched delta and a per-triple drip must converge on the same
        // core (apply_delta is batch-shaped for insert_graph).
        let graph = Graph::from_triples(triples);
        let mut store = TripleStore::new();
        let ids: Vec<_> = graph
            .iter()
            .map(|t| store.insert_with_ids(t).0)
            .collect();
        let mut batched = IdCoreEngine::new();
        batched.apply_delta(&ids, &[], store.dictionary());
        let mut dripped = IdCoreEngine::new();
        for &t in &ids {
            dripped.apply_delta(&[t], &[], store.dictionary());
        }
        let a = decoded_eval(&store, &batched);
        let b = decoded_eval(&store, &dripped);
        prop_assert!(isomorphic(&a, &b), "batched {a} vs dripped {b}");
        assert_engine_matches_spec(&store, &batched, "batched load");
    }
}
