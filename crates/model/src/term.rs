//! RDF terms: URI references and blank nodes.
//!
//! The paper (§2.1) assumes an infinite set `U` of RDF URI references and an
//! infinite set `B = {N_j : j ∈ ℕ}` of blank nodes, and works over `UB = U ∪ B`.
//! Literals are deliberately left out of the abstract fragment (footnote 1 of
//! the paper), and we follow that choice here.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An RDF URI reference (an element of the set `U`).
///
/// URIs are immutable, cheaply clonable (reference counted) strings. Any
/// non-empty string is accepted as a URI label; the abstract model does not
/// constrain URI syntax.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Iri(Arc<str>);

impl Iri {
    /// Creates a new URI reference from any string-like value.
    pub fn new(value: impl Into<Arc<str>>) -> Self {
        Iri(value.into())
    }

    /// Returns the URI label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iri({})", self.0)
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Iri {
    fn from(value: &str) -> Self {
        Iri::new(value)
    }
}

impl From<String> for Iri {
    fn from(value: String) -> Self {
        Iri::new(value)
    }
}

impl Borrow<str> for Iri {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

/// A blank node (an element of the set `B`).
///
/// Blank nodes are identified by a local label; two blank nodes are the same
/// node exactly when their labels are equal. The paper's results treat blank
/// nodes as existential variables whose identity is only meaningful within a
/// single graph; [`crate::Graph::merge`] renames blank labels apart exactly as
/// the paper's *merge* operation prescribes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    /// Creates a blank node with the given label.
    pub fn new(label: impl Into<Arc<str>>) -> Self {
        BlankNode(label.into())
    }

    /// Returns the blank node label.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blank(_:{})", self.0)
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

impl From<&str> for BlankNode {
    fn from(value: &str) -> Self {
        BlankNode::new(value)
    }
}

/// An element of `UB = U ∪ B`: either a URI reference or a blank node.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Term {
    /// A URI reference (element of `U`).
    Iri(Iri),
    /// A blank node (element of `B`).
    Blank(BlankNode),
}

impl Term {
    /// Convenience constructor for a URI term.
    pub fn iri(value: impl Into<Arc<str>>) -> Self {
        Term::Iri(Iri::new(value))
    }

    /// Convenience constructor for a blank-node term.
    pub fn blank(label: impl Into<Arc<str>>) -> Self {
        Term::Blank(BlankNode::new(label))
    }

    /// Returns `true` if the term is a URI reference.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` if the term is a blank node.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// Returns the URI if this term is one.
    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(iri) => Some(iri),
            Term::Blank(_) => None,
        }
    }

    /// Returns the blank node if this term is one.
    pub fn as_blank(&self) -> Option<&BlankNode> {
        match self {
            Term::Blank(b) => Some(b),
            Term::Iri(_) => None,
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "{iri:?}"),
            Term::Blank(b) => write!(f, "{b:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => fmt::Display::fmt(iri, f),
            Term::Blank(b) => fmt::Display::fmt(b, f),
        }
    }
}

impl From<Iri> for Term {
    fn from(value: Iri) -> Self {
        Term::Iri(value)
    }
}

impl From<BlankNode> for Term {
    fn from(value: BlankNode) -> Self {
        Term::Blank(value)
    }
}

/// The RDFS vocabulary fragment with non-trivial semantics studied by the
/// paper (§2.2): `rdfsV = {sp, sc, type, dom, range}`.
pub mod rdfs {
    use super::Iri;

    /// `rdfs:subPropertyOf`, written `sp` in the paper.
    pub const SP: &str = "rdfs:subPropertyOf";
    /// `rdfs:subClassOf`, written `sc` in the paper.
    pub const SC: &str = "rdfs:subClassOf";
    /// `rdf:type`, written `type` in the paper.
    pub const TYPE: &str = "rdf:type";
    /// `rdfs:domain`, written `dom` in the paper.
    pub const DOM: &str = "rdfs:domain";
    /// `rdfs:range`, written `range` in the paper.
    pub const RANGE: &str = "rdfs:range";

    /// Returns `rdfs:subPropertyOf` as an [`Iri`].
    pub fn sp() -> Iri {
        Iri::new(SP)
    }

    /// Returns `rdfs:subClassOf` as an [`Iri`].
    pub fn sc() -> Iri {
        Iri::new(SC)
    }

    /// Returns `rdf:type` as an [`Iri`].
    pub fn type_() -> Iri {
        Iri::new(TYPE)
    }

    /// Returns `rdfs:domain` as an [`Iri`].
    pub fn dom() -> Iri {
        Iri::new(DOM)
    }

    /// Returns `rdfs:range` as an [`Iri`].
    pub fn range() -> Iri {
        Iri::new(RANGE)
    }

    /// The whole reserved vocabulary `rdfsV` in a fixed order.
    pub fn vocabulary() -> [Iri; 5] {
        [sp(), sc(), type_(), dom(), range()]
    }

    /// Returns `true` if `iri` is one of the five reserved RDFS vocabulary
    /// terms.
    pub fn is_reserved(iri: &Iri) -> bool {
        matches!(iri.as_str(), SP | SC | TYPE | DOM | RANGE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_equality_is_by_label() {
        assert_eq!(Iri::new("ex:a"), Iri::new("ex:a"));
        assert_ne!(Iri::new("ex:a"), Iri::new("ex:b"));
    }

    #[test]
    fn blank_equality_is_by_label() {
        assert_eq!(BlankNode::new("X"), BlankNode::new("X"));
        assert_ne!(BlankNode::new("X"), BlankNode::new("Y"));
    }

    #[test]
    fn term_constructors_and_accessors() {
        let a = Term::iri("ex:a");
        let x = Term::blank("X");
        assert!(a.is_iri());
        assert!(!a.is_blank());
        assert!(x.is_blank());
        assert_eq!(a.as_iri().unwrap().as_str(), "ex:a");
        assert_eq!(x.as_blank().unwrap().as_str(), "X");
        assert!(a.as_blank().is_none());
        assert!(x.as_iri().is_none());
    }

    #[test]
    fn term_display_marks_blanks() {
        assert_eq!(Term::iri("ex:a").to_string(), "ex:a");
        assert_eq!(Term::blank("X").to_string(), "_:X");
    }

    #[test]
    fn rdfs_vocabulary_is_reserved() {
        for iri in rdfs::vocabulary() {
            assert!(rdfs::is_reserved(&iri), "{iri} should be reserved");
        }
        assert!(!rdfs::is_reserved(&Iri::new("ex:paints")));
    }

    #[test]
    fn rdfs_vocabulary_has_five_distinct_members() {
        let v = rdfs::vocabulary();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                assert_ne!(v[i], v[j]);
            }
        }
    }

    #[test]
    fn term_ordering_is_total_and_consistent() {
        let mut terms = [
            Term::blank("Z"),
            Term::iri("ex:b"),
            Term::blank("A"),
            Term::iri("ex:a"),
        ];
        terms.sort();
        let sorted: Vec<String> = terms.iter().map(ToString::to_string).collect();
        // All that matters is a stable total order; IRIs sort before blanks by
        // enum variant order.
        assert_eq!(sorted, vec!["ex:a", "ex:b", "_:A", "_:Z"]);
    }

    #[test]
    fn iri_borrow_str_allows_set_lookup() {
        use std::collections::BTreeSet;
        let mut set: BTreeSet<Iri> = BTreeSet::new();
        set.insert(Iri::new("ex:a"));
        assert!(set.contains("ex:a"));
        assert!(!set.contains("ex:b"));
    }
}
