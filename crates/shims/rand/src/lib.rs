//! In-tree shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_bool` /
//! `gen_range` over integer ranges. The generator is SplitMix64 — not
//! cryptographic, but deterministic, well-distributed and more than adequate
//! for seeded workload generation. The module layout mirrors `rand 0.8` so
//! the shim can be swapped for the real crate without touching any caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seeding interface: construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// The sampling interface used by the workspace.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 mantissa bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }

    /// Samples uniformly from a half-open integer range.
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Draws one value from `range` using `rng`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is below 2^-64 for every span this workspace
                // uses; acceptable for workload generation.
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seeded generator: SplitMix64.
    ///
    /// The real `rand` uses ChaCha12 here; this shim trades that for a tiny,
    /// dependency-free generator with the same construction API. Streams are
    /// deterministic per seed, which is all the workloads rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        for _ in 0..100 {
            let v: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
