//! E22 — budgeted core refresh on the adversarial families: the degraded
//! mode that bounds the NP-hard tail (Theorem 3.12).
//!
//! The workloads are `swdb_workloads::hard`'s degraded-mode family:
//! `blank_clique` (`enc(K_n)` — lean, but the leanness *proof* explodes
//! past `n ≈ 10`), `hidden_fold_instance` (a planted fold onto a ground
//! triangle, hidden behind a colouring search), `wide_blank_fan` (budget
//! slicing across many trivial components) and `deep_blank_chain` (a big
//! benign component that must not degrade under a realistic budget).
//!
//! Each point loads the graph into the facade under a configured
//! `CoreBudgetMode` and times the cold build plus first answer. Budgeted
//! runs are **wall-clock bounded in here**: the acceptance criterion —
//! a blank-clique refresh that would stall an unbudgeted engine for
//! minutes completes within 2x the configured budget envelope (dirty +
//! progressive pass, one slice each), publishes every triple, and flags
//! the answer `non_minimal` — is asserted unconditionally. The unbudgeted
//! clique baseline is capped at `n = 7`; larger sizes *are* the tail the
//! budget exists to bound, so the cap is recorded in the JSON rather than
//! silently skipped. Results land on stdout and in `BENCH_e22.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{json_prologue, metrics_block, quick, report_row};
use swdb_core::{
    CoreBudget, CoreBudgetMode, EntailmentRegime, MetricsLevel, SemanticWebDatabase, Semantics,
};
use swdb_model::Graph;
use swdb_query::query;
use swdb_workloads::{blank_clique, deep_blank_chain, hidden_fold_instance, wide_blank_fan};

/// Largest clique measured without a budget: `7^7` candidate maps per
/// retraction search is the edge of "finishes promptly in a bench".
const UNBUDGETED_CLIQUE_CAP: usize = 7;

fn all_triples_query() -> swdb_query::Query {
    query([("?S", "?P", "?O")], [("?S", "?P", "?O")])
}

struct Point {
    family: &'static str,
    label: String,
    budget: &'static str,
    build_ms: f64,
    degraded: bool,
    uncored_components: usize,
    uncored_triples: usize,
    answers: usize,
}

/// Cold build + first answer under `mode`; returns the measured point.
fn run(
    family: &'static str,
    label: String,
    budget: &'static str,
    g: &Graph,
    mode: CoreBudgetMode,
) -> Point {
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_metrics_level(MetricsLevel::Counters);
    db.set_core_budget(mode);
    db.insert_graph(g);
    let t0 = Instant::now();
    let (answers, non_minimal) = db.answer_with_status(&all_triples_query(), Semantics::Union);
    let elapsed = t0.elapsed();
    assert_eq!(
        non_minimal,
        db.is_degraded(),
        "{family} {label}: answer flag must mirror engine state"
    );
    Point {
        family,
        label,
        budget,
        build_ms: elapsed.as_secs_f64() * 1e3,
        degraded: non_minimal,
        uncored_components: db.uncored_components(),
        uncored_triples: db.uncored_triples(),
        answers: answers.len(),
    }
}

fn report(p: &Point) {
    report_row(
        "E22",
        &format!("{} {} budget={}", p.family, p.label, p.budget),
        &[
            ("build_ms", format!("{:.1}", p.build_ms)),
            ("degraded", p.degraded.to_string()),
            ("uncored_components", p.uncored_components.to_string()),
            ("answers", p.answers.to_string()),
        ],
    );
}

fn bench(c: &mut Criterion) {
    let mut points: Vec<Point> = Vec::new();

    // --- blank cliques: the acceptance scenario ---------------------------
    // Unbudgeted baseline up to the cap; budgeted runs beyond it, each
    // wall-clock bounded by 2x the budget envelope (two 500 ms slices per
    // component: the dirty pass and the progressive pass) plus slack.
    for n in [5, UNBUDGETED_CLIQUE_CAP] {
        let g = blank_clique(n);
        let p = run(
            "blank_clique",
            format!("n={n}"),
            "unlimited",
            &g,
            CoreBudgetMode::Unlimited,
        );
        assert!(!p.degraded);
        assert_eq!(p.answers, g.len(), "enc(K_n) is lean: nothing folds");
        report(&p);
        points.push(p);
    }
    for n in [8usize, 10, 11] {
        let g = blank_clique(n);
        let t0 = Instant::now();
        let p = run(
            "blank_clique",
            format!("n={n}"),
            "500ms",
            &g,
            CoreBudgetMode::Budgeted(CoreBudget::millis(500)),
        );
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(2_500),
            "budgeted enc(K_{n}) refresh took {elapsed:?}; the budget was not honoured"
        );
        assert!(p.degraded, "the abandoned leanness proof must be flagged");
        assert_eq!(p.uncored_components, 1);
        assert_eq!(
            p.answers,
            g.len(),
            "the sound superset is the full (lean) input"
        );
        report(&p);
        points.push(p);
    }

    // --- hidden folds: degradation is recoverable -------------------------
    let fold = hidden_fold_instance(10, 0.5, 7);
    let p = run(
        "hidden_fold",
        "nodes=10".into(),
        "unlimited",
        &fold,
        CoreBudgetMode::Unlimited,
    );
    assert!(!p.degraded);
    assert_eq!(p.answers, 6, "every blank folds onto the ground triangle");
    report(&p);
    points.push(p);
    let recover_ms = {
        let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(20)));
        db.insert_graph(&fold);
        let p = run(
            "hidden_fold",
            "nodes=10".into(),
            "20steps",
            &fold,
            CoreBudgetMode::Budgeted(CoreBudget::steps(20)),
        );
        assert!(p.degraded);
        assert!(p.answers >= 6, "degradation only ever adds redundancy");
        report(&p);
        points.push(p);
        // The quiet-moment retry: lift the budget, re-core the survivors.
        db.answer_with_status(&all_triples_query(), Semantics::Union);
        db.set_core_budget(CoreBudgetMode::Unlimited);
        let t0 = Instant::now();
        assert!(db.refresh_degraded());
        let recover = t0.elapsed();
        assert!(!db.is_degraded());
        assert_eq!(db.answer(&all_triples_query(), Semantics::Union).len(), 6);
        recover.as_secs_f64() * 1e3
    };
    report_row(
        "E22",
        "hidden_fold nodes=10 recovery",
        &[("refresh_degraded_ms", format!("{recover_ms:.1}"))],
    );

    // --- wide fans: per-component slicing stays cheap ---------------------
    for width in [32usize, 128] {
        let g = wide_blank_fan(width);
        let p = run(
            "wide_blank_fan",
            format!("width={width}"),
            "1step",
            &g,
            CoreBudgetMode::Budgeted(CoreBudget::steps(1)),
        );
        assert_eq!(p.uncored_components, width, "one starved slice per spoke");
        report(&p);
        points.push(p);
        let p = run(
            "wide_blank_fan",
            format!("width={width}"),
            "unlimited",
            &g,
            CoreBudgetMode::Unlimited,
        );
        assert!(!p.degraded);
        assert_eq!(p.answers, 1, "the fan cores to its ground absorber");
        report(&p);
        points.push(p);
    }

    // --- deep chains: a benign tail must not degrade ----------------------
    let chain = deep_blank_chain(24);
    let p = run(
        "deep_blank_chain",
        "len=24".into(),
        "50Msteps+30s",
        &chain,
        CoreBudgetMode::Budgeted(CoreBudget {
            steps: Some(50_000_000),
            millis: Some(30_000),
        }),
    );
    assert!(
        !p.degraded,
        "a realistic budget must not trip on benign inputs"
    );
    assert_eq!(p.answers, chain.len());
    report(&p);
    points.push(p);

    // Criterion timings on the cheap, representative points.
    let mut group = c.benchmark_group("e22_adversarial_core");
    let k10 = blank_clique(10);
    group.bench_with_input(
        BenchmarkId::new("budgeted_build/k_clique_50ms", 10),
        &k10,
        |b, g| {
            b.iter(|| {
                let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
                db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::millis(50)));
                db.insert_graph(g);
                criterion::black_box(db.answer_with_status(&all_triples_query(), Semantics::Union))
            })
        },
    );
    let fan = wide_blank_fan(64);
    group.bench_with_input(
        BenchmarkId::new("unbudgeted_build/wide_fan", 64),
        &fan,
        |b, g| {
            b.iter(|| {
                let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
                db.set_core_budget(CoreBudgetMode::Unlimited);
                db.insert_graph(g);
                criterion::black_box(db.answer(&all_triples_query(), Semantics::Union))
            })
        },
    );
    group.finish();

    write_json(&points, recover_ms, &instrumented_snapshot());
}

/// One budgeted clique build at `Counters` level: the report carries the
/// `degraded` block — `core_budget_exhausted`, `uncored_components`,
/// `uncored_triples` — alongside the usual counters.
fn instrumented_snapshot() -> String {
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_metrics_level(MetricsLevel::Counters);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::millis(100)));
    db.insert_graph(&blank_clique(10));
    db.answer_with_status(&all_triples_query(), Semantics::Union);
    db.metrics().snapshot().to_json()
}

fn write_json(points: &[Point], recover_ms: f64, metrics_json: &str) {
    let mut out = json_prologue("e22_adversarial_core");
    out.push_str(
        "  \"acceptance\": \"budgeted enc(K_n) refresh (n up to 11) completes within 2x the configured budget envelope, publishes the full lean input, and flags it non_minimal; benign deep chains never degrade; lifted budgets recover the true core\",\n",
    );
    out.push_str("  \"mode\": \"release, cold build + first answer per point\",\n");
    out.push_str(&format!(
        "  \"unbudgeted_clique_cap\": {UNBUDGETED_CLIQUE_CAP},\n"
    ));
    out.push_str(&format!(
        "  \"hidden_fold_recovery_ms\": {recover_ms:.1},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"point\": \"{}\", \"budget\": \"{}\", \"build_ms\": {:.1}, \"degraded\": {}, \"uncored_components\": {}, \"uncored_triples\": {}, \"answers\": {}}}{}\n",
            p.family,
            p.label,
            p.budget,
            p.build_ms,
            p.degraded,
            p.uncored_components,
            p.uncored_triples,
            p.answers,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&metrics_block(metrics_json));
    out.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e22.json");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_e22.json: {e}");
    } else {
        println!("[E22] results recorded in BENCH_e22.json");
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
