//! A small directed-graph type over `usize` vertex identifiers.
//!
//! This is the "standard graph" `H = (V, E)` with `E ⊆ V × V` that §2.4 of
//! the paper encodes into RDF via `enc(H)`. The type is deliberately simple:
//! vertices are added implicitly by the edges that mention them, plus an
//! explicit vertex set for isolated nodes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite directed graph with `usize` vertices.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    vertices: BTreeSet<usize>,
    /// Forward adjacency: `succ[u]` is the set of `v` with `(u, v) ∈ E`.
    succ: BTreeMap<usize, BTreeSet<usize>>,
    /// Backward adjacency.
    pred: BTreeMap<usize, BTreeSet<usize>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates a graph from an edge list.
    pub fn from_edges(edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new();
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds a vertex (no-op if already present).
    pub fn add_vertex(&mut self, v: usize) {
        self.vertices.insert(v);
    }

    /// Adds an edge, inserting the endpoints if necessary. Returns `true` if
    /// the edge was new.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        self.vertices.insert(u);
        self.vertices.insert(v);
        let added = self.succ.entry(u).or_default().insert(v);
        if added {
            self.pred.entry(v).or_default().insert(u);
            self.edge_count += 1;
        }
        added
    }

    /// Removes a vertex and its incident edges, returning the removed edges
    /// (a self-loop is returned once). The inverse of re-adding the vertex
    /// and its edges — the pair the retraction search uses to try dropping
    /// each vertex against one working copy instead of rebuilding induced
    /// subgraphs.
    pub fn remove_vertex(&mut self, v: usize) -> Vec<(usize, usize)> {
        let mut removed = Vec::new();
        if !self.vertices.remove(&v) {
            return removed;
        }
        if let Some(successors) = self.succ.remove(&v) {
            for w in successors {
                removed.push((v, w));
                if let Some(p) = self.pred.get_mut(&w) {
                    p.remove(&v);
                }
            }
        }
        if let Some(predecessors) = self.pred.remove(&v) {
            // A self-loop was already detached (and counted) above.
            for u in predecessors {
                removed.push((u, v));
                if let Some(s) = self.succ.get_mut(&u) {
                    s.remove(&v);
                }
            }
        }
        self.edge_count -= removed.len();
        removed
    }

    /// Removes an edge. Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let removed = self.succ.get_mut(&u).is_some_and(|s| s.remove(&v));
        if removed {
            if let Some(p) = self.pred.get_mut(&v) {
                p.remove(&u);
            }
            self.edge_count -= 1;
        }
        removed
    }

    /// Returns `true` if the edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ.get(&u).is_some_and(|s| s.contains(&v))
    }

    /// The vertex set.
    pub fn vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertices.iter().copied()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .flat_map(|(&u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// The edges as a `Vec`, handy for passing to `swdb_model::encode_edges`.
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        self.edges().collect()
    }

    /// Out-neighbours of a vertex.
    pub fn successors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.succ.get(&u).into_iter().flatten().copied()
    }

    /// In-neighbours of a vertex.
    pub fn predecessors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.pred.get(&v).into_iter().flatten().copied()
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, u: usize) -> usize {
        self.succ.get(&u).map_or(0, BTreeSet::len)
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: usize) -> usize {
        self.pred.get(&v).map_or(0, BTreeSet::len)
    }

    /// Returns the subgraph induced by the given vertex set.
    pub fn induced_subgraph(&self, keep: &BTreeSet<usize>) -> DiGraph {
        let mut g = DiGraph::new();
        for &v in keep {
            if self.vertices.contains(&v) {
                g.add_vertex(v);
            }
        }
        for (u, v) in self.edges() {
            if keep.contains(&u) && keep.contains(&v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Returns `true` if `self` is a subgraph of `other` (vertices and edges).
    pub fn is_subgraph_of(&self, other: &DiGraph) -> bool {
        self.vertices.is_subset(&other.vertices) && self.edges().all(|(u, v)| other.has_edge(u, v))
    }

    // ----- standard constructions used by the reductions -----

    /// The directed path `0 → 1 → … → n-1`.
    pub fn path(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        if n > 0 {
            g.add_vertex(0);
        }
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// The directed cycle on `n ≥ 1` vertices.
    pub fn cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    /// The complete symmetric digraph `K_n` without self-loops: both `(u, v)`
    /// and `(v, u)` for every pair of distinct vertices. This is the digraph
    /// rendering of the undirected clique used by the paper's reductions
    /// (colourability = homomorphism into `K_k`).
    pub fn complete(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        for u in 0..n {
            g.add_vertex(u);
            for v in 0..n {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Interprets an undirected edge list by inserting both orientations.
    pub fn from_undirected_edges(edges: impl IntoIterator<Item = (usize, usize)>) -> DiGraph {
        let mut g = DiGraph::new();
        for (u, v) in edges {
            g.add_edge(u, v);
            g.add_edge(v, u);
        }
        g
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiGraph(|V|={}, |E|={}, edges={:?})",
            self.vertex_count(),
            self.edge_count(),
            self.edge_list()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_edges() {
        let mut g = DiGraph::new();
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1), "duplicate edge must not be re-added");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.vertex_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 2, "vertices survive edge removal");
    }

    #[test]
    fn remove_vertex_detaches_all_incident_edges_once() {
        let mut g = DiGraph::from_edges([(0, 1), (1, 2), (2, 1), (1, 1), (0, 2)]);
        let original = g.clone();
        let detached = g.remove_vertex(1);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_list(), vec![(0, 2)]);
        assert_eq!(detached.len(), 4, "self-loop counted once: {detached:?}");
        assert_eq!(g.edge_count(), 1);
        // Restoring the vertex and its edges round-trips.
        g.add_vertex(1);
        for (u, v) in detached {
            g.add_edge(u, v);
        }
        assert_eq!(g, original);
        // Removing an absent vertex is a no-op.
        assert!(g.remove_vertex(99).is_empty());
        assert_eq!(g, original);
    }

    #[test]
    fn remove_isolated_vertex_returns_no_edges() {
        let mut g = DiGraph::from_edges([(0, 1)]);
        g.add_vertex(5);
        assert!(g.remove_vertex(5).is_empty());
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn degrees_and_neighbours() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.predecessors(2).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn path_cycle_and_complete_have_expected_sizes() {
        assert_eq!(DiGraph::path(5).edge_count(), 4);
        assert_eq!(DiGraph::path(5).vertex_count(), 5);
        assert_eq!(DiGraph::cycle(5).edge_count(), 5);
        let k4 = DiGraph::complete(4);
        assert_eq!(k4.vertex_count(), 4);
        assert_eq!(k4.edge_count(), 12);
        assert!(!k4.has_edge(2, 2));
    }

    #[test]
    fn induced_subgraph_keeps_only_internal_edges() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let keep: BTreeSet<usize> = [1, 2].into_iter().collect();
        let sub = g.induced_subgraph(&keep);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_list(), vec![(1, 2)]);
        assert!(sub.is_subgraph_of(&g));
    }

    #[test]
    fn undirected_edges_insert_both_orientations() {
        let g = DiGraph::from_undirected_edges([(0, 1)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn path_of_zero_and_one_vertices() {
        assert_eq!(DiGraph::path(0).vertex_count(), 0);
        let p1 = DiGraph::path(1);
        assert_eq!(p1.vertex_count(), 1);
        assert_eq!(p1.edge_count(), 0);
    }
}
