//! A dictionary-encoded triple store with SPO, POS and OSP indexes.
//!
//! The store keeps three orderings of the same id-triples so that any triple
//! pattern with bound prefix positions can be answered with a range scan:
//!
//! * `SPO` — bound subject (and optionally predicate),
//! * `POS` — bound predicate (and optionally object),
//! * `OSP` — bound object (and optionally subject).
//!
//! This is the classical layout used by practical RDF stores; it is the
//! "database" substrate on which the query layer (`swdb-query`) operates when
//! data outgrows the plain [`swdb_model::Graph`] representation, and the
//! id-space that the incremental reasoner (`swdb-reason`) computes closures
//! over.
//!
//! ## Mutability design
//!
//! The dictionary and the three indexes move together under one `&mut self`:
//! every mutating operation (`insert`, `remove`) takes `&mut self`, every
//! read (`scan`, `contains`, `id_of`) takes `&self`. An earlier revision
//! kept the dictionary behind an `RwLock` so reads could intern lazily, but
//! mixing interior mutability with `&mut` indexes made the ownership story
//! incoherent (and poisoned the `Send`/`Sync` expectations of callers);
//! reads never need to intern — a term that was never interned matches
//! nothing — so the lock bought nothing.

use std::collections::BTreeSet;

use swdb_model::{Graph, Iri, Term, Triple};

use crate::dictionary::{Dictionary, TermId};
use crate::id_index::IdIndex;

/// A triple of interned identifiers.
pub type IdTriple = (TermId, TermId, TermId);

/// A pattern over interned identifiers: `None` is a wildcard.
pub type IdPattern = (Option<TermId>, Option<TermId>, Option<TermId>);

/// An indexed, dictionary-encoded triple store: an [`IdIndex`] over the ids
/// allocated by a [`Dictionary`].
#[derive(Clone, Debug, Default)]
pub struct TripleStore {
    dictionary: Dictionary,
    index: IdIndex,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// Builds a store from a graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = TripleStore::new();
        for t in graph.iter() {
            store.insert(t);
        }
        store
    }

    /// Number of triples stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if the store has no triples.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of distinct terms interned.
    pub fn term_count(&self) -> usize {
        self.dictionary.len()
    }

    /// Read access to the term dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Interns a term, allocating an id if needed. Ids are append-only: the
    /// id stays valid even after every triple mentioning the term is removed.
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dictionary.intern(term)
    }

    /// Interns the three positions of a triple.
    fn intern_triple(&mut self, triple: &Triple) -> IdTriple {
        let s = self.dictionary.intern(triple.subject());
        let p = self
            .dictionary
            .intern(&Term::Iri(triple.predicate().clone()));
        let o = self.dictionary.intern(triple.object());
        (s, p, o)
    }

    /// Inserts a triple; returns `true` if it was new.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        self.insert_with_ids(triple).1
    }

    /// Inserts a triple, returning its interned ids and whether it was new.
    pub fn insert_with_ids(&mut self, triple: &Triple) -> (IdTriple, bool) {
        let (s, p, o) = self.intern_triple(triple);
        ((s, p, o), self.insert_id_triple((s, p, o)))
    }

    /// Inserts an already-interned triple; returns `true` if it was new.
    ///
    /// The caller is responsible for the ids being live in the dictionary
    /// (ids obtained from [`TripleStore::intern`] or a scan always are).
    pub fn insert_id_triple(&mut self, ids: IdTriple) -> bool {
        self.index.insert(ids)
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        self.remove_with_ids(triple).is_some()
    }

    /// Removes a triple, returning its interned ids if it was present.
    ///
    /// The dictionary entry survives removal (ids are never recycled), so
    /// the returned ids remain valid for delta propagation.
    pub fn remove_with_ids(&mut self, triple: &Triple) -> Option<IdTriple> {
        let ids = self.resolve_ids(triple)?;
        self.remove_id_triple(ids).then_some(ids)
    }

    /// Removes an already-interned triple; returns `true` if it was present.
    pub fn remove_id_triple(&mut self, ids: IdTriple) -> bool {
        self.index.remove(ids)
    }

    /// Resolves a triple to ids without interning; `None` if any position
    /// was never interned (in which case the triple cannot be present).
    fn resolve_ids(&self, triple: &Triple) -> Option<IdTriple> {
        let s = self.dictionary.id_of(triple.subject())?;
        let p = self
            .dictionary
            .id_of(&Term::Iri(triple.predicate().clone()))?;
        let o = self.dictionary.id_of(triple.object())?;
        Some((s, p, o))
    }

    /// Returns `true` if the triple is present.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.resolve_ids(triple)
            .is_some_and(|ids| self.contains_id_triple(ids))
    }

    /// Returns `true` if the id-triple is present.
    pub fn contains_id_triple(&self, ids: IdTriple) -> bool {
        self.index.contains(ids)
    }

    /// Resolves the id of a term if it has been interned.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dictionary.id_of(term)
    }

    /// Resolves a term from its id.
    pub fn term_of(&self, id: TermId) -> Option<Term> {
        self.dictionary.term_of(id).cloned()
    }

    /// Iterates over the stored id-triples in `(s, p, o)` order.
    pub fn iter_ids(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.index.iter()
    }

    /// Answers an id-pattern with the most selective index, returning the
    /// matching id-triples in `(s, p, o)` order.
    pub fn scan_ids(&self, pattern: IdPattern) -> Vec<IdTriple> {
        self.index.scan(pattern)
    }

    /// Visits every id-triple matching the pattern without materializing a
    /// `Vec`; the visitor returns `false` to stop early.
    pub fn scan_ids_while(&self, pattern: IdPattern, visit: impl FnMut(IdTriple) -> bool) {
        self.index.scan_while(pattern, visit)
    }

    /// Counts the id-triples matching a pattern without materializing them
    /// (see [`IdIndex::candidate_count`]).
    pub fn candidate_count(&self, pattern: IdPattern) -> usize {
        self.index.candidate_count(pattern)
    }

    /// Read access to the underlying SPO/POS/OSP index, for id-space
    /// consumers (the query engine joins against it directly).
    pub fn id_index(&self) -> &IdIndex {
        &self.index
    }

    /// Resolves a term-level pattern to an id-pattern: `None` when a bound
    /// term was never interned (in which case nothing can match).
    pub fn resolve_pattern(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Option<IdPattern> {
        let to_id = |t: Option<&Term>| -> Option<Option<TermId>> {
            match t {
                None => Some(None),
                Some(term) => self.dictionary.id_of(term).map(Some),
            }
        };
        Some((
            to_id(subject)?,
            to_id(predicate.map(|p| Term::Iri(p.clone())).as_ref())?,
            to_id(object)?,
        ))
    }

    /// Answers a term-level pattern (each position optionally bound).
    pub fn scan(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let Some(pattern) = self.resolve_pattern(subject, predicate, object) else {
            // A bound term that was never interned matches nothing.
            return Vec::new();
        };
        self.scan_ids(pattern)
            .into_iter()
            .map(|ids| self.materialize(ids))
            .collect()
    }

    /// Resolves an id-triple back to terms.
    ///
    /// Panics on ids that were never interned; ids produced by this store
    /// are always resolvable.
    pub fn materialize(&self, (s, p, o): IdTriple) -> Triple {
        let subject = self
            .dictionary
            .term_of(s)
            .expect("dangling subject id")
            .clone();
        let predicate = self
            .dictionary
            .term_of(p)
            .and_then(|t| t.as_iri().cloned())
            .expect("dangling predicate id");
        let object = self
            .dictionary
            .term_of(o)
            .expect("dangling object id")
            .clone();
        Triple::new(subject, predicate, object)
    }

    /// Exports the stored triples as a [`Graph`].
    pub fn to_graph(&self) -> Graph {
        self.index.iter().map(|ids| self.materialize(ids)).collect()
    }

    /// The distinct predicates in use.
    pub fn predicates(&self) -> BTreeSet<Iri> {
        self.index
            .predicate_ids()
            .into_iter()
            .filter_map(|p| match self.dictionary.term_of(p) {
                Some(Term::Iri(iri)) => Some(iri.clone()),
                _ => None,
            })
            .collect()
    }
}

impl PartialEq for TripleStore {
    fn eq(&self, other: &Self) -> bool {
        self.to_graph() == other.to_graph()
    }
}

impl Eq for TripleStore {}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, triple};

    fn sample() -> TripleStore {
        TripleStore::from_graph(&graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "ex:c"),
            ("ex:b", "ex:q", "ex:c"),
            ("_:X", "ex:p", "ex:b"),
        ]))
    }

    #[test]
    fn insert_remove_contains() {
        let mut store = sample();
        assert_eq!(store.len(), 4);
        let t = triple("ex:new", "ex:p", "ex:b");
        assert!(!store.contains(&t));
        assert!(store.insert(&t));
        assert!(!store.insert(&t));
        assert!(store.contains(&t));
        assert!(store.remove(&t));
        assert!(!store.remove(&t));
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn id_level_insert_remove_round_trip() {
        let mut store = sample();
        let t = triple("ex:new", "ex:p", "ex:b");
        let (ids, added) = store.insert_with_ids(&t);
        assert!(added);
        assert!(store.contains_id_triple(ids));
        assert_eq!(store.remove_with_ids(&t), Some(ids));
        assert!(!store.contains_id_triple(ids));
        // Ids survive removal: reinserting by id alone resolves back.
        assert!(store.insert_id_triple(ids));
        assert_eq!(store.materialize(ids), t);
    }

    #[test]
    fn remove_of_unknown_terms_is_none() {
        let mut store = sample();
        assert_eq!(
            store.remove_with_ids(&triple("ex:ghost", "ex:p", "ex:b")),
            None
        );
    }

    #[test]
    fn round_trip_through_graph() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]);
        let store = TripleStore::from_graph(&g);
        assert_eq!(store.to_graph(), g);
    }

    #[test]
    fn scans_by_each_position() {
        let store = sample();
        assert_eq!(store.scan(Some(&Term::iri("ex:a")), None, None).len(), 2);
        assert_eq!(store.scan(None, Some(&Iri::new("ex:p")), None).len(), 3);
        assert_eq!(store.scan(None, None, Some(&Term::iri("ex:b"))).len(), 2);
        assert_eq!(
            store
                .scan(
                    Some(&Term::iri("ex:a")),
                    Some(&Iri::new("ex:p")),
                    Some(&Term::iri("ex:b"))
                )
                .len(),
            1
        );
        assert_eq!(store.scan(None, None, None).len(), 4);
    }

    #[test]
    fn scans_for_unknown_terms_return_nothing() {
        let store = sample();
        assert!(store
            .scan(Some(&Term::iri("ex:unknown")), None, None)
            .is_empty());
        assert!(store
            .scan(None, Some(&Iri::new("ex:unknownpred")), None)
            .is_empty());
    }

    #[test]
    fn predicates_are_listed_once() {
        let store = sample();
        let preds = store.predicates();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains("ex:p"));
        assert!(preds.contains("ex:q"));
    }

    #[test]
    fn removing_triples_keeps_dictionary_intact() {
        let mut store = sample();
        let t = triple("ex:a", "ex:p", "ex:b");
        let id = store.id_of(&Term::iri("ex:a")).unwrap();
        store.remove(&t);
        assert_eq!(store.id_of(&Term::iri("ex:a")), Some(id));
        assert_eq!(store.term_of(id), Some(Term::iri("ex:a")));
    }

    #[test]
    fn blank_nodes_are_stored_distinct_from_iris() {
        let store = sample();
        assert_eq!(store.scan(Some(&Term::blank("X")), None, None).len(), 1);
        assert!(store.scan(Some(&Term::iri("X")), None, None).is_empty());
    }

    #[test]
    fn clone_and_eq_compare_contents() {
        let store = sample();
        let cloned = store.clone();
        assert_eq!(store, cloned);
        let mut modified = store.clone();
        modified.insert(&triple("ex:z", "ex:p", "ex:z"));
        assert_ne!(store, modified);
    }

    #[test]
    fn iter_ids_is_in_spo_order_and_complete() {
        let store = sample();
        let ids: Vec<_> = store.iter_ids().collect();
        assert_eq!(ids.len(), 4);
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }
}
