//! Snapshot-isolation contract of the publication layer
//! (`swdb_core::publish`): a pinned [`PublishedSnapshot`] is bit-identical
//! before, during, and after concurrent writer mutations — across writer
//! thread schedules (`SWDB_THREADS` 1 vs 4) — and the degraded flags a
//! reader observes are the ones of the substrate it actually answers from
//! (the snapshot), not the writer's current state.

use std::sync::Arc;

use swdb_core::{
    CoreBudget, CoreBudgetMode, EntailmentRegime, PublishedSnapshot, SemanticWebDatabase,
    Semantics, SnapshotQueryError,
};
use swdb_model::{graph, rdfs, Graph};
use swdb_query::query;
use swdb_store::IdTriple;

fn sample_graph(n: usize) -> Graph {
    let mut g = graph([
        ("ex:paints", rdfs::SP, "ex:creates"),
        ("ex:creates", rdfs::DOM, "ex:Artist"),
    ]);
    for i in 0..n {
        g.insert(swdb_model::triple(
            format!("ex:artist{i}").as_str(),
            "ex:paints",
            format!("ex:work{i}").as_str(),
        ));
    }
    g
}

fn creators_query() -> swdb_query::Query {
    query([("?X", "ex:creates", "?Y")], [("?X", "ex:creates", "?Y")])
}

fn index_bits(snapshot: &PublishedSnapshot) -> Vec<IdTriple> {
    snapshot.index().iter().collect()
}

/// The differential pin: one pinned snapshot, a writer hammering
/// insert/remove/publish on the live database from the main thread, and
/// reader threads answering on the pin throughout. Every observation —
/// the raw id-index bits and the answer graphs — must be identical to the
/// pre-mutation baseline, under both the sequential (1) and the sharded
/// (4) writer schedule.
#[test]
fn pinned_snapshot_is_bit_identical_under_concurrent_writer_mutations() {
    let mut by_thread_count: Vec<Graph> = Vec::new();
    for threads in [1usize, 4] {
        let mut db = SemanticWebDatabase::from_graph(sample_graph(40));
        db.set_threads(threads);
        let reader = db.reader();
        let pinned = reader.pin();
        let epoch0 = pinned.epoch();
        let baseline_bits = index_bits(&pinned);
        let baseline_answer = pinned.answer(&creators_query(), Semantics::Union).unwrap();
        assert!(!baseline_answer.is_empty());

        // Readers answer on the pin while the writer below mutates.
        let observers: Vec<_> = (0..3)
            .map(|_| {
                let pinned: Arc<PublishedSnapshot> = Arc::clone(&pinned);
                std::thread::spawn(move || {
                    let mut answers = Vec::new();
                    for _ in 0..20 {
                        answers.push(pinned.answer(&creators_query(), Semantics::Union).unwrap());
                    }
                    answers
                })
            })
            .collect();

        for round in 0..10 {
            db.insert_graph(&graph([
                (
                    format!("ex:new{round}").as_str(),
                    "ex:paints",
                    "ex:something",
                ),
                (format!("ex:new{round}").as_str(), rdfs::TYPE, "ex:Artist"),
            ]));
            db.remove(&swdb_model::triple(
                format!("ex:artist{round}").as_str(),
                "ex:paints",
                format!("ex:work{round}").as_str(),
            ));
            db.publish();
        }

        for observer in observers {
            for observed in observer.join().unwrap() {
                assert_eq!(
                    observed, baseline_answer,
                    "threads={threads}: a pinned snapshot's answers drifted under writes"
                );
            }
        }
        assert_eq!(pinned.epoch(), epoch0, "a pin never changes epoch");
        assert_eq!(
            index_bits(&pinned),
            baseline_bits,
            "threads={threads}: the pinned id index must be bit-identical after mutations"
        );
        // A fresh pin sees the writer's latest publication instead.
        let fresh = reader.pin();
        assert!(fresh.epoch() > epoch0);
        assert_ne!(index_bits(&fresh), baseline_bits);
        by_thread_count.push(fresh.answer(&creators_query(), Semantics::Union).unwrap());
    }
    // And the published read state is schedule-invariant: the sequential
    // and sharded writers publish identical answers.
    assert_eq!(
        by_thread_count[0], by_thread_count[1],
        "published snapshots must be identical across SWDB_THREADS 1 vs 4"
    );
}

/// `answer_with_status` degraded flags ride the published snapshot: a pin
/// taken while the engine was budget-exhausted keeps reporting
/// `non_minimal` after the live database recovers, and a fresh pin reports
/// the recovery.
#[test]
fn degraded_flags_ride_the_published_snapshot() {
    let clique = swdb_workloads::blank_clique(7);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(5)));
    db.insert_graph(&clique);
    let reader = db.reader();
    let degraded_pin = reader.pin();
    assert!(
        db.is_degraded(),
        "the step budget must exhaust on the clique"
    );
    assert!(degraded_pin.non_minimal());
    let q = query([("?S", "?P", "?O")], [("?S", "?P", "?O")]);
    let (answer, non_minimal) = degraded_pin
        .answer_with_status(&q, Semantics::Union)
        .unwrap();
    assert!(non_minimal, "the degraded flag must ride the snapshot");
    assert_eq!(
        answer.len(),
        clique.len(),
        "degradation never drops answers"
    );

    // Recover the live database and publish the recovery.
    db.set_core_budget(CoreBudgetMode::Unlimited);
    assert!(db.refresh_degraded());
    db.publish();

    // The old pin still answers from — and reports — the degraded
    // substrate; a fresh pin reports the recovered one.
    assert!(degraded_pin.non_minimal());
    let fresh = reader.pin();
    assert!(!fresh.non_minimal());
    let (_, fresh_flag) = fresh.answer_with_status(&q, Semantics::Union).unwrap();
    assert!(!fresh_flag);
}

/// The snapshot serves exactly the premise-free and expansion mechanisms;
/// overlay-mechanism premise queries are refused with `NeedsWriter` and
/// the answers it does serve agree with the facade's.
#[test]
fn snapshot_dispatch_matches_the_facade() {
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.insert_graph(&graph([
        ("ex:u", "ex:q", "ex:a"),
        ("ex:u", "ex:q", "ex:c"),
        ("ex:c", "ex:t", "ex:s"),
    ]));
    let pinned = db.reader().pin();

    let premise_free = query([("?X", "ex:q", "?Y")], [("?X", "ex:q", "?Y")]);
    assert!(pinned.supports(&premise_free));
    assert_eq!(
        pinned.answer(&premise_free, Semantics::Union).unwrap(),
        db.answer(&premise_free, Semantics::Union)
    );
    assert_eq!(
        pinned.pre_answers(&premise_free).unwrap().len(),
        db.pre_answers(&premise_free).len()
    );
    assert!(!pinned.answer_is_empty(&premise_free).unwrap());
    let explain = pinned.explain(&premise_free, Semantics::Union).unwrap();
    assert_eq!(explain.mechanism, "premise_free");

    // Ground premise under simple entailment: the Prop. 5.9 expansion —
    // snapshot-servable.
    let expansion = swdb_query::Query::with_premise(
        swdb_hom::pattern_graph([("?X", "ex:p", "?Y")]),
        swdb_hom::pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
        graph([("ex:a", "ex:t", "ex:s")]),
    )
    .unwrap();
    assert!(pinned.supports(&expansion));
    assert_eq!(
        pinned.answer(&expansion, Semantics::Union).unwrap(),
        db.answer(&expansion, Semantics::Union)
    );
    assert_eq!(
        pinned
            .explain(&expansion, Semantics::Union)
            .unwrap()
            .mechanism,
        "expansion"
    );

    // A blank-bearing premise needs the overlay — only the facade can.
    let overlay = swdb_query::Query::with_premise(
        swdb_hom::pattern_graph([("?X", "ex:q", "?Y")]),
        swdb_hom::pattern_graph([("?X", "ex:q", "?Y")]),
        graph([("ex:w", "ex:q", "_:P")]),
    )
    .unwrap();
    assert!(!pinned.supports(&overlay));
    assert!(matches!(
        pinned.answer(&overlay, Semantics::Union),
        Err(SnapshotQueryError::NeedsWriter)
    ));
    assert!(matches!(
        pinned.explain(&overlay, Semantics::Union),
        Err(SnapshotQueryError::NeedsWriter)
    ));
}

/// Publication bookkeeping: epochs are monotone, `published()` tracks the
/// slot from `&self`, clones get a fresh unpublished slot, and the
/// placeholder epoch 0 is never handed to a reader.
#[test]
fn publication_epochs_are_monotone_and_clones_are_isolated() {
    let mut db = SemanticWebDatabase::from_graph(sample_graph(3));
    assert_eq!(db.published().epoch(), 0, "nothing published yet");
    let reader = db.reader(); // publishes epoch 1 so no reader sees epoch 0
    assert_eq!(reader.epoch(), 1);
    let e2 = db.publish().epoch();
    assert_eq!(e2, 2);
    assert_eq!(db.published().epoch(), 2);

    let mut cloned = db.clone();
    assert_eq!(
        cloned.published().epoch(),
        0,
        "a clone starts with a fresh, unpublished slot"
    );
    cloned.publish();
    assert_eq!(
        db.published().epoch(),
        2,
        "the original's slot is untouched"
    );
}
