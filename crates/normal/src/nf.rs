//! The normal form `nf(G) = core(cl(G))` (Definition 3.18, Theorem 3.19).
//!
//! Neither the closure (maximal representation) nor the core (minimal
//! representation) alone is a normal form: Example 3.17 exhibits equivalent
//! graphs with non-isomorphic closures *and* non-isomorphic cores. The
//! composition fixes both problems: `nf(G)` is unique up to isomorphism and
//! syntax independent — `G ≡ H` iff `nf(G) ≅ nf(H)`. Computing it is
//! DP-complete (Theorem 3.20).

use swdb_model::{isomorphic, Graph};

use crate::closure::closure;
use crate::core::core;

/// Computes the normal form `nf(G) = core(cl(G))`.
pub fn normal_form(g: &Graph) -> Graph {
    core(&closure(g))
}

/// Decides whether `candidate` is (isomorphic to) the normal form of `g`
/// — the decision problem of Theorem 3.20.
pub fn is_normal_form_of(candidate: &Graph, g: &Graph) -> bool {
    isomorphic(candidate, &normal_form(g))
}

/// Decides graph equivalence through normal forms (Theorem 3.19(2)):
/// `G ≡ H` iff `nf(G) ≅ nf(H)`. This is an alternative to the two
/// entailment checks of [`swdb_entailment::equivalent`] and is used in tests
/// to cross-validate both procedures.
pub fn equivalent_by_normal_form(g: &Graph, h: &Graph) -> bool {
    isomorphic(&normal_form(g), &normal_form(h))
}

/// Returns `true` if the graph is already in normal form (equal to its own
/// normal form; since `nf` is computed canonically on the same blank labels,
/// literal equality is the right check here).
pub fn is_in_normal_form(g: &Graph) -> bool {
    normal_form(g) == *g
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, rdfs, triple};

    /// Example 3.17: `G` routes `b ⊑ c` through a blank node, `H` states it
    /// directly (plus the derived shortcut). The two graphs are equivalent.
    fn example_3_17() -> (Graph, Graph) {
        let g = graph([
            ("ex:a", rdfs::SC, "ex:b"),
            ("ex:b", rdfs::SC, "_:N"),
            ("_:N", rdfs::SC, "ex:c"),
        ]);
        let h = graph([
            ("ex:a", rdfs::SC, "ex:b"),
            ("ex:b", rdfs::SC, "ex:c"),
            ("ex:a", rdfs::SC, "ex:c"),
        ]);
        (g, h)
    }

    #[test]
    fn example_3_17_graphs_are_equivalent() {
        let (g, h) = example_3_17();
        assert!(swdb_entailment::equivalent(&g, &h));
    }

    #[test]
    fn example_3_17_closures_and_cores_are_not_syntax_independent() {
        let (g, h) = example_3_17();
        let cl_g = closure(&g);
        let cl_h = closure(&h);
        assert!(
            !isomorphic(&cl_g, &cl_h),
            "closures of equivalent graphs need not be isomorphic"
        );
        let core_g = core(&g);
        let core_h = core(&h);
        assert!(
            !isomorphic(&core_g, &core_h),
            "cores of equivalent graphs need not be isomorphic either"
        );
    }

    #[test]
    fn example_3_17_normal_forms_agree() {
        let (g, h) = example_3_17();
        assert!(isomorphic(&normal_form(&g), &normal_form(&h)));
        assert!(equivalent_by_normal_form(&g, &h));
        // The normal form is ground: the blank detour is retracted away.
        assert!(normal_form(&g).is_ground());
        assert!(normal_form(&g).contains(&triple("ex:a", rdfs::SC, "ex:c")));
    }

    #[test]
    fn theorem_3_19_uniqueness_under_blank_renaming() {
        let g = graph([("ex:a", rdfs::SC, "ex:b"), ("_:X", rdfs::TYPE, "ex:a")]);
        let renamed = swdb_model::rename_blanks_sequentially(&g, "fresh");
        assert!(isomorphic(&normal_form(&g), &normal_form(&renamed)));
    }

    #[test]
    fn normal_form_is_equivalent_to_input_and_idempotent() {
        let g = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Artist", rdfs::SC, "ex:Person"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
            ("ex:Picasso", rdfs::TYPE, "_:SomeClassMember"),
        ]);
        let nf = normal_form(&g);
        assert!(swdb_entailment::equivalent(&g, &nf));
        assert!(is_in_normal_form(&nf), "nf must be a fixpoint");
        assert!(isomorphic(&normal_form(&nf), &nf));
    }

    #[test]
    fn equivalence_by_normal_form_agrees_with_entailment_equivalence() {
        let pairs = [
            (
                graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]),
                graph([("ex:a", "ex:p", "_:Z")]),
                true,
            ),
            (
                graph([("ex:a", "ex:p", "ex:b")]),
                graph([("ex:a", "ex:p", "_:X")]),
                false,
            ),
            (
                graph([("ex:A", rdfs::SC, "ex:B"), ("ex:B", rdfs::SC, "ex:C")]),
                graph([
                    ("ex:A", rdfs::SC, "ex:B"),
                    ("ex:B", rdfs::SC, "ex:C"),
                    ("ex:A", rdfs::SC, "ex:C"),
                ]),
                true,
            ),
        ];
        for (g, h, expected) in pairs {
            assert_eq!(swdb_entailment::equivalent(&g, &h), expected);
            assert_eq!(
                equivalent_by_normal_form(&g, &h),
                expected,
                "for {g} vs {h}"
            );
        }
    }

    #[test]
    fn is_normal_form_of_detects_mismatches() {
        let g = graph([("ex:A", rdfs::SC, "ex:B"), ("_:X", rdfs::TYPE, "ex:A")]);
        let nf = normal_form(&g);
        assert!(is_normal_form_of(&nf, &g));
        assert!(
            !is_normal_form_of(&g, &g),
            "g itself is not closed, so it is not its nf"
        );
    }

    #[test]
    fn simple_graph_normal_form_is_core_plus_axioms() {
        // For a simple graph the closure only adds reflexive sp triples for
        // the predicates in use plus the vocabulary axioms, and the core
        // cannot remove ground triples, so nf(G) ⊇ core(G).
        let g = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let nf = normal_form(&g);
        assert!(nf.contains(&triple("ex:p", rdfs::SP, "ex:p")));
        assert!(nf.contains(&triple(rdfs::TYPE, rdfs::SP, rdfs::TYPE)));
        // Exactly one of the two redundant blank triples survives.
        let blank_triples = nf
            .iter()
            .filter(|t| t.predicate().as_str() == "ex:p" && t.object().is_blank())
            .count();
        assert_eq!(blank_triples, 1);
    }
}
