//! RDF triples.
//!
//! An RDF triple is an element `(s, p, o) ∈ (U ∪ B) × U × (U ∪ B)` (§2.1):
//! subjects and objects range over URIs and blank nodes, predicates are URIs.

use std::fmt;

use crate::term::{Iri, Term};

/// An RDF triple `(subject, predicate, object)`.
///
/// The predicate position is restricted to URIs, as in the paper's definition
/// of well-formed triples; attempts to instantiate rules or maps with a blank
/// node in predicate position are rejected at the point where they arise (see
/// `swdb-entailment`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Triple {
    subject: Term,
    predicate: Iri,
    object: Term,
}

impl Triple {
    /// Creates a triple from its three components.
    pub fn new(
        subject: impl Into<Term>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// The subject `s` of the triple.
    pub fn subject(&self) -> &Term {
        &self.subject
    }

    /// The predicate `p` of the triple.
    pub fn predicate(&self) -> &Iri {
        &self.predicate
    }

    /// The object `o` of the triple.
    pub fn object(&self) -> &Term {
        &self.object
    }

    /// Decomposes the triple into its components.
    pub fn into_parts(self) -> (Term, Iri, Term) {
        (self.subject, self.predicate, self.object)
    }

    /// Returns `true` if neither the subject nor the object is a blank node.
    pub fn is_ground(&self) -> bool {
        !self.subject.is_blank() && !self.object.is_blank()
    }

    /// Returns an iterator over the subject and object terms (the positions a
    /// map can act on).
    pub fn node_terms(&self) -> impl Iterator<Item = &Term> {
        [&self.subject, &self.object].into_iter()
    }

    /// Returns an iterator over all three positions viewed as terms (the
    /// predicate is wrapped into a [`Term::Iri`]).
    pub fn all_terms(&self) -> [Term; 3] {
        [
            self.subject.clone(),
            Term::Iri(self.predicate.clone()),
            self.object.clone(),
        ]
    }
}

impl fmt::Debug for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

impl<S, P, O> From<(S, P, O)> for Triple
where
    S: Into<Term>,
    P: Into<Iri>,
    O: Into<Term>,
{
    fn from((s, p, o): (S, P, O)) -> Self {
        Triple::new(s, p, o)
    }
}

/// Shorthand for building a triple from `&str` components, interpreting
/// labels starting with `"_:"` as blank nodes and everything else as URIs.
///
/// This is the notation used throughout the test suite to transcribe the
/// paper's examples compactly.
pub fn triple(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(parse_term(s), Iri::new(p), parse_term(o))
}

/// Parses a term label: `"_:X"` becomes the blank node `X`, anything else a
/// URI.
pub fn parse_term(label: &str) -> Term {
    match label.strip_prefix("_:") {
        Some(blank) => Term::blank(blank),
        None => Term::iri(label),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Triple::new(
            Term::iri("ex:Picasso"),
            Iri::new("ex:paints"),
            Term::iri("ex:Guernica"),
        );
        assert_eq!(t.subject(), &Term::iri("ex:Picasso"));
        assert_eq!(t.predicate().as_str(), "ex:paints");
        assert_eq!(t.object(), &Term::iri("ex:Guernica"));
    }

    #[test]
    fn groundness() {
        assert!(triple("ex:a", "ex:p", "ex:b").is_ground());
        assert!(!triple("_:X", "ex:p", "ex:b").is_ground());
        assert!(!triple("ex:a", "ex:p", "_:Y").is_ground());
    }

    #[test]
    fn shorthand_parses_blanks() {
        let t = triple("_:X", "ex:p", "ex:b");
        assert!(t.subject().is_blank());
        assert!(t.object().is_iri());
        assert_eq!(t.subject().as_blank().unwrap().as_str(), "X");
    }

    #[test]
    fn display_round_trips_components() {
        let t = triple("_:X", "ex:p", "ex:b");
        assert_eq!(t.to_string(), "(_:X, ex:p, ex:b)");
    }

    #[test]
    fn from_tuple() {
        let t: Triple = (Term::iri("ex:a"), Iri::new("ex:p"), Term::blank("Y")).into();
        assert_eq!(t, triple("ex:a", "ex:p", "_:Y"));
    }

    #[test]
    fn node_terms_excludes_predicate() {
        let t = triple("ex:a", "ex:p", "_:Y");
        let nodes: Vec<&Term> = t.node_terms().collect();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0], &Term::iri("ex:a"));
        assert_eq!(nodes[1], &Term::blank("Y"));
    }

    #[test]
    fn all_terms_includes_predicate_as_iri_term() {
        let t = triple("ex:a", "ex:p", "_:Y");
        let all = t.all_terms();
        assert_eq!(all[1], Term::iri("ex:p"));
    }

    #[test]
    fn ordering_is_lexicographic_on_positions() {
        let t1 = triple("ex:a", "ex:p", "ex:b");
        let t2 = triple("ex:a", "ex:q", "ex:a");
        assert!(t1 < t2);
    }
}
