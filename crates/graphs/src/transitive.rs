//! Transitive closure and transitive reduction.
//!
//! Example 3.14 of the paper shows that minimal representations of RDF
//! graphs are not unique in general because of the transitivity of `sc` and
//! `sp`, citing the classical result of Aho, Garey and Ullman: the transitive
//! reduction of a directed graph is unique exactly for acyclic graphs. The
//! `swdb-normal` crate uses this module to compute the unique minimal
//! representation of Theorem 3.16 for acyclic schema graphs.

use std::collections::BTreeSet;

use crate::digraph::DiGraph;

/// Computes the transitive closure of the graph (reachability by paths of
/// length ≥ 1).
pub fn transitive_closure(g: &DiGraph) -> DiGraph {
    let mut closure = DiGraph::new();
    for v in g.vertices() {
        closure.add_vertex(v);
    }
    for start in g.vertices() {
        // BFS from each vertex.
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut frontier: Vec<usize> = g.successors(start).collect();
        while let Some(v) = frontier.pop() {
            if seen.insert(v) {
                closure.add_edge(start, v);
                frontier.extend(g.successors(v));
            }
        }
    }
    closure
}

/// Returns `true` if `v` is reachable from `u` by a path of length ≥ 1.
pub fn reachable(g: &DiGraph, u: usize, v: usize) -> bool {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = g.successors(u).collect();
    while let Some(x) = frontier.pop() {
        if x == v {
            return true;
        }
        if seen.insert(x) {
            frontier.extend(g.successors(x));
        }
    }
    false
}

/// Returns `true` if the graph is acyclic (no directed cycle; self-loops
/// count as cycles).
pub fn is_acyclic(g: &DiGraph) -> bool {
    topological_sort(g).is_some()
}

/// Topologically sorts the graph; returns `None` if it contains a cycle.
pub fn topological_sort(g: &DiGraph) -> Option<Vec<usize>> {
    let mut in_deg: std::collections::BTreeMap<usize, usize> =
        g.vertices().map(|v| (v, g.in_degree(v))).collect();
    let mut queue: Vec<usize> = in_deg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&v, _)| v)
        .collect();
    let mut order = Vec::with_capacity(g.vertex_count());
    while let Some(v) = queue.pop() {
        order.push(v);
        for s in g.successors(v) {
            let d = in_deg.get_mut(&s).expect("successor in degree map");
            *d -= 1;
            if *d == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == g.vertex_count() {
        Some(order)
    } else {
        None
    }
}

/// Computes the transitive reduction of an **acyclic** graph: the unique
/// minimal subgraph with the same transitive closure (Aho–Garey–Ullman).
///
/// # Panics
///
/// Panics if the graph has a cycle; callers must check [`is_acyclic`] first
/// (cyclic graphs do not have a unique reduction, which is exactly the point
/// of Example 3.14).
pub fn transitive_reduction(g: &DiGraph) -> DiGraph {
    assert!(
        is_acyclic(g),
        "transitive reduction requires an acyclic graph"
    );
    let mut reduced = DiGraph::new();
    for v in g.vertices() {
        reduced.add_vertex(v);
    }
    for (u, v) in g.edges() {
        // Keep (u, v) unless v is reachable from u through some other
        // successor of u.
        let redundant = g
            .successors(u)
            .filter(|&w| w != v)
            .any(|w| w == v || reachable(g, w, v));
        if !redundant {
            reduced.add_edge(u, v);
        }
    }
    reduced
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_of_a_path_is_the_full_order() {
        let p = DiGraph::path(4); // 0→1→2→3
        let c = transitive_closure(&p);
        assert!(c.has_edge(0, 3));
        assert!(c.has_edge(1, 3));
        assert!(!c.has_edge(3, 0));
        assert_eq!(c.edge_count(), 6);
    }

    #[test]
    fn closure_of_a_cycle_is_complete_with_loops() {
        let c3 = DiGraph::cycle(3);
        let c = transitive_closure(&c3);
        assert_eq!(
            c.edge_count(),
            9,
            "every vertex reaches every vertex incl. itself"
        );
        assert!(c.has_edge(0, 0));
    }

    #[test]
    fn acyclicity_detection() {
        assert!(is_acyclic(&DiGraph::path(5)));
        assert!(!is_acyclic(&DiGraph::cycle(3)));
        let mut g = DiGraph::path(3);
        g.add_edge(2, 2);
        assert!(!is_acyclic(&g), "self-loops are cycles");
    }

    #[test]
    fn topological_sort_respects_edges() {
        let g = DiGraph::from_edges([(0, 2), (1, 2), (2, 3)]);
        let order = topological_sort(&g).unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        for (u, v) in g.edges() {
            assert!(pos(u) < pos(v), "{u} must precede {v}");
        }
    }

    #[test]
    fn reduction_of_transitive_triangle_drops_the_shortcut() {
        // Example 3.14 shape: a → b, b → c, a → c; the shortcut a → c is
        // redundant.
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let r = transitive_reduction(&g);
        assert!(r.has_edge(0, 1));
        assert!(r.has_edge(1, 2));
        assert!(!r.has_edge(0, 2));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    fn reduction_preserves_reachability() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (0, 3)]);
        let r = transitive_reduction(&g);
        assert_eq!(transitive_closure(&r), transitive_closure(&g));
        assert!(r.edge_count() < g.edge_count());
    }

    #[test]
    fn reduction_of_diamond_keeps_both_branches() {
        // 0→1→3, 0→2→3: nothing is redundant.
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let r = transitive_reduction(&g);
        assert_eq!(r.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn reduction_panics_on_cycles() {
        let _ = transitive_reduction(&DiGraph::cycle(3));
    }

    #[test]
    fn reachability_queries() {
        let p = DiGraph::path(4);
        assert!(reachable(&p, 0, 3));
        assert!(!reachable(&p, 3, 0));
        assert!(
            !reachable(&p, 0, 0),
            "no path of length ≥ 1 from 0 to itself"
        );
        let c = DiGraph::cycle(3);
        assert!(reachable(&c, 0, 0));
    }
}
