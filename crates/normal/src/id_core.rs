//! The incremental id-space core engine.
//!
//! [`IdCoreEngine`] maintains `core(G)` (Theorem 3.10) for a mutating set of
//! id-triples without ever re-running the monolithic string-space retraction
//! of [`crate::core`]. It is the read-path counterpart of `swdb-reason`'s
//! incremental closure: together they keep the evaluation graph
//! `nf(D) = core(cl(D))` of Theorem 4.6 maintained under deltas instead of
//! rebuilt per mutation. Three ideas, layered:
//!
//! 1. **Ground triples never participate.** A map fixes URIs (§2.1), so
//!    ground triples survive every retraction: they go straight into the
//!    published index, and a *ground* delta is pure `O(log n)` index
//!    maintenance — no core step at all, the common case.
//! 2. **Blank triples decompose into components** (see
//!    [`crate::components`]): a non-leanness witness only moves the blanks
//!    of the component owning the avoided triple, so the global NP-hard
//!    search (Theorem 3.12) splits into one small retraction search per
//!    component, each running in id space over the shared published index
//!    ([`swdb_hom::Avoiding`] masks the avoided triple instead of cloning
//!    `G − {t}`).
//! 3. **Support tracking makes deltas local.** Each component records the
//!    *images* of its triples under its composed retraction. A deletion
//!    re-cores exactly the components whose structure or support it touches;
//!    an insertion re-checks only components whose triples could newly fold
//!    onto it (matching predicate). Everything else keeps its cached
//!    survivors.
//!
//! ### Why per-component processing yields the global core
//!
//! Restricting a global witness `μ : G → G − {t}` to the blanks of `t`'s
//! component is still a witness (other components' triples mention none of
//! those blanks, so they are fixed and stay in `G − {t}`); conversely a
//! local witness extends by the identity. Hence *G is lean iff every
//! component is locally lean*. Each local fold is a genuine retraction of
//! the current graph, so their composition witnesses that the final result
//! is an instance-subgraph — and shrinking the graph never creates new maps
//! (a map into a subgraph is a map into the graph), so components already
//! processed stay lean: the fixpoint is `core(G)`, reached without a global
//! search. Fold images may land on *other* components' triples or on ground
//! triples; that cross-component support is exactly what the per-component
//! `support` sets record, and every fold map is replayed onto all support
//! sets so they always name live triples of the published index.
//!
//! Besides durable deltas, the engine also cores **scoped** deltas:
//! [`IdCoreEngine::overlay_core`] runs the same insert-path algorithm
//! against a layered view and returns an [`EvalOverlay`] diff instead of
//! touching the published index — the substrate of transient query-premise
//! evaluation (`D + P` for one query, then dropped).
//!
//! ### Degraded mode — bounding the NP-hard tail
//!
//! Each local retraction search is still NP-hard in its component's size
//! (Theorem 3.12), and one giant blank component degenerates to exactly the
//! global search: a hostile insert — or a merely unlucky one — could stall
//! a refresh indefinitely. A [`CoreBudgetMode`] bounds that tail: every
//! component-coring call gets a cooperative [`swdb_obs::Budget`] slice
//! (fold steps and/or wall clock, checked at probe granularity inside the
//! backtracking search — no threads, no interrupts), and a component whose
//! slice runs out is **published uncored**: its current survivor set goes
//! into the evaluation index as-is, the component is flagged, and
//! [`IdCoreEngine::recore_uncored`] retries it with a fresh slice on the
//! next quiet refresh. The same slices govern [`IdCoreEngine::overlay_core`]
//! so a poisoned what-if premise cannot stall the shared engine either; the
//! diff then reports [`EvalOverlay::non_minimal`].
//!
//! **Why publishing uncored is sound.** The engine shrinks the published
//! set only by *applying a found witness*: every fold applied before the
//! budget tripped is a genuine retraction of the graph it was found in.
//! The published state `G'` therefore satisfies
//! `core(cl(D)) ⊆ G' ⊆ cl(D)`, and `G'` is homomorphically equivalent to
//! `cl(D)` (the composed folds witness `cl(D) → G'`; the inclusion embeds
//! `G' → cl(D)`). Queries evaluated over `G'` are then *sound*: every
//! match over `G'` is a match over `cl(D)`, so no reported answer is
//! wrong; and they are *complete* for certain answers: nothing of the core
//! was dropped, so no entailed answer is lost. What the budget costs is
//! **minimality** — the answer graph may mention redundant blanks a
//! finished core search would have folded away (it may fail to be lean,
//! Def. 3.7) — never correctness. The engine surfaces that honestly as
//! `non_minimal` through the facade's answer path instead of hiding it.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use swdb_hom::{Avoiding, IdPatternTerm, IdSolver, IdTarget, IdTriplePattern, Overlay};
use swdb_obs::{Budget, Counter, Gauge, Hist, Metrics, MetricsLevel};
use swdb_store::{Dictionary, IdIndex, IdTriple, TermId};

use crate::components::blank_components;

/// A URI-preserving map over term ids: the id-space [`swdb_model::TermMap`].
/// Only the moved blank ids are recorded.
type IdMap = BTreeMap<TermId, TermId>;

fn apply_map(map: &IdMap, (s, p, o): IdTriple) -> IdTriple {
    (
        map.get(&s).copied().unwrap_or(s),
        p,
        map.get(&o).copied().unwrap_or(o),
    )
}

fn remap_set(set: &BTreeSet<IdTriple>, map: &IdMap) -> BTreeSet<IdTriple> {
    set.iter().map(|&t| apply_map(map, t)).collect()
}

/// What the core retraction publishes into: a mutable view of the
/// evaluation graph the fold search reads through [`IdTarget`]. The durable
/// engine folds the real published [`IdIndex`]; the scoped premise overlay
/// folds a layered diff against it without touching the published index.
trait CoreIndex: IdTarget {
    /// Makes a triple visible; returns `true` if it was not visible before.
    fn insert(&mut self, t: IdTriple) -> bool;
    /// Hides a triple; returns `true` if it was visible before.
    fn remove(&mut self, t: IdTriple) -> bool;
}

impl CoreIndex for IdIndex {
    fn insert(&mut self, t: IdTriple) -> bool {
        IdIndex::insert(self, t)
    }

    fn remove(&mut self, t: IdTriple) -> bool {
        IdIndex::remove(self, t)
    }
}

/// An explicit per-slice budget: fold-search steps and/or wall-clock
/// milliseconds. Both `None` means no limit (equivalent to
/// [`CoreBudgetMode::Unlimited`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreBudget {
    /// Probe-granularity step limit for one component-coring call.
    pub steps: Option<u64>,
    /// Wall-clock limit in milliseconds for one component-coring call.
    pub millis: Option<u64>,
}

impl CoreBudget {
    /// A pure step budget.
    pub fn steps(steps: u64) -> CoreBudget {
        CoreBudget {
            steps: Some(steps),
            millis: None,
        }
    }

    /// A pure wall-clock budget.
    pub fn millis(millis: u64) -> CoreBudget {
        CoreBudget {
            steps: None,
            millis: Some(millis),
        }
    }

    fn is_unlimited(self) -> bool {
        self.steps.is_none() && self.millis.is_none()
    }
}

/// In [`CoreBudgetMode::Auto`], how many search steps an oversized
/// component's slice gets per unit of the `SWDB_BLANK_WARN` threshold
/// (default threshold 1 000 → one million probe steps per slice).
pub const AUTO_STEPS_PER_WARN_UNIT: u64 = 1_000;

/// How the engine budgets its component-coring calls (see the module's
/// "Degraded mode" section).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoreBudgetMode {
    /// Never give up: the pre-budget behavior, bit-identical results.
    Unlimited,
    /// Every component-coring call gets this explicit slice.
    Budgeted(CoreBudget),
    /// The default heuristic, keyed off the `SWDB_BLANK_WARN` threshold:
    /// components at or under the threshold run unbudgeted (benign inputs
    /// stay bit-identical to [`Unlimited`]); oversized components — the
    /// ones the early-warning gauge already flags — get
    /// [`AUTO_STEPS_PER_WARN_UNIT`] × threshold steps per slice.
    ///
    /// [`Unlimited`]: CoreBudgetMode::Unlimited
    #[default]
    Auto,
}

impl CoreBudgetMode {
    /// Reads the mode from the environment: `SWDB_CORE_BUDGET` unset or
    /// `auto` means [`Auto`]; `off`/`unlimited`/`none` means [`Unlimited`];
    /// an integer is an explicit per-slice step budget. An integer
    /// `SWDB_CORE_BUDGET_MS` adds (or alone sets) a wall-clock limit.
    ///
    /// [`Auto`]: CoreBudgetMode::Auto
    /// [`Unlimited`]: CoreBudgetMode::Unlimited
    pub fn from_env() -> CoreBudgetMode {
        let steps = std::env::var("SWDB_CORE_BUDGET").ok();
        let millis = std::env::var("SWDB_CORE_BUDGET_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        match steps.as_deref().map(str::trim) {
            Some(s)
                if s.eq_ignore_ascii_case("off")
                    || s.eq_ignore_ascii_case("unlimited")
                    || s.eq_ignore_ascii_case("none") =>
            {
                CoreBudgetMode::Unlimited
            }
            Some(s) if !s.is_empty() && !s.eq_ignore_ascii_case("auto") => match s.parse::<u64>() {
                Ok(n) => CoreBudgetMode::Budgeted(CoreBudget {
                    steps: Some(n),
                    millis,
                }),
                Err(_) => CoreBudgetMode::Auto,
            },
            _ => match millis {
                Some(ms) => CoreBudgetMode::Budgeted(CoreBudget::millis(ms)),
                None => CoreBudgetMode::Auto,
            },
        }
    }

    /// The budget slice for one component-coring call over `size` triples;
    /// `None` runs the search unbudgeted.
    fn slice(self, size: usize, warn_threshold: u64) -> Option<Budget> {
        match self {
            CoreBudgetMode::Unlimited => None,
            CoreBudgetMode::Budgeted(b) if b.is_unlimited() => None,
            CoreBudgetMode::Budgeted(b) => {
                Some(Budget::new(b.steps, b.millis.map(Duration::from_millis)))
            }
            CoreBudgetMode::Auto => ((size as u64) > warn_threshold)
                .then(|| Budget::steps(warn_threshold.saturating_mul(AUTO_STEPS_PER_WARN_UNIT))),
        }
    }
}

/// The result of a *scoped* core computation over `maintained ∪ delta`: the
/// triples the delta makes newly visible (`added`, disjoint from the
/// published index) and the published triples it folds away (`removed`).
/// `published ∪ added − removed` is the core of the overlaid set; the
/// engine that produced it is untouched, so the overlay can be dropped — or
/// cached and replayed — without any cleanup.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalOverlay {
    /// Newly visible triples (the delta's survivors plus restored blank
    /// triples the delta's presence un-folds).
    pub added: IdIndex,
    /// Published triples the overlaid delta folds away.
    pub removed: BTreeSet<IdTriple>,
    /// Set when a budget slice ran out while coring the overlay: the view
    /// `published ∪ added − removed` is still a sound evaluation state
    /// (equivalent to, and a superset of, the true overlaid core) but may
    /// not be minimal. See the module's "Degraded mode" section.
    pub non_minimal: bool,
}

impl EvalOverlay {
    /// Returns `true` if the overlay changes nothing — evaluating over the
    /// published index alone is then already exact.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// The layered [`IdTarget`] view `base ∪ added − removed` queries run
    /// against.
    pub fn target<'a>(&'a self, base: &'a IdIndex) -> Overlay<'a> {
        Overlay::with_removed(base, &self.added, &self.removed)
    }
}

/// The mutable working state of a scoped core computation: the published
/// index (read-only) plus the diff under construction.
struct OverlayCoreView<'a> {
    base: &'a IdIndex,
    diff: EvalOverlay,
}

impl OverlayCoreView<'_> {
    fn as_target(&self) -> Overlay<'_> {
        self.diff.target(self.base)
    }
}

impl IdTarget for OverlayCoreView<'_> {
    fn candidate_count(&self, pattern: swdb_store::IdPattern) -> usize {
        self.as_target().candidate_count(pattern)
    }

    fn scan_while(&self, pattern: swdb_store::IdPattern, visit: impl FnMut(IdTriple) -> bool) {
        self.as_target().scan_while(pattern, visit)
    }

    fn contains(&self, ids: IdTriple) -> bool {
        self.as_target().contains(ids)
    }
}

impl CoreIndex for OverlayCoreView<'_> {
    fn insert(&mut self, t: IdTriple) -> bool {
        if self.diff.removed.remove(&t) {
            return true;
        }
        if self.base.contains(t) {
            return false;
        }
        self.diff.added.insert(t)
    }

    fn remove(&mut self, t: IdTriple) -> bool {
        if self.diff.added.remove(t) {
            return true;
        }
        self.base.contains(t) && self.diff.removed.insert(t)
    }
}

/// One blank component with its cached core state.
#[derive(Clone, Debug)]
struct Component {
    /// The component's blank ids.
    blanks: BTreeSet<TermId>,
    /// Every maintained blank triple of the component (cored or not).
    full: BTreeSet<IdTriple>,
    /// The subset of `full` currently published in the evaluation index.
    survivors: BTreeSet<IdTriple>,
    /// `ρ(full)` for the composed retraction `ρ` — the published triples the
    /// component's folds rely on. All of them are in the evaluation index;
    /// deleting one invalidates the folds and forces a re-core.
    support: BTreeSet<IdTriple>,
    /// Set when `full` changed and the cached survivors are meaningless.
    stale: bool,
    /// Set when the last coring slice ran out of budget: `survivors` is a
    /// sound superset of the local core (every applied fold was a genuine
    /// retraction) but may not be minimal. Cleared when a later slice
    /// reaches the fold fixpoint.
    uncored: bool,
}

/// A verbatim dump of one blank component's cached core state — the unit of
/// [`CoreEngineState`]. `blanks` are derivable from `full` (via the
/// dictionary) and are not serialized.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ComponentState {
    /// Every maintained blank triple of the component (cored away or not).
    pub full: Vec<IdTriple>,
    /// The subset of `full` published in the evaluation index.
    pub survivors: Vec<IdTriple>,
    /// The images of `full` under the composed retraction (all of them
    /// published triples the component's folds rely on).
    pub support: Vec<IdTriple>,
    /// Whether the component is published uncored (degraded mode) — this is
    /// exactly the state a durability snapshot must carry so
    /// `is_degraded()` stays honest across a restart.
    pub uncored: bool,
}

/// The complete restorable state of an [`IdCoreEngine`]: the ground side of
/// the published index plus every component's cached core state.
/// [`IdCoreEngine::export_state`] produces it, [`IdCoreEngine::from_state`]
/// reconstructs a bit-identical engine from it *without re-running any core
/// search* — the contract the durability layer's recovery path depends on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreEngineState {
    /// The ground (blank-free) triples of the published evaluation index.
    pub ground: Vec<IdTriple>,
    /// Every blank component's cached state.
    pub components: Vec<ComponentState>,
}

/// An incrementally maintained `core(·)` over id-triples.
///
/// Feed it the maintained closure (RDFS regime) or the asserted store
/// (simple regime) and keep it posted about deltas; [`IdCoreEngine::index`]
/// is then always the core of the maintained set — the evaluation index
/// premise-free queries join against.
#[derive(Clone, Debug, Default)]
pub struct IdCoreEngine {
    /// The published evaluation index: all ground triples plus every
    /// component's survivors.
    eval: IdIndex,
    /// All maintained blank triples (the un-cored blank side).
    blank_full: BTreeSet<IdTriple>,
    components: Vec<Component>,
    /// Predicate id → number of `blank_full` triples using it. A ground
    /// insertion whose predicate no blank triple uses cannot be the image of
    /// any fold and skips the core step entirely.
    blank_pred_refs: BTreeMap<TermId, usize>,
    /// How much search each component-coring call may spend before the
    /// component is published uncored (module's "Degraded mode" section).
    budget_mode: CoreBudgetMode,
    /// Instrumentation handle (`Off` by default: every site reduces to a
    /// relaxed flag load).
    metrics: Metrics,
}

impl IdCoreEngine {
    /// An engine over the empty set.
    pub fn new() -> Self {
        IdCoreEngine::default()
    }

    /// Builds the engine — and with it `core(G)` — from a triple set. This
    /// is the cold path: ground triples stream into the index, blank triples
    /// are partitioned into components and each component is cored locally.
    pub fn from_triples(
        triples: impl IntoIterator<Item = IdTriple>,
        dictionary: &Dictionary,
    ) -> Self {
        IdCoreEngine::from_triples_metered(triples, dictionary, Metrics::default())
    }

    /// [`IdCoreEngine::from_triples`] with the metrics handle attached
    /// before the cold build runs, so the initial coring is observed too.
    pub fn from_triples_metered(
        triples: impl IntoIterator<Item = IdTriple>,
        dictionary: &Dictionary,
        metrics: Metrics,
    ) -> Self {
        IdCoreEngine::from_triples_budgeted(triples, dictionary, metrics, CoreBudgetMode::default())
    }

    /// [`IdCoreEngine::from_triples_metered`] with the budget mode
    /// configured *before* the cold build, so the initial component coring
    /// is already bounded — on adversarial input the first build is exactly
    /// where the NP-hard tail bites, and a budget attached afterwards would
    /// come too late.
    pub fn from_triples_budgeted(
        triples: impl IntoIterator<Item = IdTriple>,
        dictionary: &Dictionary,
        metrics: Metrics,
        budget: CoreBudgetMode,
    ) -> Self {
        let mut engine = IdCoreEngine::new();
        engine.metrics = metrics;
        engine.budget_mode = budget;
        for t in triples {
            if is_blank_triple(dictionary, t) {
                if engine.blank_full.insert(t) {
                    *engine.blank_pred_refs.entry(t.1).or_insert(0) += 1;
                }
            } else {
                engine.eval.insert(t);
            }
        }
        engine.rebuild_components(dictionary);
        let dirty = (0..engine.components.len()).collect();
        engine.refresh(dirty, BTreeSet::new());
        engine.debug_check(dictionary);
        engine
    }

    /// Dumps the engine's state for a durability snapshot. Components are
    /// exported verbatim — full sets, survivor sets, support sets and the
    /// uncored flags — so [`IdCoreEngine::from_state`] can rebuild the
    /// engine without re-running a single retraction search. Safe to call
    /// between public mutations (no component is ever left `stale` then).
    pub fn export_state(&self, dictionary: &Dictionary) -> CoreEngineState {
        CoreEngineState {
            ground: self
                .eval
                .iter()
                .filter(|&t| !is_blank_triple(dictionary, t))
                .collect(),
            components: self
                .components
                .iter()
                .map(|c| ComponentState {
                    full: c.full.iter().copied().collect(),
                    survivors: c.survivors.iter().copied().collect(),
                    support: c.support.iter().copied().collect(),
                    uncored: c.uncored,
                })
                .collect(),
        }
    }

    /// Reconstructs an engine from an exported state: pure deserialization —
    /// the published index is ground triples plus every component's
    /// survivors, cached core state (including degraded/uncored flags)
    /// carries over verbatim, and **no core search runs**. The recovery
    /// path's replacement for [`IdCoreEngine::from_triples_budgeted`].
    pub fn from_state(
        state: &CoreEngineState,
        dictionary: &Dictionary,
        metrics: Metrics,
        budget: CoreBudgetMode,
    ) -> Self {
        let mut engine = IdCoreEngine::new();
        engine.metrics = metrics;
        engine.budget_mode = budget;
        for &t in &state.ground {
            engine.eval.insert(t);
        }
        for comp in &state.components {
            let full: BTreeSet<IdTriple> = comp.full.iter().copied().collect();
            for &t in &full {
                if engine.blank_full.insert(t) {
                    *engine.blank_pred_refs.entry(t.1).or_insert(0) += 1;
                }
            }
            let survivors: BTreeSet<IdTriple> = comp.survivors.iter().copied().collect();
            for &t in &survivors {
                engine.eval.insert(t);
            }
            let blanks = full
                .iter()
                .flat_map(|&(s, _, o)| [s, o])
                .filter(|&id| dictionary.is_blank(id))
                .collect();
            engine.components.push(Component {
                blanks,
                full,
                survivors,
                support: comp.support.iter().copied().collect(),
                stale: false,
                uncored: comp.uncored,
            });
        }
        engine.observe_blank_components();
        engine.publish_degradation();
        engine.debug_check(dictionary);
        engine
    }

    /// Attaches a metrics handle: components re-cored, retraction-search
    /// probes, fold steps, support replays and the largest-blank-component
    /// early warning all report through it.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The metrics handle observing this engine.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The published evaluation index: the core of the maintained set.
    pub fn index(&self) -> &IdIndex {
        &self.eval
    }

    /// Number of triples in the published core.
    pub fn len(&self) -> usize {
        self.eval.len()
    }

    /// Returns `true` if the published core is empty.
    pub fn is_empty(&self) -> bool {
        self.eval.is_empty()
    }

    /// Number of maintained blank triples (before coring).
    pub fn blank_triple_count(&self) -> usize {
        self.blank_full.len()
    }

    /// Number of blank components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The components' sizes in triples, ascending.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.components.iter().map(|c| c.full.len()).collect();
        sizes.sort_unstable();
        sizes
    }

    /// Size in triples of the largest blank component (0 when none) — the
    /// driver of the worst-case core search, observed on every commit.
    pub fn largest_component_size(&self) -> usize {
        self.components
            .iter()
            .map(|c| c.full.len())
            .max()
            .unwrap_or(0)
    }

    /// The configured component-coring budget mode.
    pub fn core_budget(&self) -> CoreBudgetMode {
        self.budget_mode
    }

    /// Reconfigures the budget mode. Takes effect from the next coring
    /// call on; already-published state is untouched (use
    /// [`IdCoreEngine::recore_uncored`] to retry degraded components under
    /// the new mode).
    pub fn set_core_budget(&mut self, mode: CoreBudgetMode) {
        self.budget_mode = mode;
    }

    /// `true` while any component is published uncored (degraded mode).
    /// Independent of the metrics level — degradation is engine state, not
    /// instrumentation.
    pub fn is_degraded(&self) -> bool {
        self.components.iter().any(|c| c.uncored)
    }

    /// Number of components currently published uncored.
    pub fn uncored_components(&self) -> usize {
        self.components.iter().filter(|c| c.uncored).count()
    }

    /// Published (survivor) triples across the uncored components — the
    /// portion of the evaluation index that may be non-minimal.
    pub fn uncored_triples(&self) -> usize {
        self.components
            .iter()
            .filter(|c| c.uncored)
            .map(|c| c.survivors.len())
            .sum()
    }

    /// The quiet-refresh retry of degraded mode: gives every uncored
    /// component a fresh budget slice, resuming from its current survivors
    /// (all folds already applied are genuine retractions, so resuming
    /// loses nothing and converges monotonically). Returns `true` when the
    /// engine left degraded mode entirely — guaranteed when called under
    /// [`CoreBudgetMode::Unlimited`].
    pub fn recore_uncored(&mut self, dictionary: &Dictionary) -> bool {
        let threshold = self.metrics.blank_warn_threshold();
        let mode = self.budget_mode;
        let mut searches = 0u64;
        let mut fold_steps = 0u64;
        let mut recored = 0u64;
        let mut exhausted_slices = 0u64;
        for i in 0..self.components.len() {
            if !self.components[i].uncored {
                continue;
            }
            let mut folds = Vec::new();
            {
                let comp = &mut self.components[i];
                let budget = mode.slice(comp.survivors.len(), threshold);
                let mut current = comp.survivors.clone();
                let composed = fold_to_fixpoint(
                    &mut self.eval,
                    &mut current,
                    &comp.blanks,
                    &mut folds,
                    &mut searches,
                    budget.as_ref(),
                );
                if !folds.is_empty() {
                    comp.survivors = current;
                    comp.support = remap_set(&comp.support, &composed);
                }
                comp.uncored = budget.as_ref().is_some_and(|b| b.is_exhausted());
                if comp.uncored {
                    exhausted_slices += 1;
                }
            }
            recored += 1;
            fold_steps += folds.len() as u64;
            self.replay_folds(&folds, i);
        }
        self.metrics.count(Counter::CoreComponentsRecored, recored);
        self.metrics.count(Counter::CoreFoldSteps, fold_steps);
        self.metrics
            .count(Counter::CoreRetractionSearches, searches);
        self.metrics
            .count(Counter::CoreBudgetExhausted, exhausted_slices);
        self.publish_degradation();
        self.debug_check(dictionary);
        !self.is_degraded()
    }

    /// Mirrors the engine's degradation state into the gauges (no-op with
    /// metrics off; the engine state itself is always exact).
    fn publish_degradation(&self) {
        if self.metrics.on(MetricsLevel::Counters) {
            self.metrics
                .gauge_set(Gauge::UncoredComponents, self.uncored_components() as u64);
            self.metrics
                .gauge_set(Gauge::UncoredTriples, self.uncored_triples() as u64);
        }
    }

    /// Applies one batch of deltas to the maintained set and brings the
    /// published index back to its core.
    ///
    /// A delta that neither mentions a blank nor removes a published triple
    /// nor adds a possible fold image (a predicate some blank triple uses)
    /// is pure index maintenance. Otherwise the blank side is repaired at
    /// component granularity: structurally changed components and components
    /// whose support lost a triple are re-cored from their full sets (which
    /// can *restore* previously folded triples); components that merely
    /// gained potential fold targets continue retracting from their cached
    /// survivors.
    pub fn apply_delta(
        &mut self,
        added: &[IdTriple],
        removed: &[IdTriple],
        dictionary: &Dictionary,
    ) {
        let mut removed_from_eval: BTreeSet<IdTriple> = BTreeSet::new();
        let mut blank_delta_ids: BTreeSet<TermId> = BTreeSet::new();
        let note_blanks = |ids: &mut BTreeSet<TermId>, (s, _, o): IdTriple| {
            for id in [s, o] {
                if dictionary.is_blank(id) {
                    ids.insert(id);
                }
            }
        };
        for &t in removed {
            if is_blank_triple(dictionary, t) {
                if self.blank_full.remove(&t) {
                    note_blanks(&mut blank_delta_ids, t);
                    if let Some(refs) = self.blank_pred_refs.get_mut(&t.1) {
                        *refs -= 1;
                        if *refs == 0 {
                            self.blank_pred_refs.remove(&t.1);
                        }
                    }
                    if self.eval.remove(t) {
                        removed_from_eval.insert(t);
                    }
                }
            } else if self.eval.remove(t) {
                removed_from_eval.insert(t);
            }
        }
        let mut added_preds: BTreeSet<TermId> = BTreeSet::new();
        let mut blank_added: Vec<IdTriple> = Vec::new();
        for &t in added {
            if is_blank_triple(dictionary, t) {
                if self.blank_full.insert(t) {
                    note_blanks(&mut blank_delta_ids, t);
                    blank_added.push(t);
                    *self.blank_pred_refs.entry(t.1).or_insert(0) += 1;
                }
            } else if self.eval.insert(t) {
                added_preds.insert(t.1);
            }
        }
        let relevant_add = added_preds
            .iter()
            .any(|p| self.blank_pred_refs.contains_key(p));
        if blank_delta_ids.is_empty() && removed_from_eval.is_empty() && !relevant_add {
            // The pure ground fast path: the index is already the core. The
            // early-warning gauge is still refreshed — every mutation commit
            // is an observation point, not just the coring ones.
            self.observe_blank_components();
            return;
        }
        if !blank_delta_ids.is_empty() {
            self.update_components(&blank_added, &blank_delta_ids, dictionary);
        }
        let dirty: Vec<usize> = self
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.stale || removed_from_eval.iter().any(|t| c.support.contains(t)))
            .map(|(i, _)| i)
            .collect();
        self.refresh(dirty, added_preds);
        self.debug_check(dictionary);
    }

    /// Is the triple part of the maintained set (cored away or not)? Ground
    /// triples live in the published index, blank triples in the full blank
    /// side.
    pub fn maintains(&self, t: IdTriple) -> bool {
        self.eval.contains(t) || self.blank_full.contains(&t)
    }

    /// Cores `maintained ∪ delta` as a *scoped* diff against the published
    /// index, without mutating the engine — the substrate of transient
    /// premise evaluation: queries over `D + P` run against
    /// `published ∪ overlay.added − overlay.removed`, and dropping the
    /// overlay afterwards leaves the durable state bit-identical.
    ///
    /// `delta` must be additions the engine does not already maintain (the
    /// closure preview under RDFS, the not-yet-asserted premise triples
    /// under simple entailment); the algorithm mirrors the insert half of
    /// [`IdCoreEngine::apply_delta`]. Ground delta triples always survive
    /// (maps fix URIs). Blank delta triples form a blob with every existing
    /// component they transitively share a blank with; the blob is restored
    /// to its full set and re-cored into the diff. Finally, components
    /// whose survivors could fold onto a newly visible triple (matching
    /// predicate) get the chance to retract further — their folded
    /// survivors land in `removed`, the published index keeps them.
    ///
    /// The engine's [`CoreBudgetMode`] governs the overlay's searches too
    /// (a hostile premise must not stall the shared engine): when a slice
    /// runs out the diff is returned as-is — sound, per the module's
    /// "Degraded mode" argument — with [`EvalOverlay::non_minimal`] set.
    pub fn overlay_core(&self, delta: &[IdTriple], dictionary: &Dictionary) -> EvalOverlay {
        let mut searches = 0u64;
        let mut fold_steps = 0u64;
        let mut recored = 0u64;
        let mut exhausted_slices = 0u64;
        let threshold = self.metrics.blank_warn_threshold();
        let mode = self.budget_mode;
        let mut view = OverlayCoreView {
            base: &self.eval,
            diff: EvalOverlay::default(),
        };
        let mut added_preds: BTreeSet<TermId> = BTreeSet::new();
        let mut fresh_blank: BTreeSet<IdTriple> = BTreeSet::new();
        for &t in delta {
            if is_blank_triple(dictionary, t) {
                if !self.blank_full.contains(&t) {
                    fresh_blank.insert(t);
                }
            } else if view.insert(t) {
                added_preds.insert(t.1);
            }
        }
        let mut folds = Vec::new();
        let mut affected: Vec<usize> = Vec::new();
        if !fresh_blank.is_empty() {
            // The blob: the fresh blank triples plus every component they
            // transitively connect to through shared blanks.
            let mut blob_blanks: BTreeSet<TermId> = fresh_blank
                .iter()
                .flat_map(|&(s, _, o)| [s, o])
                .filter(|&id| dictionary.is_blank(id))
                .collect();
            loop {
                let mut grew = false;
                for (i, c) in self.components.iter().enumerate() {
                    if !affected.contains(&i) && c.blanks.iter().any(|b| blob_blanks.contains(b)) {
                        blob_blanks.extend(c.blanks.iter().copied());
                        affected.push(i);
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            let mut current: BTreeSet<IdTriple> = fresh_blank;
            for &i in &affected {
                current.extend(self.components[i].full.iter().copied());
            }
            // Restore the blob's full set into the view (previously folded
            // triples come back until the fresh local search decides their
            // fate), then core it.
            for &t in &current {
                if view.insert(t) {
                    added_preds.insert(t.1);
                }
            }
            let budget = mode.slice(current.len(), threshold);
            fold_to_fixpoint(
                &mut view,
                &mut current,
                &blob_blanks,
                &mut folds,
                &mut searches,
                budget.as_ref(),
            );
            if budget.as_ref().is_some_and(|b| b.is_exhausted()) {
                view.diff.non_minimal = true;
                exhausted_slices += 1;
            }
            recored += 1;
            fold_steps += folds.len() as u64;
        }
        if !added_preds.is_empty() {
            // Progressive pass over the components outside the blob,
            // exactly as in `refresh`: a newly visible triple can be a fold
            // image only for survivors sharing its predicate, and folds
            // only remove, so one sweep reaches the fixpoint. Folded
            // survivors are *published* triples — they land in the diff's
            // removals while the published index keeps them.
            for (i, comp) in self.components.iter().enumerate() {
                if affected.contains(&i) {
                    continue;
                }
                if comp.survivors.iter().all(|t| !added_preds.contains(&t.1)) {
                    continue;
                }
                let before = folds.len();
                let budget = mode.slice(comp.survivors.len(), threshold);
                let mut current = comp.survivors.clone();
                fold_to_fixpoint(
                    &mut view,
                    &mut current,
                    &comp.blanks,
                    &mut folds,
                    &mut searches,
                    budget.as_ref(),
                );
                if budget.as_ref().is_some_and(|b| b.is_exhausted()) {
                    view.diff.non_minimal = true;
                    exhausted_slices += 1;
                }
                if folds.len() > before {
                    recored += 1;
                    fold_steps += (folds.len() - before) as u64;
                }
            }
        }
        // An overlay over an already-degraded engine inherits the
        // non-minimality of the published survivors it layers over.
        if self.is_degraded() {
            view.diff.non_minimal = true;
        }
        self.metrics.count(Counter::CoreComponentsRecored, recored);
        self.metrics.count(Counter::CoreFoldSteps, fold_steps);
        self.metrics
            .count(Counter::CoreRetractionSearches, searches);
        self.metrics
            .count(Counter::CoreBudgetExhausted, exhausted_slices);
        view.diff
    }

    /// Repartitions only the components a blank-structural delta touches.
    ///
    /// A delta triple can merge, split, extend or shrink exactly the
    /// components it shares a blank with: any other component's triples
    /// mention none of the delta's blanks, so its partition cell is
    /// untouched and its cached core state carries over wholesale. The
    /// union-find therefore runs over the *local* triple set only — the
    /// live triples of the dissolved components plus the freshly added
    /// blank triples (a triple mentioning a delta blank either was in a
    /// component owning that blank, or is itself part of the delta) —
    /// instead of the whole blank side (ROADMAP item).
    fn update_components(
        &mut self,
        blank_added: &[IdTriple],
        delta_blanks: &BTreeSet<TermId>,
        dictionary: &Dictionary,
    ) {
        let all = std::mem::take(&mut self.components);
        let (dissolved, kept): (Vec<Component>, Vec<Component>) = all
            .into_iter()
            .partition(|c| c.blanks.iter().any(|b| delta_blanks.contains(b)));
        self.components = kept;
        let mut local: BTreeSet<IdTriple> = dissolved
            .iter()
            .flat_map(|c| c.full.iter().copied())
            .filter(|t| self.blank_full.contains(t))
            .collect();
        local.extend(blank_added.iter().copied());
        partition_and_inherit(&mut self.components, local, dissolved, dictionary);
    }

    /// Recomputes the component partition of `blank_full` from scratch (the
    /// cold-build path; deltas go through
    /// [`IdCoreEngine::update_components`]), inheriting the cached core
    /// state of every component whose full triple set is unchanged and
    /// marking the rest stale.
    fn rebuild_components(&mut self, dictionary: &Dictionary) {
        let old = std::mem::take(&mut self.components);
        partition_and_inherit(
            &mut self.components,
            self.blank_full.iter().copied(),
            old,
            dictionary,
        );
    }

    /// Re-cores the dirty components from their full sets, then gives every
    /// other component whose survivors could fold onto a freshly published
    /// triple the chance to retract further. Every fold map is replayed onto
    /// all components' support sets, keeping them pointed at live triples.
    fn refresh(&mut self, dirty: Vec<usize>, mut added_preds: BTreeSet<TermId>) {
        let t0 = self
            .metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let mut searches = 0u64;
        let mut fold_steps = 0u64;
        let mut recored = dirty.len() as u64;
        let mut exhausted_slices = 0u64;
        let threshold = self.metrics.blank_warn_threshold();
        let mode = self.budget_mode;
        for &i in &dirty {
            let mut folds = Vec::new();
            {
                let comp = &mut self.components[i];
                // Restore the full set: previously folded triples come back
                // until the fresh local core search decides their fate.
                for &t in &comp.full {
                    if self.eval.insert(t) {
                        added_preds.insert(t.1);
                    }
                }
                let budget = mode.slice(comp.full.len(), threshold);
                let mut current = comp.full.clone();
                let composed = fold_to_fixpoint(
                    &mut self.eval,
                    &mut current,
                    &comp.blanks,
                    &mut folds,
                    &mut searches,
                    budget.as_ref(),
                );
                comp.survivors = current;
                comp.support = comp.full.iter().map(|&t| apply_map(&composed, t)).collect();
                comp.stale = false;
                // Out of budget: the survivors so far are published as-is —
                // a sound superset of the local core (see "Degraded mode") —
                // and the component waits for a quiet-refresh retry.
                comp.uncored = budget.as_ref().is_some_and(|b| b.is_exhausted());
                if comp.uncored {
                    exhausted_slices += 1;
                }
            }
            fold_steps += folds.len() as u64;
            self.replay_folds(&folds, i);
        }
        if !added_preds.is_empty() {
            // Progressive pass: a newly published triple can be the image of
            // a fold only for a survivor pattern with the same predicate.
            // Folds only remove triples, so one sweep reaches the fixpoint.
            for i in 0..self.components.len() {
                let comp = &self.components[i];
                if comp.survivors.iter().all(|t| !added_preds.contains(&t.1)) {
                    continue;
                }
                let mut folds = Vec::new();
                {
                    let comp = &mut self.components[i];
                    let budget = mode.slice(comp.survivors.len(), threshold);
                    let mut current = comp.survivors.clone();
                    let composed = fold_to_fixpoint(
                        &mut self.eval,
                        &mut current,
                        &comp.blanks,
                        &mut folds,
                        &mut searches,
                        budget.as_ref(),
                    );
                    if !folds.is_empty() {
                        comp.survivors = current;
                        comp.support = remap_set(&comp.support, &composed);
                    }
                    // Reaching the fold fixpoint from the *current* graph
                    // proves local leanness regardless of history, so an
                    // unexhausted pass clears a stale uncored flag too.
                    comp.uncored = budget.as_ref().is_some_and(|b| b.is_exhausted());
                    if comp.uncored {
                        exhausted_slices += 1;
                    }
                }
                if !folds.is_empty() {
                    recored += 1;
                    fold_steps += folds.len() as u64;
                }
                self.replay_folds(&folds, i);
            }
        }
        self.metrics.count(Counter::CoreComponentsRecored, recored);
        self.metrics.count(Counter::CoreFoldSteps, fold_steps);
        self.metrics
            .count(Counter::CoreRetractionSearches, searches);
        self.metrics
            .count(Counter::CoreBudgetExhausted, exhausted_slices);
        self.observe_blank_components();
        self.publish_degradation();
        if let Some(t0) = t0 {
            self.metrics
                .record(Hist::SpanCoreRefreshNs, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Reports the largest blank component to the early-warning gauge (a
    /// no-op below the counters level).
    fn observe_blank_components(&self) {
        if self.metrics.on(MetricsLevel::Counters) {
            self.metrics
                .observe_largest_blank_component(self.largest_component_size() as u64);
        }
    }

    /// Applies fold maps produced while processing component `origin` to
    /// every other component's support set.
    fn replay_folds(&mut self, folds: &[IdMap], origin: usize) {
        if folds.is_empty() {
            return;
        }
        let mut replays = 0u64;
        for (j, other) in self.components.iter_mut().enumerate() {
            if j == origin {
                continue;
            }
            for map in folds {
                // A fold only moves the origin component's blanks; most
                // support sets never mention them, so probe before paying
                // for a rebuild of the set.
                let touched = other
                    .support
                    .iter()
                    .any(|(s, _, o)| map.contains_key(s) || map.contains_key(o));
                if touched {
                    other.support = remap_set(&other.support, map);
                    replays += 1;
                }
            }
        }
        self.metrics.count(Counter::CoreSupportReplays, replays);
    }

    /// Debug-build invariants: the published index is exactly the ground
    /// triples plus every component's survivors, and all support triples
    /// are live.
    fn debug_check(&self, dictionary: &Dictionary) {
        if cfg!(debug_assertions) {
            let mut expected_blank: BTreeSet<IdTriple> = BTreeSet::new();
            for c in &self.components {
                debug_assert!(c.survivors.is_subset(&c.full));
                debug_assert!(
                    c.support.iter().all(|t| self.eval.contains(*t)),
                    "support names a dead triple"
                );
                expected_blank.extend(c.survivors.iter().copied());
            }
            let published_blank: BTreeSet<IdTriple> = self
                .eval
                .iter()
                .filter(|&t| is_blank_triple(dictionary, t))
                .collect();
            debug_assert_eq!(
                published_blank, expected_blank,
                "published blank triples must be exactly the survivors"
            );
        }
    }
}

fn is_blank_triple(dictionary: &Dictionary, (s, _, o): IdTriple) -> bool {
    dictionary.is_blank(s) || dictionary.is_blank(o)
}

/// Partitions `triples` into blank components and appends the cells to
/// `components` — the shared inheritance protocol of the cold rebuild and
/// the incremental repartition: a cell whose full triple set reappears
/// unchanged among `old` (bucketed by first triple) carries its cached core
/// state over wholesale; every other cell starts stale.
fn partition_and_inherit(
    components: &mut Vec<Component>,
    triples: impl IntoIterator<Item = IdTriple>,
    old: Vec<Component>,
    dictionary: &Dictionary,
) {
    let mut by_first: BTreeMap<IdTriple, Vec<Component>> = BTreeMap::new();
    for c in old {
        if let Some(&first) = c.full.first() {
            by_first.entry(first).or_default().push(c);
        }
    }
    for part in blank_components(triples, |id| dictionary.is_blank(id)) {
        let inherited = part.triples.first().and_then(|first| {
            let bucket = by_first.get_mut(first)?;
            let at = bucket.iter().position(|c| c.full == part.triples)?;
            Some(bucket.swap_remove(at))
        });
        components.push(match inherited {
            Some(c) => Component {
                blanks: part.blanks,
                full: part.triples,
                survivors: c.survivors,
                support: c.support,
                stale: c.stale,
                uncored: c.uncored,
            },
            None => Component {
                blanks: part.blanks,
                full: part.triples,
                survivors: BTreeSet::new(),
                support: BTreeSet::new(),
                stale: true,
                uncored: false,
            },
        });
    }
}

/// Retracts `current` — the component's triples presently in `eval` — to a
/// local fixpoint. Each successful fold map is applied to `eval` (dropping
/// the folded triples), pushed to `folds`, and composed into the returned
/// map. On return without budget exhaustion no triple of `current` can be
/// avoided: the component is locally lean. With an exhausted budget the
/// loop stops early; everything applied so far is still a genuine
/// retraction, so `current` is a sound superset of the local core (the
/// caller checks [`Budget::is_exhausted`] and flags the component).
fn fold_to_fixpoint<T: CoreIndex>(
    eval: &mut T,
    current: &mut BTreeSet<IdTriple>,
    blanks: &BTreeSet<TermId>,
    folds: &mut Vec<IdMap>,
    searches: &mut u64,
    budget: Option<&Budget>,
) -> IdMap {
    let mut composed = IdMap::new();
    while let Some(map) = find_fold(eval, current, blanks, searches, budget) {
        let image: BTreeSet<IdTriple> = current.iter().map(|&t| apply_map(&map, t)).collect();
        for &t in current.iter() {
            if !image.contains(&t) {
                eval.remove(t);
            }
        }
        // Images that still mention the component's blanks are the surviving
        // component triples; the rest (ground triples, other components'
        // triples) are pure support.
        *current = image
            .into_iter()
            .filter(|&(s, _, o)| blanks.contains(&s) || blanks.contains(&o))
            .collect();
        for v in composed.values_mut() {
            if let Some(&w) = map.get(v) {
                *v = w;
            }
        }
        for (&k, &v) in &map {
            composed.entry(k).or_insert(v);
        }
        folds.push(map);
    }
    composed
}

/// Searches for a retraction witness: a map `μ` over the component's blanks
/// with `μ(current) ⊆ eval − {t}` for some `t ∈ current` (Definition 3.7,
/// localized). The patterns are the component's triples with blanks as
/// variables; the target is the published index with the avoided triple
/// masked out, so ground triples and other components' survivors are valid
/// fold images exactly as in the global search.
fn find_fold<T: CoreIndex>(
    eval: &T,
    current: &BTreeSet<IdTriple>,
    blanks: &BTreeSet<TermId>,
    searches: &mut u64,
    budget: Option<&Budget>,
) -> Option<IdMap> {
    if current.is_empty() {
        return None;
    }
    let mut slot_of: BTreeMap<TermId, usize> = BTreeMap::new();
    let mut patterns: Vec<IdTriplePattern> = Vec::with_capacity(current.len());
    {
        let position = |id: TermId, slot_of: &mut BTreeMap<TermId, usize>| {
            if blanks.contains(&id) {
                let next = slot_of.len();
                IdPatternTerm::Var(*slot_of.entry(id).or_insert(next))
            } else {
                IdPatternTerm::Const(id)
            }
        };
        for &(s, p, o) in current.iter() {
            patterns.push(IdTriplePattern {
                subject: position(s, &mut slot_of),
                predicate: IdPatternTerm::Const(p),
                object: position(o, &mut slot_of),
            });
        }
    }
    for &avoid in current.iter() {
        // Exhaustion is sticky: once any solver call trips the budget, the
        // remaining avoid candidates are abandoned too ("unknown", not
        // "lean") and the caller publishes the partial state.
        if budget.is_some_and(|b| b.is_exhausted()) {
            return None;
        }
        *searches += 1;
        let target = Avoiding::new(eval, avoid);
        let mut solver = IdSolver::new(&patterns, slot_of.len(), &target);
        if let Some(b) = budget {
            solver = solver.with_budget(b);
        }
        if let Some(solution) = solver.first_solution() {
            let mut map = IdMap::new();
            for (&blank, &slot) in &slot_of {
                if solution[slot] != blank {
                    map.insert(blank, solution[slot]);
                }
            }
            debug_assert!(!map.is_empty(), "an avoiding map cannot be the identity");
            return Some(map);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, isomorphic, Graph};
    use swdb_store::TripleStore;

    /// Builds an engine over the graph's id-triples, returning the store for
    /// decoding.
    fn engine_of(g: &Graph) -> (TripleStore, IdCoreEngine) {
        let store = TripleStore::from_graph(g);
        let engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        (store, engine)
    }

    fn decode(store: &TripleStore, engine: &IdCoreEngine) -> Graph {
        engine
            .index()
            .iter()
            .map(|t| store.materialize(t))
            .collect()
    }

    fn assert_is_core_of(g: &Graph) {
        let (store, engine) = engine_of(g);
        let decoded = decode(&store, &engine);
        let expected = crate::core(g);
        assert!(
            isomorphic(&decoded, &expected),
            "engine core {decoded} differs from spec core {expected} for {g}"
        );
    }

    #[test]
    fn example_3_8_g1_collapses_to_one_triple() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let (_, engine) = engine_of(&g);
        assert_eq!(engine.len(), 1);
        assert_eq!(engine.component_count(), 2);
        assert_is_core_of(&g);
    }

    #[test]
    fn exported_state_round_trips_bit_identical() {
        // Folded blanks, a surviving blank component, and ground triples.
        let g = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "ex:c"),
            ("ex:b", "ex:q", "ex:c"),
            ("ex:a", "ex:r", "_:Z"),
        ]);
        let (store, engine) = engine_of(&g);
        let state = engine.export_state(store.dictionary());
        let restored = IdCoreEngine::from_state(
            &state,
            store.dictionary(),
            Metrics::default(),
            engine.core_budget(),
        );
        let published: Vec<IdTriple> = engine.index().iter().collect();
        let restored_published: Vec<IdTriple> = restored.index().iter().collect();
        assert_eq!(published, restored_published);
        assert_eq!(engine.blank_triple_count(), restored.blank_triple_count());
        assert_eq!(engine.component_count(), restored.component_count());
        assert_eq!(engine.is_degraded(), restored.is_degraded());
        // The restored engine keeps tracking deltas exactly like the
        // original: remove the ground support of X's fold from both.
        let mut store2 = store.clone();
        let removed = store2
            .remove_with_ids(&swdb_model::triple("ex:b", "ex:q", "ex:c"))
            .expect("present");
        let mut original = engine.clone();
        let mut restored = restored;
        original.apply_delta(&[], &[removed], store2.dictionary());
        restored.apply_delta(&[], &[removed], store2.dictionary());
        let a: Vec<IdTriple> = original.index().iter().collect();
        let b: Vec<IdTriple> = restored.index().iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exported_state_preserves_uncored_flags() {
        // A component big enough that a 0-step budget leaves it uncored.
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "_:Y"),
        ]);
        let store = TripleStore::from_graph(&g);
        let engine = IdCoreEngine::from_triples_budgeted(
            store.iter_ids(),
            store.dictionary(),
            Metrics::default(),
            CoreBudgetMode::Budgeted(CoreBudget::steps(0)),
        );
        assert!(engine.is_degraded(), "a 0-step slice cannot finish coring");
        let state = engine.export_state(store.dictionary());
        assert!(state.components.iter().any(|c| c.uncored));
        let restored = IdCoreEngine::from_state(
            &state,
            store.dictionary(),
            Metrics::default(),
            engine.core_budget(),
        );
        assert!(restored.is_degraded());
        assert_eq!(engine.uncored_components(), restored.uncored_components());
        assert_eq!(engine.uncored_triples(), restored.uncored_triples());
        // recore_uncored resumes post-restore: unlimited budget clears it.
        let mut restored = restored;
        restored.set_core_budget(CoreBudgetMode::Unlimited);
        assert!(restored.recore_uncored(store.dictionary()));
        assert!(!restored.is_degraded());
    }

    #[test]
    fn lean_components_survive_whole() {
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "ex:b"),
            ("_:Y", "ex:r", "ex:b"),
        ]);
        let (_, engine) = engine_of(&g);
        assert_eq!(engine.len(), 4, "Example 3.8 G2 is lean");
        assert_eq!(engine.component_count(), 2);
        assert_is_core_of(&g);
    }

    #[test]
    fn cross_component_folds_are_found() {
        // X's component folds onto Y's component, not onto ground.
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:Y", "ex:q", "ex:b"),
        ]);
        let (store, engine) = engine_of(&g);
        assert_eq!(engine.len(), 2);
        assert_is_core_of(&g);
        let decoded = decode(&store, &engine);
        assert!(decoded.iter().any(|t| t.object().is_blank()));
    }

    #[test]
    fn ground_anchored_folds_are_found() {
        let g = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "ex:c"),
            ("ex:b", "ex:q", "ex:c"),
        ]);
        let (store, engine) = engine_of(&g);
        assert_eq!(engine.len(), 2);
        assert!(decode(&store, &engine).is_ground());
        assert_is_core_of(&g);
    }

    #[test]
    fn ground_delta_is_index_maintenance_until_it_creates_a_fold() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:c")]);
        let (mut store, mut engine) = engine_of(&g);
        assert_eq!(engine.len(), 2, "lean initially");
        // An unrelated ground triple: pure insert.
        let (ids, _) = store.insert_with_ids(&swdb_model::triple("ex:z", "ex:r", "ex:w"));
        engine.apply_delta(&[ids], &[], store.dictionary());
        assert_eq!(engine.len(), 3);
        // Ground triples that give X a ground fold target: (a,p,b), (b,q,c).
        let (b1, _) = store.insert_with_ids(&swdb_model::triple("ex:a", "ex:p", "ex:b"));
        engine.apply_delta(&[b1], &[], store.dictionary());
        assert_eq!(engine.len(), 4, "still lean: b lacks the q-edge");
        let (b2, _) = store.insert_with_ids(&swdb_model::triple("ex:b", "ex:q", "ex:c"));
        engine.apply_delta(&[b2], &[], store.dictionary());
        // Now X folds onto b: the two blank triples leave the core, the
        // three ground triples remain.
        assert_eq!(engine.len(), 3);
        let decoded = decode(&store, &engine);
        assert!(decoded.is_ground());
        assert!(isomorphic(&decoded, &crate::core(&store.to_graph())));
    }

    #[test]
    fn removing_a_support_triple_restores_the_folded_component() {
        let g = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:b", "ex:q", "ex:c"),
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "ex:c"),
        ]);
        let (mut store, mut engine) = engine_of(&g);
        assert_eq!(engine.len(), 2, "X folds onto b");
        // Remove the ground edge the fold relied on: X must come back.
        let removed = store
            .remove_with_ids(&swdb_model::triple("ex:b", "ex:q", "ex:c"))
            .expect("present");
        engine.apply_delta(&[], &[removed], store.dictionary());
        let decoded = decode(&store, &engine);
        assert_eq!(decoded.len(), 3);
        assert!(isomorphic(&decoded, &crate::core(&store.to_graph())));
    }

    #[test]
    fn blank_delta_recores_only_by_merging_components() {
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "ex:b"),
            ("_:Y", "ex:r", "ex:b"),
        ]);
        let (mut store, mut engine) = engine_of(&g);
        assert_eq!(engine.component_count(), 2);
        // A bridging triple merges X's and Y's components.
        let (ids, _) = store.insert_with_ids(&swdb_model::triple("_:X", "ex:s", "_:Y"));
        engine.apply_delta(&[ids], &[], store.dictionary());
        assert_eq!(engine.component_count(), 1);
        assert!(isomorphic(
            &decode(&store, &engine),
            &crate::core(&store.to_graph())
        ));
    }

    #[test]
    fn interleaved_mutations_track_the_spec_core() {
        let mut store = TripleStore::new();
        let mut engine = IdCoreEngine::new();
        let script: Vec<(bool, swdb_model::Triple)> = vec![
            (true, swdb_model::triple("ex:a", "ex:p", "_:X")),
            (true, swdb_model::triple("ex:a", "ex:p", "_:Y")),
            (true, swdb_model::triple("_:Y", "ex:q", "ex:b")),
            (true, swdb_model::triple("ex:a", "ex:p", "ex:c")),
            (true, swdb_model::triple("ex:c", "ex:q", "ex:b")),
            (false, swdb_model::triple("ex:c", "ex:q", "ex:b")),
            (false, swdb_model::triple("_:Y", "ex:q", "ex:b")),
            (true, swdb_model::triple("_:X", "ex:q", "_:X")),
            (false, swdb_model::triple("ex:a", "ex:p", "_:Y")),
        ];
        for (insert, t) in script {
            if insert {
                let (ids, added) = store.insert_with_ids(&t);
                if added {
                    engine.apply_delta(&[ids], &[], store.dictionary());
                }
            } else if let Some(ids) = store.remove_with_ids(&t) {
                engine.apply_delta(&[], &[ids], store.dictionary());
            }
            let decoded: Graph = engine
                .index()
                .iter()
                .map(|ids| store.materialize(ids))
                .collect();
            let expected = crate::core(&store.to_graph());
            assert!(
                isomorphic(&decoded, &expected),
                "after {t}: engine {decoded} vs spec {expected}"
            );
        }
    }

    /// Decodes the published index overlaid with a diff.
    fn decode_overlay(store: &TripleStore, engine: &IdCoreEngine, overlay: &EvalOverlay) -> Graph {
        engine
            .index()
            .iter()
            .filter(|t| !overlay.removed.contains(t))
            .chain(overlay.added.iter())
            .map(|t| store.materialize(t))
            .collect()
    }

    /// The overlaid core must be isomorphic to the spec core of the
    /// combined graph, and computing it must leave the engine untouched.
    fn assert_overlay_is_core_of_union(base: &Graph, delta: &Graph) {
        let mut store = TripleStore::from_graph(base);
        let engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        let published_before = engine.index().clone();
        let ids: Vec<IdTriple> = delta
            .iter()
            .map(|t| {
                let s = store.intern(t.subject());
                let p = store.intern(&swdb_model::Term::Iri(t.predicate().clone()));
                let o = store.intern(t.object());
                (s, p, o)
            })
            .filter(|&t| !engine.maintains(t))
            .collect();
        let overlay = engine.overlay_core(&ids, store.dictionary());
        assert_eq!(
            engine.index(),
            &published_before,
            "overlay_core must not perturb the published index"
        );
        let decoded = decode_overlay(&store, &engine, &overlay);
        let expected = crate::core(&base.union(delta));
        assert!(
            isomorphic(&decoded, &expected),
            "overlaid core {decoded} differs from spec core {expected} for {base} + {delta}"
        );
    }

    #[test]
    fn overlay_core_of_a_ground_delta_is_purely_additive() {
        let base = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:c")]);
        let delta = graph([("ex:z", "ex:r", "ex:w")]);
        assert_overlay_is_core_of_union(&base, &delta);
    }

    #[test]
    fn overlay_ground_delta_can_fold_published_blanks_into_removals() {
        // The delta gives X a ground fold target: both blank triples must be
        // *removed* by the overlay while the engine keeps publishing them.
        let base = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:c")]);
        let delta = graph([("ex:a", "ex:p", "ex:b"), ("ex:b", "ex:q", "ex:c")]);
        let mut store = TripleStore::from_graph(&base);
        let engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        let ids: Vec<IdTriple> = delta
            .iter()
            .map(|t| {
                let s = store.intern(t.subject());
                let p = store.intern(&swdb_model::Term::Iri(t.predicate().clone()));
                let o = store.intern(t.object());
                (s, p, o)
            })
            .collect();
        let overlay = engine.overlay_core(&ids, store.dictionary());
        assert_eq!(overlay.added.len(), 2, "both ground delta triples survive");
        assert_eq!(overlay.removed.len(), 2, "both blank triples fold away");
        assert_eq!(engine.len(), 2, "published index untouched");
        assert_overlay_is_core_of_union(&base, &delta);
    }

    #[test]
    fn overlay_blank_delta_merges_with_existing_components_transiently() {
        // The delta's blank triple bridges into X's component and makes the
        // whole blob redundant against the ground pair.
        let base = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:b", "ex:q", "ex:c"),
            ("ex:a", "ex:p", "_:X"),
        ]);
        let delta = graph([("_:X", "ex:q", "ex:c")]);
        assert_overlay_is_core_of_union(&base, &delta);
        // And a delta that keeps the blob alive (distinguishing edge).
        let delta2 = graph([("_:X", "ex:r", "ex:d")]);
        assert_overlay_is_core_of_union(&base, &delta2);
    }

    #[test]
    fn overlay_with_fresh_blank_components_and_cross_folds() {
        let base = graph([
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "ex:b"),
            ("ex:c", "ex:r", "ex:d"),
        ]);
        // A fresh blank Y that folds onto X's component, plus a triple that
        // makes Y distinguishable — both directions.
        for delta in [
            graph([("ex:a", "ex:p", "_:Y")]),
            graph([("ex:a", "ex:p", "_:Y"), ("_:Y", "ex:q", "ex:b")]),
            graph([("ex:a", "ex:p", "_:Y"), ("_:Y", "ex:s", "ex:e")]),
        ] {
            assert_overlay_is_core_of_union(&base, &delta);
        }
    }

    #[test]
    fn overlay_on_empty_delta_is_empty() {
        let base = graph([("ex:a", "ex:p", "_:X")]);
        let store = TripleStore::from_graph(&base);
        let engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        let overlay = engine.overlay_core(&[], store.dictionary());
        assert!(overlay.is_empty());
    }

    #[test]
    fn incremental_partition_matches_a_fresh_rebuild_under_mutation() {
        // Interleave blank-structural edits and compare the maintained
        // partition against a cold-built engine's after every step.
        let script: Vec<(bool, swdb_model::Triple)> = vec![
            (true, swdb_model::triple("ex:a", "ex:p", "_:A")),
            (true, swdb_model::triple("ex:a", "ex:p", "_:B")),
            (true, swdb_model::triple("_:B", "ex:q", "_:C")),
            (true, swdb_model::triple("_:D", "ex:r", "ex:b")),
            (true, swdb_model::triple("_:A", "ex:s", "_:D")),
            (false, swdb_model::triple("_:A", "ex:s", "_:D")),
            (false, swdb_model::triple("_:B", "ex:q", "_:C")),
            (true, swdb_model::triple("_:C", "ex:t", "_:D")),
            (false, swdb_model::triple("ex:a", "ex:p", "_:A")),
        ];
        let mut store = TripleStore::new();
        let mut engine = IdCoreEngine::new();
        for (insert, t) in script {
            if insert {
                let (ids, added) = store.insert_with_ids(&t);
                if added {
                    engine.apply_delta(&[ids], &[], store.dictionary());
                }
            } else if let Some(ids) = store.remove_with_ids(&t) {
                engine.apply_delta(&[], &[ids], store.dictionary());
            }
            let fresh = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
            assert_eq!(
                engine.component_sizes(),
                fresh.component_sizes(),
                "partition diverged from a fresh rebuild after {t}"
            );
            assert_eq!(engine.component_count(), fresh.component_count());
            let decoded: Graph = engine
                .index()
                .iter()
                .map(|ids| store.materialize(ids))
                .collect();
            assert!(isomorphic(&decoded, &crate::core(&store.to_graph())));
        }
    }

    #[test]
    fn empty_engine_is_empty() {
        let engine = IdCoreEngine::new();
        assert!(engine.is_empty());
        assert_eq!(engine.component_count(), 0);
        assert_eq!(engine.blank_triple_count(), 0);
        assert!(!engine.is_degraded());
        assert_eq!(engine.largest_component_size(), 0);
    }

    #[test]
    fn budgeted_refresh_publishes_sound_superset_and_recovers_when_lifted() {
        // Three redundant blanks: the true core is one triple. A one-step
        // budget cannot even start the first retraction search.
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("ex:a", "ex:p", "_:Z"),
        ]);
        let store = TripleStore::from_graph(&g);
        let mut engine = IdCoreEngine::new();
        engine.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
        let ids: Vec<IdTriple> = store.iter_ids().collect();
        engine.apply_delta(&ids, &[], store.dictionary());
        assert!(engine.is_degraded());
        assert_eq!(engine.uncored_components(), 3);
        assert_eq!(engine.uncored_triples(), 3);
        // Sound degraded state: everything published is maintained (no
        // wrong facts) and nothing of the core was dropped — here nothing
        // was folded at all.
        let decoded = decode(&store, &engine);
        assert_eq!(decoded.len(), 3);
        assert!(decoded.iter().all(|t| g.contains(t)));
        // Retrying under the same starved budget stays degraded.
        assert!(!engine.recore_uncored(store.dictionary()));
        assert!(engine.is_degraded());
        // Lifting the budget re-cores to the true core.
        engine.set_core_budget(CoreBudgetMode::Unlimited);
        assert!(engine.recore_uncored(store.dictionary()));
        assert!(!engine.is_degraded());
        assert_eq!(engine.uncored_components(), 0);
        let decoded = decode(&store, &engine);
        assert!(isomorphic(&decoded, &crate::core(&g)));
    }

    #[test]
    fn auto_mode_is_bit_identical_to_unlimited_on_benign_inputs() {
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:Y", "ex:q", "ex:b"),
            ("ex:c", "ex:r", "ex:d"),
        ]);
        let store = TripleStore::from_graph(&g);
        let auto_engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        assert_eq!(auto_engine.core_budget(), CoreBudgetMode::Auto);
        let mut unlimited = IdCoreEngine::new();
        unlimited.set_core_budget(CoreBudgetMode::Unlimited);
        let ids: Vec<IdTriple> = store.iter_ids().collect();
        unlimited.apply_delta(&ids, &[], store.dictionary());
        assert_eq!(
            auto_engine.index(),
            unlimited.index(),
            "components under the warn threshold never see a budget"
        );
        assert!(!auto_engine.is_degraded());
    }

    #[test]
    fn overlay_core_under_tiny_budget_is_sound_and_flagged() {
        let base = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:b", "ex:q", "ex:c"),
            ("ex:a", "ex:p", "_:X"),
        ]);
        let delta = graph([("_:X", "ex:q", "ex:c")]);
        let mut store = TripleStore::from_graph(&base);
        let mut engine = IdCoreEngine::from_triples(store.iter_ids(), store.dictionary());
        let ids: Vec<IdTriple> = delta
            .iter()
            .map(|t| {
                let s = store.intern(t.subject());
                let p = store.intern(&swdb_model::Term::Iri(t.predicate().clone()));
                let o = store.intern(t.object());
                (s, p, o)
            })
            .collect();
        engine.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
        let starved = engine.overlay_core(&ids, store.dictionary());
        assert!(starved.non_minimal, "exhaustion is reported, not hidden");
        let decoded = decode_overlay(&store, &engine, &starved);
        let union = base.union(&delta);
        assert!(
            decoded.iter().all(|t| union.contains(t)),
            "sound: nothing outside the overlaid set is reported"
        );
        assert!(decoded.len() >= crate::core(&union).len());
        // The same overlay under no budget folds X away and is not flagged.
        engine.set_core_budget(CoreBudgetMode::Unlimited);
        let full = engine.overlay_core(&ids, store.dictionary());
        assert!(!full.non_minimal);
        assert!(isomorphic(
            &decode_overlay(&store, &engine, &full),
            &crate::core(&union)
        ));
    }

    #[test]
    fn budget_mode_env_parsing_covers_the_conventions() {
        // One sequential test owns both env vars (parallel tests in this
        // binary never read them — only `from_env` does).
        let set = |steps: Option<&str>, ms: Option<&str>| {
            match steps {
                Some(v) => std::env::set_var("SWDB_CORE_BUDGET", v),
                None => std::env::remove_var("SWDB_CORE_BUDGET"),
            }
            match ms {
                Some(v) => std::env::set_var("SWDB_CORE_BUDGET_MS", v),
                None => std::env::remove_var("SWDB_CORE_BUDGET_MS"),
            }
            CoreBudgetMode::from_env()
        };
        assert_eq!(set(None, None), CoreBudgetMode::Auto);
        assert_eq!(set(Some("auto"), None), CoreBudgetMode::Auto);
        assert_eq!(set(Some("off"), None), CoreBudgetMode::Unlimited);
        assert_eq!(set(Some("Unlimited"), None), CoreBudgetMode::Unlimited);
        assert_eq!(set(Some("none"), None), CoreBudgetMode::Unlimited);
        assert_eq!(
            set(Some("50000"), None),
            CoreBudgetMode::Budgeted(CoreBudget::steps(50_000))
        );
        assert_eq!(
            set(Some("50000"), Some("250")),
            CoreBudgetMode::Budgeted(CoreBudget {
                steps: Some(50_000),
                millis: Some(250),
            })
        );
        assert_eq!(
            set(None, Some("250")),
            CoreBudgetMode::Budgeted(CoreBudget::millis(250))
        );
        assert_eq!(set(Some("garbage"), None), CoreBudgetMode::Auto);
        set(None, None);
    }
}
