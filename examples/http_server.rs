//! Serving a `SemanticWebDatabase` over HTTP: start the std-only
//! `swdb-server` front end, ingest N-Triples and run queries through raw
//! `TcpStream`s (no client library needed — it is just HTTP/1.1), then
//! shut down gracefully and get the database back.
//!
//! Run with `cargo run --example http_server`.

use std::io::{Read, Write};
use std::net::TcpStream;

use semweb_foundations::core::SemanticWebDatabase;
use semweb_foundations::model::{graph, rdfs};
use semweb_foundations::server::{Server, ServerConfig};

/// One HTTP/1.1 request on a fresh connection; returns the raw response.
fn http(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: example\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn main() {
    // 1. Seed a database and hand it to the server. The server publishes a
    //    first snapshot and serves reads from pinned snapshots — queries
    //    never block ingests.
    let db = SemanticWebDatabase::from_graph(graph([
        ("ex:paints", rdfs::SP, "ex:creates"),
        ("ex:creates", rdfs::DOM, "ex:Artist"),
    ]));
    let server = Server::start(db, ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("serving on http://{addr}");

    // 2. Ingest N-Triples. The response reports the insert count and the
    //    freshly published epoch.
    let ingested = http(
        addr,
        "POST",
        "/ingest",
        "<ex:Picasso> <ex:paints> <ex:Guernica> .\n",
    );
    println!("ingest -> {}", body_of(&ingested).trim());

    // 3. Query. The answer is served from a pinned snapshot; the
    //    `x-swdb-epoch` header says which publication answered.
    let answered = http(
        addr,
        "POST",
        "/query",
        "(?X, ex:creates, ?Y) <- (?X, ex:creates, ?Y)",
    );
    let epoch = answered
        .lines()
        .find_map(|l| l.strip_prefix("x-swdb-epoch: "))
        .unwrap_or("?");
    println!("query (epoch {epoch}) ->");
    for line in body_of(&answered).lines() {
        println!("  {line}");
    }

    // 4. Health and metrics are plain GETs.
    println!(
        "health -> {}",
        body_of(&http(addr, "GET", "/health", "")).trim()
    );

    // 5. Graceful shutdown drains in-flight connections and returns the
    //    database, with every served write applied.
    let db = server.shutdown();
    println!("shut down; the store holds {} asserted triples", db.len());
}
