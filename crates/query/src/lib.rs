//! # swdb-query — the tableau query language
//!
//! Implements §4 and §6 of *Foundations of Semantic Web Databases*:
//!
//! * [`query`] — queries `(H, B, P, C)` with premises and must-bind
//!   constraints (Definition 4.1), including the identity query of Note 4.7;
//! * [`answer`] — matchings against `nf(D + P)`, Skolemization of head
//!   blanks, pre-answers, union- and merge-semantics answers
//!   (Definition 4.3, Propositions 4.5/4.6);
//! * [`premise`] — premise elimination into unions of premise-free queries
//!   (Proposition 5.9, Example 5.10);
//! * [`redundancy`] — redundancy elimination in answers and the polynomial
//!   leanness check for merge semantics (Theorems 6.2/6.3);
//! * [`exec`] — the id-space execution engine: premise-free bodies compiled
//!   to [`swdb_store::TermId`] patterns and joined directly against a
//!   [`swdb_store::IdIndex`], with the string-space evaluator kept as the
//!   executable specification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod exec;
pub mod plan;
pub mod premise;
pub mod query;
pub mod redundancy;
pub mod syntax;

pub use crate::query::{query, Query, QueryError};
pub use answer::{
    answer, answer_against, answer_is_empty, answer_merge, answer_union, combine, matchings,
    matchings_against, pre_answers, pre_answers_against, satisfies_constraints, select,
    single_answer, NormalizedDatabase, Semantics,
};
pub use exec::{
    compile_body, explain_premise_free, head_has_blank_consts, id_answer, id_answer_is_empty,
    id_answer_is_empty_metered, id_answer_metered, id_matchings, id_pre_answers,
    id_pre_answers_metered, CompiledBody, Explain, IdPatternTerm, IdSolver, IdTriplePattern,
    MeteredTarget,
};
pub use plan::{
    expansion_members, planned_answer, planned_answer_is_empty, planned_answer_union,
    planned_explain, planned_explain_union, planned_pre_answers, planned_pre_answers_union,
    planned_union_is_empty, PlanCache, QueryShape, PLAN_CACHE_CAPACITY,
};
pub use premise::{
    answer_union_of_queries, id_answer_union_of_queries, id_pre_answers_of_queries,
    id_union_answer_is_empty, premise_free_expansion,
};
pub use redundancy::{
    answer_is_lean, eliminate_redundancy, merge_answer_is_lean, merge_answer_redundancy,
    MergeRedundancy,
};
pub use syntax::{format_query, parse_query, SyntaxError};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use swdb_model::{Graph, Term, Triple};

    use crate::answer::{answer_merge, answer_union};
    use crate::query::query;

    fn arb_simple_graph(max_triples: usize) -> impl Strategy<Value = Graph> {
        let term = prop_oneof![
            (0u8..5).prop_map(|i| Term::iri(format!("ex:n{i}"))),
            (0u8..3).prop_map(|i| Term::blank(format!("B{i}"))),
        ];
        let pred = (0u8..2).prop_map(|i| swdb_model::Iri::new(format!("ex:p{i}")));
        proptest::collection::vec((term.clone(), pred, term), 0..=max_triples).prop_map(|ts| {
            ts.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn identity_query_union_answer_is_equivalent_to_database(d in arb_simple_graph(6)) {
            let q = crate::query::Query::identity();
            let ans = answer_union(&q, &d);
            prop_assert!(swdb_entailment::equivalent(&ans, &d));
        }

        #[test]
        fn union_answer_entails_merge_answer(d in arb_simple_graph(6)) {
            let q = query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]);
            let union = answer_union(&q, &d);
            let merge = answer_merge(&q, &d);
            prop_assert!(swdb_entailment::entails(&union, &merge));
        }

        #[test]
        fn answers_are_isomorphism_invariant(d in arb_simple_graph(6)) {
            let renamed = swdb_model::rename_blanks_sequentially(&d, "zz");
            let q = query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]);
            let a1 = answer_union(&q, &d);
            let a2 = answer_union(&q, &renamed);
            prop_assert!(swdb_model::isomorphic(&a1, &a2));
        }

        #[test]
        fn answers_are_monotone_in_the_database(d in arb_simple_graph(6)) {
            // D ⊆ D' implies D' ⊨ D, hence ans(q, D') ⊨ ans(q, D)
            // (Proposition 4.5(1)).
            let q = query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]);
            let mut extended = d.clone();
            extended.insert(Triple::new(Term::iri("ex:extra"), swdb_model::Iri::new("ex:p0"), Term::iri("ex:extra2")));
            let strong = answer_union(&q, &extended);
            let weak = answer_union(&q, &d);
            prop_assert!(swdb_entailment::entails(&strong, &weak));
        }

        #[test]
        fn empty_databases_give_empty_answers(_x in 0u8..1) {
            let q = query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]);
            prop_assert!(answer_union(&q, &Graph::new()).is_empty());
            prop_assert!(crate::answer::answer_is_empty(&q, &Graph::new()));
        }

        #[test]
        fn id_space_matchings_equal_string_space_matchings(d in arb_simple_graph(8)) {
            // Engine equivalence over the *same* evaluation graph: the
            // id-space join must enumerate exactly the matchings the
            // string-space solver does, blanks and variable predicates
            // included.
            let store = swdb_store::TripleStore::from_graph(&d);
            let normalized = crate::answer::NormalizedDatabase::assume_normalized(d.clone());
            let queries = [
                query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]),
                query([("?X", "?P", "?Y")], [("?X", "?P", "?Y")]),
                query(
                    [("?X", "ex:p0", "?Z")],
                    [("?X", "ex:p0", "?Y"), ("?Y", "ex:p1", "?Z")],
                ),
                query([("?X", "ex:p0", "?X")], [("?X", "ex:p0", "?X")]),
                query([("ex:n0", "ex:p1", "?Y")], [("ex:n0", "ex:p1", "?Y")]),
            ];
            for q in &queries {
                let mut id = crate::exec::id_matchings(q, store.dictionary(), store.id_index());
                let mut spec = crate::answer::matchings_against(q, &normalized);
                id.sort();
                spec.sort();
                prop_assert_eq!(id, spec);
            }
        }
    }
}
