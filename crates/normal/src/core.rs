//! Cores of RDF graphs (Theorem 3.10).
//!
//! Every RDF graph `G` contains a unique (up to isomorphism) lean subgraph
//! that is an instance of `G`; it is called the *core* of `G` and written
//! `core(G)`. `G ≡ core(G)`, and for simple graphs the core is the unique
//! minimal graph equivalent to `G` (Theorem 3.11). Deciding whether a given
//! graph is (isomorphic to) the core of another is DP-complete
//! (Theorem 3.12(2)).
//!
//! The computation iterates proper retractions: while the current graph is
//! not lean, apply a redundancy-witnessing map and keep the image. The
//! composition of the applied maps witnesses that the result is an instance
//! of the input, and termination is guaranteed because every step strictly
//! decreases the number of triples (or blank nodes).

use swdb_model::{isomorphic, Graph, TermMap};

use crate::lean::{find_non_lean_witness, is_lean};

/// The result of a core computation: the core itself and the retraction map
/// from the original graph onto it.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreComputation {
    /// The core graph (lean, an instance of the input, a subgraph of it).
    pub core: Graph,
    /// The composed retraction `ρ` with `ρ(G) = core`.
    pub retraction: TermMap,
    /// Number of retraction rounds performed.
    pub rounds: usize,
}

/// Computes `core(G)` together with the witnessing retraction.
pub fn core_with_witness(g: &Graph) -> CoreComputation {
    let mut current = g.clone();
    let mut retraction = TermMap::identity();
    let mut rounds = 0usize;
    while let Some(witness) = find_non_lean_witness(&current) {
        current = witness.map.apply_graph(&current);
        retraction = witness.map.compose_after(&retraction);
        rounds += 1;
    }
    CoreComputation {
        core: current,
        retraction,
        rounds,
    }
}

/// Computes the core of a graph.
pub fn core(g: &Graph) -> Graph {
    core_with_witness(g).core
}

/// Decides whether `candidate` is (isomorphic to) `core(g)` — the RDF
/// version of the Core Identification problem (Theorem 3.12(2)).
pub fn is_core_of(candidate: &Graph, g: &Graph) -> bool {
    is_lean(candidate) && isomorphic(candidate, &core(g))
}

/// Returns `true` if the graph equals its own core (i.e. it is lean).
pub fn is_own_core(g: &Graph) -> bool {
    is_lean(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, rdfs, triple};

    #[test]
    fn core_of_example_3_8_g1_is_a_single_triple() {
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let result = core_with_witness(&g1);
        assert_eq!(result.core.len(), 1);
        assert!(is_lean(&result.core));
        // The retraction really maps G1 onto the core.
        assert_eq!(result.retraction.apply_graph(&g1), result.core);
        assert!(result.rounds >= 1);
    }

    #[test]
    fn core_is_a_subgraph_and_an_instance() {
        let g = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "_:Y"),
            ("ex:b", "ex:q", "ex:c"),
        ]);
        let result = core_with_witness(&g);
        assert!(
            result.core.is_subgraph_of(&g),
            "the core is a subgraph of G"
        );
        assert!(is_lean(&result.core));
        // Ground triples always survive.
        assert!(result.core.contains(&triple("ex:a", "ex:p", "ex:b")));
        assert!(result.core.contains(&triple("ex:b", "ex:q", "ex:c")));
    }

    #[test]
    fn core_of_lean_graph_is_itself() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]);
        assert_eq!(core(&g), g);
        assert!(is_own_core(&g));
    }

    #[test]
    fn core_preserves_equivalence() {
        let g = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:Y", "ex:q", "ex:b"),
            ("_:Z", "ex:q", "ex:b"),
        ]);
        let c = core(&g);
        assert!(swdb_entailment::simple_equivalent(&g, &c));
        assert!(c.len() < g.len());
    }

    #[test]
    fn theorem_3_11_core_identification_for_simple_graphs() {
        // G1 ≡ G2 iff core(G1) ≅ core(G2).
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let g2 = graph([("ex:a", "ex:p", "_:Z")]);
        assert!(swdb_entailment::simple_equivalent(&g1, &g2));
        assert!(isomorphic(&core(&g1), &core(&g2)));
        let g3 = graph([("ex:a", "ex:p", "ex:b")]);
        assert!(!swdb_entailment::simple_equivalent(&g1, &g3));
        assert!(!isomorphic(&core(&g1), &core(&g3)));
    }

    #[test]
    fn is_core_of_checks_both_leanness_and_isomorphism() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let single = graph([("ex:a", "ex:p", "_:W")]);
        assert!(is_core_of(&single, &g));
        assert!(!is_core_of(&g, &g), "a non-lean graph is not its own core");
        let wrong = graph([("ex:a", "ex:q", "_:W")]);
        assert!(!is_core_of(&wrong, &g));
    }

    #[test]
    fn blank_chain_collapses_onto_ground_anchor() {
        // (a, p, X), (X, p, Y), (Y, p, b) with also (a, p, b) ... the chain
        // cannot fully collapse (p-paths of length 3 vs 1), so only check the
        // simpler anchored redundancy:
        let g = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:X"),
            ("_:X", "ex:q", "ex:c"),
            ("ex:b", "ex:q", "ex:c"),
        ]);
        let c = core(&g);
        assert_eq!(c.len(), 2, "X collapses onto b, got {c}");
        assert!(c.is_ground());
    }

    #[test]
    fn core_with_rdfs_vocabulary_is_still_syntactic() {
        // The core operation ignores vocabulary semantics: Example 3.17 notes
        // that even cores of equivalent RDFS graphs can differ.
        let g = graph([
            ("ex:a", rdfs::SC, "ex:b"),
            ("ex:b", rdfs::SC, "_:N"),
            ("_:N", rdfs::SC, "ex:c"),
            ("ex:b", rdfs::SC, "ex:c"),
        ]);
        let c = core(&g);
        assert!(is_lean(&c));
        assert!(c.is_subgraph_of(&g));
    }

    #[test]
    fn rounds_are_bounded_by_blank_count() {
        let g = graph([
            ("ex:a", "ex:p", "_:B0"),
            ("ex:a", "ex:p", "_:B1"),
            ("ex:a", "ex:p", "_:B2"),
            ("ex:a", "ex:p", "_:B3"),
        ]);
        let result = core_with_witness(&g);
        assert_eq!(result.core.len(), 1);
        assert!(result.rounds <= 4);
    }
}
