//! Minimal representations (Definition 3.13, Examples 3.14/3.15,
//! Theorem 3.16).
//!
//! A *minimal representation* of `G` is a minimal (with respect to number of
//! triples) graph equivalent to `G` and contained in `G`. For simple graphs
//! the core plays this role uniquely; with RDFS vocabulary the transitivity
//! of `sc`/`sp` makes minimal representations non-unique in general
//! (Example 3.14), and even acyclicity is not enough when reserved vocabulary
//! occurs in subject/object positions (Example 3.15). Theorem 3.16
//! identifies the well-behaved class: acyclic `sc`/`sp` and no reserved
//! vocabulary in subject or object position.

use std::collections::BTreeMap;

use swdb_model::{isomorphic, rdfs, Graph, Term, Triple};

/// Returns `true` if removing `t` from `g` preserves equivalence, i.e. `t` is
/// derivable from the remaining triples.
pub fn is_redundant_in(g: &Graph, t: &Triple) -> bool {
    let mut without = g.clone();
    without.remove(t);
    // g ⊨ without holds trivially (subset); equivalence needs without ⊨ g,
    // and since only t is missing it suffices that without ⊨ {t} — but note
    // t may share blank nodes with `without`, in which case treating it in
    // isolation would be too weak. Checking entailment of the whole graph is
    // always correct.
    swdb_entailment::entails(&without, g)
}

/// Greedy minimal representation: repeatedly drop redundant triples, scanning
/// in the graph's deterministic order, until no triple is redundant. The
/// result is contained in `g`, equivalent to `g`, and minimal *among the
/// subsets reachable by single-triple removals*; for the class of
/// Theorem 3.16 it is **the** unique minimal representation.
pub fn minimal_representation(g: &Graph) -> Graph {
    minimal_representation_with_preference(g, |_| 0)
}

/// Greedy minimal representation with a caller-supplied priority: triples
/// with smaller priority values are tried for removal first. Used to exhibit
/// the non-uniqueness of Examples 3.14/3.15 by steering which of two mutually
/// redundant triples is dropped.
pub fn minimal_representation_with_preference(
    g: &Graph,
    priority: impl Fn(&Triple) -> usize,
) -> Graph {
    let mut current = g.clone();
    loop {
        let mut candidates: Vec<Triple> = current.iter().cloned().collect();
        candidates.sort_by_key(|t| priority(t));
        let mut removed = false;
        for t in candidates {
            if is_redundant_in(&current, &t) {
                current.remove(&t);
                removed = true;
                break;
            }
        }
        if !removed {
            return current;
        }
    }
}

/// Collects the distinct (up to isomorphism) minimal representations that are
/// reachable by choosing each triple of `g` as the first removal preference.
/// For graphs in the class of Theorem 3.16 this always returns exactly one
/// graph; Examples 3.14 and 3.15 produce two.
pub fn distinct_minimal_representations(g: &Graph, limit: usize) -> Vec<Graph> {
    let mut found: Vec<Graph> = Vec::new();
    let triples: Vec<Triple> = g.iter().cloned().collect();
    let preferences: Vec<Option<Triple>> = std::iter::once(None)
        .chain(triples.into_iter().map(Some))
        .collect();
    for preferred in preferences {
        let result = match &preferred {
            None => minimal_representation(g),
            Some(first) => {
                minimal_representation_with_preference(g, |t| if t == first { 0 } else { 1 })
            }
        };
        if !found.iter().any(|existing| isomorphic(existing, &result)) {
            found.push(result);
            if found.len() >= limit {
                break;
            }
        }
    }
    found
}

/// Checks the precondition of Theorem 3.16: the graph has no reserved
/// vocabulary in subject or object position and its `sc` and `sp` relations
/// are acyclic.
pub fn has_unique_minimal_representation(g: &Graph) -> bool {
    !reserved_vocabulary_in_node_position(g)
        && relation_is_acyclic(g, &rdfs::sc())
        && relation_is_acyclic(g, &rdfs::sp())
}

/// Returns `true` if some triple uses `sp`, `sc`, `type`, `dom` or `range`
/// in subject or object position.
pub fn reserved_vocabulary_in_node_position(g: &Graph) -> bool {
    g.iter().any(|t| {
        t.node_terms()
            .any(|term| matches!(term, Term::Iri(iri) if rdfs::is_reserved(iri)))
    })
}

/// Returns `true` if the binary relation encoded by `predicate` has no
/// directed cycle (ignoring reflexive triples `(a, p, a)`, which the proof of
/// Theorem 3.16 handles separately).
pub fn relation_is_acyclic(g: &Graph, predicate: &swdb_model::Iri) -> bool {
    let mut nodes: BTreeMap<Term, usize> = BTreeMap::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for t in g.triples_with_predicate(predicate) {
        if t.subject() == t.object() {
            continue;
        }
        let n = nodes.len();
        let u = *nodes.entry(t.subject().clone()).or_insert(n);
        let n = nodes.len();
        let v = *nodes.entry(t.object().clone()).or_insert(n);
        edges.push((u, v));
    }
    // Kahn's algorithm.
    let node_count = nodes.len();
    let mut in_deg = vec![0usize; node_count];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); node_count];
    for &(u, v) in &edges {
        in_deg[v] += 1;
        succ[u].push(v);
    }
    let mut queue: Vec<usize> = (0..node_count).filter(|&v| in_deg[v] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &w in &succ[v] {
            in_deg[w] -= 1;
            if in_deg[w] == 0 {
                queue.push(w);
            }
        }
    }
    seen == node_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, triple};

    #[test]
    fn example_3_14_two_minimal_representations() {
        // a has two sp-parents b and c which are mutually sp-related, so the
        // transitive reduction is not unique.
        let g = graph([
            ("ex:b", rdfs::SP, "ex:a"),
            ("ex:c", rdfs::SP, "ex:a"),
            ("ex:b", rdfs::SP, "ex:c"),
            ("ex:c", rdfs::SP, "ex:b"),
        ]);
        assert!(
            !has_unique_minimal_representation(&g),
            "the sp relation is cyclic"
        );
        let reprs = distinct_minimal_representations(&g, 8);
        assert!(
            reprs.len() >= 2,
            "Example 3.14 must exhibit at least two non-isomorphic minimal representations, got {}",
            reprs.len()
        );
        for r in &reprs {
            assert!(swdb_entailment::equivalent(r, &g));
            assert!(r.is_subgraph_of(&g));
        }
    }

    #[test]
    fn example_3_15_acyclic_but_reserved_vocabulary_in_node_position() {
        let g = graph([
            ("ex:a", rdfs::SC, "ex:b"),
            (rdfs::TYPE, rdfs::DOM, "ex:a"),
            ("ex:x", rdfs::TYPE, "ex:a"),
            ("ex:x", rdfs::TYPE, "ex:b"),
        ]);
        assert!(reserved_vocabulary_in_node_position(&g));
        assert!(!has_unique_minimal_representation(&g));
        let reprs = distinct_minimal_representations(&g, 8);
        assert!(
            reprs.len() >= 2,
            "Example 3.15 has two non-isomorphic minimal representations, got {}",
            reprs.len()
        );
        // They are exactly G1 and G2 of the example (one keeps (x, type, a),
        // the other keeps (x, type, b)).
        for r in &reprs {
            assert_eq!(r.len(), 3);
            assert!(swdb_entailment::equivalent(r, &g));
        }
    }

    #[test]
    fn theorem_3_16_unique_minimal_representation_for_acyclic_schema() {
        // A transitive "diamond with shortcut": the shortcut is the only
        // redundant triple, whichever order we try.
        let g = graph([
            ("ex:A", rdfs::SC, "ex:B"),
            ("ex:B", rdfs::SC, "ex:C"),
            ("ex:A", rdfs::SC, "ex:C"),
            ("ex:x", rdfs::TYPE, "ex:A"),
        ]);
        assert!(has_unique_minimal_representation(&g));
        let reprs = distinct_minimal_representations(&g, 8);
        assert_eq!(reprs.len(), 1, "Theorem 3.16 guarantees uniqueness");
        let minimal = &reprs[0];
        assert_eq!(minimal.len(), 3);
        assert!(!minimal.contains(&triple("ex:A", rdfs::SC, "ex:C")));
    }

    #[test]
    fn minimal_representation_keeps_underivable_triples() {
        let g = graph([
            ("ex:p", rdfs::DOM, "ex:C"),
            ("ex:p", rdfs::RANGE, "ex:D"),
            ("ex:s", "ex:p", "ex:o"),
        ]);
        // dom/range triples are never derivable; nothing can be dropped
        // except the type triples they would generate (not present here).
        let m = minimal_representation(&g);
        assert_eq!(m, g);
    }

    #[test]
    fn derived_type_triples_are_dropped() {
        let g = graph([
            ("ex:p", rdfs::DOM, "ex:C"),
            ("ex:s", "ex:p", "ex:o"),
            ("ex:s", rdfs::TYPE, "ex:C"), // derivable via rule (6)
        ]);
        let m = minimal_representation(&g);
        assert_eq!(m.len(), 2);
        assert!(!m.contains(&triple("ex:s", rdfs::TYPE, "ex:C")));
        assert!(swdb_entailment::equivalent(&m, &g));
    }

    #[test]
    fn redundancy_detection_matches_entailment() {
        let g = graph([
            ("ex:A", rdfs::SC, "ex:B"),
            ("ex:B", rdfs::SC, "ex:C"),
            ("ex:A", rdfs::SC, "ex:C"),
        ]);
        assert!(is_redundant_in(&g, &triple("ex:A", rdfs::SC, "ex:C")));
        assert!(!is_redundant_in(&g, &triple("ex:A", rdfs::SC, "ex:B")));
        assert!(!is_redundant_in(&g, &triple("ex:B", rdfs::SC, "ex:C")));
    }

    #[test]
    fn acyclicity_checks() {
        let acyclic = graph([("ex:A", rdfs::SC, "ex:B"), ("ex:B", rdfs::SC, "ex:C")]);
        assert!(relation_is_acyclic(&acyclic, &rdfs::sc()));
        let cyclic = graph([("ex:A", rdfs::SC, "ex:B"), ("ex:B", rdfs::SC, "ex:A")]);
        assert!(!relation_is_acyclic(&cyclic, &rdfs::sc()));
        // Reflexive triples do not count as cycles for this check.
        let reflexive = graph([("ex:A", rdfs::SC, "ex:A")]);
        assert!(relation_is_acyclic(&reflexive, &rdfs::sc()));
    }

    #[test]
    fn simple_graphs_reduce_to_their_core() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let m = minimal_representation(&g);
        assert_eq!(m.len(), 1);
        assert!(swdb_model::isomorphic(&m, &crate::core::core(&g)));
    }
}
