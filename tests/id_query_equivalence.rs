//! Equivalence property tests for the id-space read path: on seeded random
//! databases (with blank redundancy injected, so `nf(D)` is a proper
//! subgraph of `cl(D)` and the core step is actually exercised), the
//! facade's default id-space answers must agree with the recomputing
//! string-space specification — under both entailment regimes and both
//! answer semantics, across mutations that invalidate the evaluation cache.

use semweb_foundations::core::{EntailmentRegime, SemanticWebDatabase, Semantics};
use semweb_foundations::hom::{pattern_graph, Variable};
use semweb_foundations::model::{graph, isomorphic, rdfs, triple, Graph};
use semweb_foundations::query::{query, Query};
use semweb_foundations::workloads::{
    inject_blank_redundancy, schema_graph, simple_graph, SchemaGraphConfig, SimpleGraphConfig,
};

/// A pool covering the pattern shapes the engine dispatches on: single
/// patterns, joins, variable predicates, repeated variables, ground
/// constants (interned and never-interned), must-bind constraints, head
/// blanks (Skolemization), and RDFS vocabulary in the body.
fn query_pool() -> Vec<Query> {
    vec![
        query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]),
        query(
            [("?X", "ex:p0", "?Z")],
            [("?X", "ex:p0", "?Y"), ("?Y", "ex:p1", "?Z")],
        ),
        query([("?X", "?P", "?Y")], [("?X", "?P", "?Y")]),
        query([("ex:n0", "ex:related", "?Y")], [("ex:n0", "?P", "?Y")]),
        query([("?X", "ex:p0", "?X")], [("?X", "ex:p0", "?X")]),
        query(
            [("?X", "ex:neverInterned", "?Y")],
            [("?X", "ex:neverInterned", "?Y")],
        ),
        query([("?X", rdfs::TYPE, "?C")], [("?X", rdfs::TYPE, "?C")]),
        Query::with_constraints(
            pattern_graph([("?X", "ex:p0", "?Y")]),
            pattern_graph([("?X", "ex:p0", "?Y")]),
            [Variable::new("X"), Variable::new("Y")],
        )
        .expect("well formed"),
        Query::new(
            pattern_graph([("?X", "ex:witnessed", "_:W")]),
            pattern_graph([("?X", "ex:p0", "?Y")]),
        )
        .expect("well formed"),
    ]
}

fn random_database(seed: u64) -> Graph {
    let base = if seed.is_multiple_of(2) {
        simple_graph(
            &SimpleGraphConfig {
                triples: 24,
                uri_nodes: 10,
                blank_nodes: 4,
                predicates: 3,
                blank_probability: 0.25,
            },
            seed,
        )
    } else {
        schema_graph(
            &SchemaGraphConfig {
                classes: 5,
                properties: 3,
                edge_probability: 0.3,
                instances: 8,
                data_triples: 10,
            },
            seed,
        )
    };
    inject_blank_redundancy(&base, 5, seed.wrapping_add(17))
}

fn assert_id_path_matches_spec(db: &mut SemanticWebDatabase, seed: u64, context: &str) {
    for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
        db.set_regime(regime);
        for q in &query_pool() {
            let id_union = db.answer(q, Semantics::Union);
            let spec_union = db.answer_recomputed(q, Semantics::Union);
            // The two paths core the evaluation graph independently (the
            // incremental engine vs the recomputing pipeline); the core is
            // unique up to isomorphism, so answers exposing blank nodes may
            // differ in which representative survived.
            assert!(
                isomorphic(&id_union, &spec_union),
                "seed {seed} ({context}), {regime:?}: union answers diverged for {q}: {id_union} vs {spec_union}"
            );
            // Merge renames blank nodes apart in single-answer order, which
            // the two engines enumerate differently; the answers are equal
            // up to blank renaming.
            let id_merge = db.answer(q, Semantics::Merge);
            let spec_merge = db.answer_recomputed(q, Semantics::Merge);
            assert!(
                isomorphic(&id_merge, &spec_merge),
                "seed {seed} ({context}), {regime:?}: merge answers diverged for {q}: {id_merge} vs {spec_merge}"
            );
            assert_eq!(
                db.answer_is_empty(q),
                spec_union.is_empty() && db.pre_answers(q).is_empty(),
                "seed {seed} ({context}), {regime:?}: emptiness diverged for {q}"
            );
        }
    }
    db.set_regime(EntailmentRegime::Rdfs);
}

/// Premise queries covering both id mechanisms: ground simple premises
/// (expansion path under the simple regime), RDFS-vocabulary premises
/// (overlay with closure preview), blank-bearing premises (overlay in both
/// regimes; capture-prone label `_:B0` deliberately collides with the
/// generators' blank labels), and a premise that is entirely already
/// asserted (empty overlay).
fn premise_query_pool(seed: u64) -> Vec<Query> {
    let fresh = format!("ex:prem{seed}");
    let data_premise = graph([
        (fresh.as_str(), "ex:p0", "ex:n0"),
        ("ex:n0", "ex:p1", fresh.as_str()),
    ]);
    vec![
        Query::with_premise(
            pattern_graph([("?X", "ex:p0", "?Y")]),
            pattern_graph([("?X", "ex:p0", "?Y")]),
            data_premise.clone(),
        )
        .expect("well formed"),
        Query::with_premise(
            pattern_graph([("?X", "ex:p0", "?Z")]),
            pattern_graph([("?X", "ex:p0", "?Y"), ("?Y", "ex:p1", "?Z")]),
            data_premise,
        )
        .expect("well formed"),
        Query::with_premise(
            pattern_graph([("?X", rdfs::TYPE, "?C")]),
            pattern_graph([("?X", rdfs::TYPE, "?C")]),
            graph([
                ("ex:p0", rdfs::DOM, "ex:Origin"),
                ("ex:p1", rdfs::SP, "ex:p0"),
            ]),
        )
        .expect("well formed"),
        Query::with_premise(
            pattern_graph([("?X", "ex:p1", "?Y")]),
            pattern_graph([("?X", "ex:p1", "?Y")]),
            graph([("_:B0", "ex:p1", "ex:n1"), ("ex:n1", "ex:p1", "_:B0")]),
        )
        .expect("well formed"),
        Query::with_premise(
            pattern_graph([("?X", "ex:p0", "?Y")]),
            pattern_graph([("?X", "ex:p0", "?Y")]),
            graph([("ex:n0", "ex:p0", "ex:n1")]),
        )
        .expect("well formed"),
    ]
}

fn assert_premise_paths_match_spec(db: &mut SemanticWebDatabase, seed: u64, context: &str) {
    for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
        db.set_regime(regime);
        let eval_before = db.evaluation_graph();
        for q in &premise_query_pool(seed) {
            for semantics in [Semantics::Union, Semantics::Merge] {
                let id = db.answer(q, semantics);
                let spec = db.answer_recomputed(q, semantics);
                assert!(
                    isomorphic(&id, &spec),
                    "seed {seed} ({context}), {regime:?}/{semantics:?}: premise answers \
                     diverged for {q}: {id} vs {spec}"
                );
            }
            assert_eq!(
                db.answer_is_empty(q),
                db.answer_recomputed(q, Semantics::Union).is_empty(),
                "seed {seed} ({context}), {regime:?}: premise emptiness diverged for {q}"
            );
        }
        // Acceptance bar: overlaid premise queries leave the published
        // evaluation graph bit-identical (not merely isomorphic).
        assert_eq!(
            db.evaluation_graph(),
            eval_before,
            "seed {seed} ({context}), {regime:?}: premise queries perturbed the evaluation graph"
        );
    }
    db.set_regime(EntailmentRegime::Rdfs);
}

#[test]
fn premise_query_paths_equal_the_string_space_spec_on_random_databases() {
    for seed in 0..8u64 {
        let mut db = SemanticWebDatabase::from_graph(random_database(seed));
        assert_premise_paths_match_spec(&mut db, seed, "fresh load");
    }
}

#[test]
fn premise_query_paths_track_mutations() {
    for seed in 0..3u64 {
        let mut db = SemanticWebDatabase::from_graph(random_database(seed));
        // Warm both the evaluation cache and a premise overlay, then
        // mutate: overlays must be invalidated and recomputed against the
        // new engine state.
        let warm = &premise_query_pool(seed)[2];
        let _ = db.answer_union(warm);
        db.insert(triple("ex:n0", "ex:p0", "ex:fresh"));
        db.insert(triple("ex:p1", rdfs::SP, "ex:p2"));
        assert_premise_paths_match_spec(&mut db, seed, "after inserts");
        db.remove(&triple("ex:p1", rdfs::SP, "ex:p2"));
        db.insert(triple("ex:n1", "ex:p0", "_:Fresh"));
        assert_premise_paths_match_spec(&mut db, seed, "after mixed edits");
    }
}

#[test]
fn id_space_answers_equal_string_space_answers_on_random_databases() {
    for seed in 0..8u64 {
        let mut db = SemanticWebDatabase::from_graph(random_database(seed));
        assert_id_path_matches_spec(&mut db, seed, "fresh load");
    }
}

#[test]
fn id_space_answers_track_mutations_through_the_evaluation_cache() {
    for seed in 0..4u64 {
        let mut db = SemanticWebDatabase::from_graph(random_database(seed));
        // Warm the cache, then mutate: the rebuilt evaluation index must
        // reflect every edit, including ones that change the closure.
        let warmup = query([("?X", "ex:p0", "?Y")], [("?X", "ex:p0", "?Y")]);
        let _ = db.answer_union(&warmup);
        db.insert(triple("ex:n0", "ex:p0", "ex:fresh"));
        db.insert(triple("ex:p0", rdfs::SP, "ex:p1"));
        assert_id_path_matches_spec(&mut db, seed, "after inserts");
        db.remove(&triple("ex:p0", rdfs::SP, "ex:p1"));
        db.remove(&triple("ex:n0", "ex:p0", "ex:fresh"));
        assert_id_path_matches_spec(&mut db, seed, "after removals");
    }
}

#[test]
fn batched_graph_load_answers_like_incremental_loads() {
    let g = random_database(3);
    let mut batched = SemanticWebDatabase::new();
    batched.insert_graph(&g);
    let mut incremental = SemanticWebDatabase::new();
    for t in g.iter() {
        incremental.insert(t.clone());
    }
    assert_eq!(batched.closure(), incremental.closure());
    for q in &query_pool() {
        let b = batched.answer_union(q);
        let i = incremental.answer_union(q);
        assert!(
            isomorphic(&b, &i),
            "batched and incremental loads must answer identically for {q}: {b} vs {i}"
        );
    }
}

#[test]
fn evaluation_graph_is_isomorphic_to_the_recomputed_normal_form() {
    // The maintained evaluation graph must stay (isomorphic to) the
    // paper-defined one — `nf(D) = core(cl(D))` under RDFS, `core(D)` under
    // simple entailment — through warm-cache mutations in both regimes.
    use semweb_foundations::normal::{core, is_lean};
    for seed in 0..4u64 {
        for regime in [EntailmentRegime::Rdfs, EntailmentRegime::Simple] {
            let mut db = SemanticWebDatabase::from_graph(random_database(seed));
            db.set_regime(regime);
            let expected = |db: &SemanticWebDatabase| match regime {
                EntailmentRegime::Rdfs => core(&db.closure_recomputed()),
                EntailmentRegime::Simple => core(db.graph()),
            };
            let fresh = db.evaluation_graph();
            assert!(
                is_lean(&fresh),
                "seed {seed} {regime:?}: eval graph not lean"
            );
            assert!(
                isomorphic(&fresh, &expected(&db)),
                "seed {seed} {regime:?}: cold evaluation graph diverged"
            );
            // Warm mutations: the engine absorbs deltas instead of being
            // rebuilt — ground, schema-cascading, and blank-touching ones.
            let edits = [
                triple("ex:n0", "ex:p0", "ex:fresh"),
                triple("ex:p0", rdfs::SP, "ex:p1"),
                triple("ex:n1", "ex:p0", "_:Redundant"),
            ];
            for t in &edits {
                db.insert(t.clone());
                assert!(
                    isomorphic(&db.evaluation_graph(), &expected(&db)),
                    "seed {seed} {regime:?}: evaluation graph diverged after inserting {t}"
                );
            }
            for t in edits.iter().rev() {
                db.remove(t);
                assert!(
                    isomorphic(&db.evaluation_graph(), &expected(&db)),
                    "seed {seed} {regime:?}: evaluation graph diverged after removing {t}"
                );
            }
        }
    }
}
