//! In-tree shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the API surface the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, tuple and integer-range strategies,
//! [`collection::vec`], the `prop_oneof!` union macro, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` test macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! (seeded per case index, so failures are reproducible), and a failing
//! `prop_assert*` reports the case number and message. A failing case is
//! **shrunk** before reporting: generation produces a [`Shrinkable`] — a
//! value paired with a lazy tree of simpler candidates, this shim's
//! stand-in for the real crate's value trees — and the runner greedily
//! accepts the first candidate that still fails, repeating until no
//! candidate fails (or a fixed budget runs out), minimizing each test
//! argument independently. Integer ranges shrink by halving toward the
//! range start and `collection::vec` by element dropping plus
//! element-wise shrinking; because candidates are built compositionally
//! rather than by inverting failing values, shrinking also flows
//! *through* `prop_map` (the source shrinks and the mapping is
//! re-applied, so candidates stay in the mapped strategy's image) and
//! `prop_oneof!` (the branch that produced the failure shrinks). The
//! module layout mirrors `proptest 1.x` so the shim can be swapped for
//! the real crate without touching any caller.
//!
//! [`Shrinkable`]: strategy::Shrinkable

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::{Shrinkable, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Smallest admissible length.
        pub min: usize,
        /// Largest admissible length.
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Caps on the candidate lists [`VecStrategy::shrink`] proposes, so one
    /// shrink round stays cheap even for long vectors.
    const MAX_DROP_CANDIDATES: usize = 24;
    const MAX_ELEMENT_CANDIDATES: usize = 24;

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + 'static,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.rng.gen_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Structural shrink first — halving the length, then dropping each
        /// element in turn (never below the size range's minimum) — followed
        /// by element-wise shrinking through the element strategy. Candidate
        /// counts are capped so a shrink round stays cheap.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            let len = value.len();
            if len > self.size.min {
                let half = (len / 2).max(self.size.min);
                if half < len {
                    out.push(value[..half].to_vec());
                }
                for at in 0..len.min(MAX_DROP_CANDIDATES) {
                    let mut shorter = value.clone();
                    shorter.remove(at);
                    out.push(shorter);
                }
            }
            let mut element_candidates = 0;
            for at in 0..len {
                if element_candidates >= MAX_ELEMENT_CANDIDATES {
                    break;
                }
                for candidate in self.element.shrink(&value[at]).into_iter().take(2) {
                    let mut simpler = value.clone();
                    simpler[at] = candidate;
                    out.push(simpler);
                    element_candidates += 1;
                }
            }
            out
        }

        /// The same structural-then-element-wise candidates as [`shrink`],
        /// but built over the elements' own [`Shrinkable`]s, so vectors of
        /// mapped or union elements shrink through to their sources.
        ///
        /// [`shrink`]: Strategy::shrink
        fn generate_shrinkable(&self, rng: &mut TestRng) -> Shrinkable<Self::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.rng.gen_range(self.size.min..self.size.max + 1)
            };
            let elements: Vec<Shrinkable<S::Value>> = (0..len)
                .map(|_| self.element.generate_shrinkable(rng))
                .collect();
            rebuild(elements, self.size.min)
        }
    }

    /// Reassembles a vector `Shrinkable` from per-element `Shrinkable`s;
    /// every candidate recurses so shrinking can continue from it.
    fn rebuild<T: Clone + 'static>(elements: Vec<Shrinkable<T>>, min: usize) -> Shrinkable<Vec<T>> {
        let value: Vec<T> = elements.iter().map(|e| e.value().clone()).collect();
        Shrinkable::new(value, move || {
            let mut out = Vec::new();
            let len = elements.len();
            if len > min {
                let half = (len / 2).max(min);
                if half < len {
                    out.push(rebuild(elements[..half].to_vec(), min));
                }
                for at in 0..len.min(MAX_DROP_CANDIDATES) {
                    let mut shorter = elements.clone();
                    shorter.remove(at);
                    out.push(rebuild(shorter, min));
                }
            }
            let mut element_candidates = 0;
            for at in 0..len {
                if element_candidates >= MAX_ELEMENT_CANDIDATES {
                    break;
                }
                for candidate in elements[at].shrink().into_iter().take(2) {
                    let mut simpler = elements.clone();
                    simpler[at] = candidate;
                    out.push(rebuild(simpler, min));
                    element_candidates += 1;
                }
            }
            out
        })
    }

    /// Creates a strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Pins a test closure's argument type to the generated value tuple so the
/// closure body type-checks before its first call (closure parameter
/// inference does not flow backwards from later call sites). Internal
/// plumbing for `proptest!`.
#[doc(hidden)]
pub fn __constrain<T, F: Fn(&T) -> Result<(), String>>(_witness: &T, run: F) -> F {
    run
}

/// The customary glob-import module (`proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}

/// Builds a strategy choosing among the argument strategies (all must
/// produce the same value type). Arms may carry integer weights:
/// `prop_oneof![3 => a, 1 => b]` draws from `a` three times as often.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or_weighted($weight, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::empty()$(.or($strategy))+
    };
}

/// Declares property tests. Each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ( $( $strategy, )* );
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                    let generated =
                        $crate::strategy::Strategy::generate_shrinkable(&strategies, &mut rng);
                    #[allow(unused_variables)]
                    let run = $crate::__constrain(generated.value(), |values| {
                        let ( $( $arg, )* ) = values;
                        $( let $arg = ::std::clone::Clone::clone($arg); )*
                        $body
                        ::std::result::Result::Ok(())
                    });
                    if let ::std::result::Result::Err(first) = run(generated.value()) {
                        // Greedy minimization: keep accepting the first
                        // shrink candidate that still fails until no
                        // candidate fails (or the budget runs out), then
                        // report the smallest failure found. Candidates
                        // come from the Shrinkable, so mapped and union
                        // arguments shrink through to their sources.
                        let mut smallest = generated;
                        let mut message = first;
                        let mut steps = 0u32;
                        let mut budget = 256u32;
                        'shrinking: loop {
                            let candidates = smallest.shrink();
                            let mut advanced = false;
                            for candidate in candidates {
                                if budget == 0 {
                                    break 'shrinking;
                                }
                                budget -= 1;
                                if let ::std::result::Result::Err(simpler) =
                                    run(candidate.value())
                                {
                                    smallest = candidate;
                                    message = simpler;
                                    steps += 1;
                                    advanced = true;
                                    break;
                                }
                            }
                            if !advanced {
                                break;
                            }
                        }
                        if steps > 0 {
                            panic!(
                                "case {}/{} failed (minimized after {} shrink steps): {}",
                                case + 1, config.cases, steps, message
                            );
                        }
                        panic!("case {}/{} failed: {}", case + 1, config.cases, message);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let strategy = ((0u8..6), (10usize..20)).prop_map(|(a, b)| (a, b));
        let mut rng = TestRng::for_case(3);
        for _ in 0..200 {
            let (a, b) = strategy.generate(&mut rng);
            assert!(a < 6);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn oneof_draws_from_every_branch() {
        let strategy = prop_oneof![
            (0u8..1).prop_map(|_| "left".to_string()),
            (0u8..1).prop_map(|_| "right".to_string()),
        ];
        let mut rng = TestRng::for_case(0);
        let mut seen_left = false;
        let mut seen_right = false;
        for _ in 0..100 {
            match strategy.generate(&mut rng).as_str() {
                "left" => seen_left = true,
                _ => seen_right = true,
            }
        }
        assert!(seen_left && seen_right);
    }

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let strategy = crate::collection::vec(0u8..5, 2..=4);
        let mut rng = TestRng::for_case(9);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..100, v in crate::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len() < 5, true);
        }
    }

    /// The greedy minimization loop the `proptest!` runner uses, extracted
    /// so the shrink self-tests can drive it against a known predicate.
    fn minimize<S: Strategy>(
        strategy: &S,
        mut value: S::Value,
        still_fails: impl Fn(&S::Value) -> bool,
    ) -> S::Value {
        assert!(still_fails(&value), "minimize needs a failing start");
        loop {
            let mut advanced = false;
            for candidate in strategy.shrink(&value) {
                if still_fails(&candidate) {
                    value = candidate;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return value;
            }
        }
    }

    #[test]
    fn integer_shrink_halves_toward_the_range_start() {
        let strategy = 3u32..100;
        let candidates = strategy.shrink(&80);
        assert_eq!(candidates, vec![3, 41, 79], "min, midpoint, predecessor");
        assert!(strategy.shrink(&3).is_empty(), "the minimum is terminal");
        // A failing "x >= 7" case minimizes to exactly the boundary.
        assert_eq!(minimize(&(0u32..100), 93, |x| *x >= 7), 7);
    }

    #[test]
    fn vec_shrink_respects_the_minimum_size() {
        let strategy = crate::collection::vec(0u8..5, 2..=4);
        for candidate in strategy.shrink(&vec![1, 2, 3, 4]) {
            assert!(
                candidate.len() >= 2,
                "candidate below min size: {candidate:?}"
            );
        }
        assert!(
            strategy.shrink(&vec![0, 0]).is_empty(),
            "minimal length of all-minimal elements is terminal"
        );
    }

    #[test]
    fn vec_counterexamples_minimize_structurally_and_element_wise() {
        // Failing predicate: the vector still sums to >= 10. The minimizer
        // must drop every irrelevant element and shrink the survivors to a
        // local minimum (no single drop or element-shrink passes).
        let strategy = crate::collection::vec(0u32..100, 0..10);
        let minimal = minimize(&strategy, vec![3, 9, 4, 7, 1], |v| {
            v.iter().sum::<u32>() >= 10
        });
        assert!(minimal.iter().sum::<u32>() >= 10, "must still fail");
        assert!(
            minimal.len() <= 2,
            "dropping cannot go further: {minimal:?}"
        );
        for at in 0..minimal.len() {
            let mut dropped = minimal.clone();
            dropped.remove(at);
            assert!(
                dropped.iter().sum::<u32>() < 10,
                "a further drop would still fail: {minimal:?}"
            );
        }
    }

    #[test]
    fn tuple_shrink_minimizes_each_coordinate_independently() {
        let strategy = (0u32..100, 0u32..100);
        let minimal = minimize(&strategy, (55, 80), |(a, b)| *a >= 20 && *b >= 5);
        assert_eq!(minimal, (20, 5));
    }

    /// The greedy minimization loop again, but over a [`Shrinkable`] —
    /// the path the runner actually takes, and the only one that shrinks
    /// through value-opaque strategies.
    fn minimize_shrinkable<T: Clone + 'static>(
        mut shrinkable: crate::strategy::Shrinkable<T>,
        still_fails: impl Fn(&T) -> bool,
    ) -> T {
        assert!(
            still_fails(shrinkable.value()),
            "minimize needs a failing start"
        );
        loop {
            let mut advanced = false;
            for candidate in shrinkable.shrink() {
                if still_fails(candidate.value()) {
                    shrinkable = candidate;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return shrinkable.value().clone();
            }
        }
    }

    /// Draws from `strategy` until the predicate holds, then returns the
    /// shrinkable — a deterministic stand-in for the runner finding a
    /// failing case.
    fn generate_failing<S: Strategy>(
        strategy: &S,
        fails: impl Fn(&S::Value) -> bool,
    ) -> crate::strategy::Shrinkable<S::Value>
    where
        S::Value: Clone + 'static,
    {
        let mut rng = TestRng::for_case(0);
        for _ in 0..1000 {
            let candidate = strategy.generate_shrinkable(&mut rng);
            if fails(candidate.value()) {
                return candidate;
            }
        }
        panic!("no failing value in 1000 draws");
    }

    #[test]
    fn map_counterexamples_shrink_through_the_mapping() {
        // Even numbers via prop_map; the source shrinks and the mapping is
        // re-applied, so the failing "v >= 40" case lands exactly on the
        // boundary and every intermediate candidate stays even.
        let strategy = (0u32..100).prop_map(|x| x * 2);
        let failing = generate_failing(&strategy, |v| *v >= 40);
        for candidate in failing.shrink() {
            assert_eq!(
                candidate.value() % 2,
                0,
                "candidates must stay in the image"
            );
        }
        let minimal = minimize_shrinkable(failing, |v| *v >= 40);
        assert_eq!(minimal, 40);
    }

    #[test]
    fn oneof_counterexamples_shrink_within_the_drawn_branch() {
        // Only the "large" branch can fail the predicate; its shrinkable
        // must shrink inside that branch (toward 1000), never hopping to
        // the "small" branch or escaping either range's image.
        let strategy = prop_oneof![
            (0u32..100).prop_map(|x| ("small", x)),
            (1000u32..2000).prop_map(|x| ("large", x)),
        ];
        let failing = generate_failing(&strategy, |(_, v)| *v >= 1000);
        let minimal = minimize_shrinkable(failing, |(_, v)| *v >= 1000);
        assert_eq!(minimal, ("large", 1000));
    }

    #[test]
    fn vecs_of_mapped_elements_shrink_through_to_their_sources() {
        // Elements are mapped (always even); structural dropping still
        // works and surviving elements keep shrinking through the map.
        let strategy = crate::collection::vec((0u32..50).prop_map(|x| x * 2), 0..8);
        let failing = generate_failing(&strategy, |v| v.iter().sum::<u32>() >= 20);
        let minimal = minimize_shrinkable(failing, |v| v.iter().sum::<u32>() >= 20);
        assert!(minimal.iter().sum::<u32>() >= 20, "must still fail");
        assert!(
            minimal.iter().all(|v| v % 2 == 0),
            "image preserved: {minimal:?}"
        );
        for at in 0..minimal.len() {
            let mut dropped = minimal.clone();
            dropped.remove(at);
            assert!(
                dropped.iter().sum::<u32>() < 20,
                "a further drop would still fail: {minimal:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "minimized after")]
        fn the_runner_reports_minimized_failures(n in 10u32..1000) {
            // Always fails (n >= 10 by construction), so the runner must
            // shrink n to the range minimum and say it minimized.
            prop_assert!(n < 10, "n was {}", n);
        }

        #[test]
        #[should_panic(expected = "n was 10")]
        fn the_runner_shrinks_through_prop_map(n in (5u32..500).prop_map(|x| x * 2)) {
            // Always fails (n >= 10 by construction). The runner must
            // shrink the *source* to its minimum and re-apply the map,
            // reporting exactly the image of the source's minimum.
            prop_assert!(n < 10, "n was {}", n);
        }
    }
}
