//! Incremental reasoning: watch the maintained closure follow a mutation
//! session, and compare one edit against full recomputation.
//!
//! Run with `cargo run --release --example incremental_reasoning`.

use std::time::Instant;

use semweb_foundations::entailment::rdfs_closure;
use semweb_foundations::model::{rdfs, triple, Graph};
use semweb_foundations::reason::MaterializedStore;
use semweb_foundations::workloads::{schema_graph, SchemaGraphConfig};

fn main() {
    // 1. A small session: the closure follows every insert and delete.
    let mut m = MaterializedStore::new();
    println!(
        "empty store: {} asserted / {} in closure (the rule-(9) axioms)",
        m.len(),
        m.closure_len()
    );

    m.insert(&triple("ex:Painter", rdfs::SC, "ex:Artist"));
    m.insert(&triple("ex:Picasso", rdfs::TYPE, "ex:Painter"));
    println!("\nafter asserting a subclass edge and a typed instance:");
    println!(
        "  Picasso rdf:type Artist in closure? {}",
        m.closure_contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist"))
    );

    m.remove(&triple("ex:Painter", rdfs::SC, "ex:Artist"));
    println!("after retracting the subclass edge (DRed):");
    println!(
        "  Picasso rdf:type Artist in closure? {}",
        m.closure_contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist"))
    );

    // 2. Closure-answered scans see inferred triples.
    m.insert(&triple("ex:paints", rdfs::SP, "ex:creates"));
    m.insert(&triple("ex:Picasso", "ex:paints", "ex:Guernica"));
    let inferred = m.scan_closure(
        None,
        Some(&semweb_foundations::model::Iri::new("ex:creates")),
        None,
    );
    println!("\nclosure scan for ex:creates (asserted only through ex:paints):");
    for t in &inferred {
        println!("  {t}");
    }

    // 3. The headline: a single edit vs recomputing the fixpoint, at scale.
    let g = schema_graph(
        &SchemaGraphConfig {
            classes: 24,
            properties: 8,
            edge_probability: 0.12,
            instances: 1_500,
            data_triples: 8_500,
        },
        7,
    );
    let t0 = Instant::now();
    let mut big = MaterializedStore::from_graph(&g);
    let build = t0.elapsed();
    println!(
        "\nworkload: {} asserted -> {} in closure (materialized in {:.1?})",
        big.len(),
        big.closure_len(),
        build
    );

    let t1 = Instant::now();
    let full = rdfs_closure(&g);
    let full_time = t1.elapsed();

    let delta = triple("ex:newInstance", rdfs::TYPE, "ex:Class0");
    let t2 = Instant::now();
    big.insert(&delta);
    let insert_time = t2.elapsed();
    let t3 = Instant::now();
    big.remove(&delta);
    let delete_time = t3.elapsed();

    println!(
        "full recomputation of RDFS-cl: {full_time:.1?} ({} triples)",
        full.len()
    );
    println!("incremental insert of one triple: {insert_time:.1?}");
    println!("incremental delete of one triple: {delete_time:.1?}");
    println!(
        "insert speedup: {:.0}x",
        full_time.as_secs_f64() / insert_time.as_secs_f64().max(1e-9)
    );

    // The engine is exact: after the round trip the maintained closure is
    // the recomputed one.
    assert_eq!(big.closure_graph(), full);
    println!("\nmaintained closure == recomputed closure: verified");

    // 4. Draining everything returns to the axiomatic closure.
    let mut drained =
        MaterializedStore::from_graph(&Graph::from_triples(g.iter().take(200).cloned()));
    for t in g.iter().take(200) {
        drained.remove(t);
    }
    println!(
        "drained store: {} asserted / {} in closure",
        drained.len(),
        drained.closure_len()
    );
}
