//! E10 — Example 3.17, Theorems 3.19/3.20: normal forms.
//!
//! Computes `nf(G) = core(cl(G))` on schema graphs with injected blank
//! redundancy, checks syntax independence (the redundant and clean versions
//! have isomorphic normal forms), and benchmarks the normal-form decision
//! problem `nf(G) ≟ G'`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_workloads::{inject_blank_redundancy, schema_graph, SchemaGraphConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_normal_form");
    for &scale in &[1usize, 2] {
        let clean = schema_graph(
            &SchemaGraphConfig {
                classes: 6 * scale,
                properties: 3 * scale,
                instances: 12 * scale,
                data_triples: 20 * scale,
                edge_probability: 0.3,
            },
            77,
        );
        let redundant = inject_blank_redundancy(&clean, 8 * scale, 78);
        let nf_clean = swdb_normal::normal_form(&clean);
        let nf_redundant = swdb_normal::normal_form(&redundant);
        assert!(
            swdb_model::isomorphic(&nf_clean, &nf_redundant),
            "Theorem 3.19: equivalent graphs have isomorphic normal forms"
        );
        report_row(
            "E10",
            &format!("scale={scale}"),
            &[
                ("clean_triples", clean.len().to_string()),
                ("redundant_triples", redundant.len().to_string()),
                ("nf_triples", nf_clean.len().to_string()),
            ],
        );
        group.bench_with_input(
            BenchmarkId::new("normal_form_clean", scale),
            &scale,
            |b, _| b.iter(|| swdb_normal::normal_form(&clean)),
        );
        group.bench_with_input(
            BenchmarkId::new("normal_form_redundant", scale),
            &scale,
            |b, _| b.iter(|| swdb_normal::normal_form(&redundant)),
        );
        group.bench_with_input(
            BenchmarkId::new("is_normal_form_of", scale),
            &scale,
            |b, _| b.iter(|| swdb_normal::is_normal_form_of(&nf_clean, &redundant)),
        );
        group.bench_with_input(
            BenchmarkId::new("equivalence_via_nf", scale),
            &scale,
            |b, _| b.iter(|| swdb_normal::equivalent_by_normal_form(&clean, &redundant)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
