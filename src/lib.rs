//! # semweb-foundations
//!
//! Workspace facade crate. It re-exports the full `swdb` stack so that the
//! runnable examples under `examples/` and the cross-crate integration tests
//! under `tests/` have a single dependency, mirroring how a downstream user
//! would consume the library through `swdb-core`.

pub use swdb_containment as containment;
pub use swdb_core as core;
pub use swdb_entailment as entailment;
pub use swdb_graphs as graphs;
pub use swdb_hom as hom;
pub use swdb_model as model;
pub use swdb_normal as normal;
pub use swdb_query as query;
pub use swdb_store as store;
pub use swdb_workloads as workloads;
