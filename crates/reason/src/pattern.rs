//! Triple patterns over interned identifiers.
//!
//! A rule hypothesis or conclusion is a triple of [`PatternTerm`]s: either a
//! constant [`TermId`] (always one of the interned RDFS vocabulary terms) or
//! a small variable index local to the rule. Matching a pattern against an
//! id-triple extends a [`Binding`]; a fully bound conclusion pattern
//! instantiates to an id-triple. This mirrors the pattern/path design of
//! inferdf-style rule systems, specialised to fixed three-position patterns.

use swdb_store::{IdPattern, IdTriple, TermId};

/// A rule-local variable index. Rules (2)–(13) need at most five variables.
pub type VarId = u8;

/// Upper bound on variables per rule (rules (6)/(7) use five).
pub const MAX_VARS: usize = 6;

/// A partial assignment of rule variables to term identifiers.
pub type Binding = [Option<TermId>; MAX_VARS];

/// An empty binding.
pub const EMPTY_BINDING: Binding = [None; MAX_VARS];

/// One position of a triple pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternTerm {
    /// A rule variable.
    Var(VarId),
    /// An interned constant (vocabulary term).
    Const(TermId),
}

impl PatternTerm {
    /// Resolves the position under a binding: `Some` if constant or bound.
    fn resolve(self, binding: &Binding) -> Option<TermId> {
        match self {
            PatternTerm::Const(id) => Some(id),
            PatternTerm::Var(v) => binding[v as usize],
        }
    }

    /// Unifies the position with a concrete id, extending `binding`.
    /// Returns `false` on mismatch (binding may be partially extended; the
    /// caller discards it in that case).
    fn unify(self, id: TermId, binding: &mut Binding) -> bool {
        match self {
            PatternTerm::Const(c) => c == id,
            PatternTerm::Var(v) => match binding[v as usize] {
                Some(bound) => bound == id,
                None => {
                    binding[v as usize] = Some(id);
                    true
                }
            },
        }
    }
}

/// A triple of pattern terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl TriplePattern {
    /// Shorthand constructor.
    pub const fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        TriplePattern { s, p, o }
    }

    /// Unifies the pattern with a concrete triple, extending `binding`.
    pub fn unify(&self, (s, p, o): IdTriple, binding: &mut Binding) -> bool {
        self.s.unify(s, binding) && self.p.unify(p, binding) && self.o.unify(o, binding)
    }

    /// The scan pattern for this hypothesis under a partial binding:
    /// constants and bound variables become bound positions, unbound
    /// variables become wildcards.
    pub fn to_scan(&self, binding: &Binding) -> IdPattern {
        (
            self.s.resolve(binding),
            self.p.resolve(binding),
            self.o.resolve(binding),
        )
    }

    /// Instantiates the pattern under a complete binding.
    ///
    /// Panics if a variable is unbound — rule conclusions only use variables
    /// occurring in hypotheses, so a full hypothesis match always suffices.
    pub fn instantiate(&self, binding: &Binding) -> IdTriple {
        (
            self.s.resolve(binding).expect("unbound subject variable"),
            self.p.resolve(binding).expect("unbound predicate variable"),
            self.o.resolve(binding).expect("unbound object variable"),
        )
    }
}

/// Convenience constructors used by the rule table.
pub const fn v(id: VarId) -> PatternTerm {
    PatternTerm::Var(id)
}

/// Constant pattern term.
pub const fn k(id: TermId) -> PatternTerm {
    PatternTerm::Const(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_binds_and_checks_consistency() {
        let pattern = TriplePattern::new(v(0), k(9), v(0));
        let mut binding = EMPTY_BINDING;
        assert!(pattern.unify((4, 9, 4), &mut binding));
        assert_eq!(binding[0], Some(4));
        let mut bad = EMPTY_BINDING;
        assert!(!pattern.unify((4, 9, 5), &mut bad), "v0 cannot be 4 and 5");
        let mut wrong_const = EMPTY_BINDING;
        assert!(!pattern.unify((4, 8, 4), &mut wrong_const));
    }

    #[test]
    fn scan_patterns_reflect_bound_positions() {
        let pattern = TriplePattern::new(v(1), k(2), v(3));
        let mut binding = EMPTY_BINDING;
        binding[1] = Some(7);
        assert_eq!(pattern.to_scan(&binding), (Some(7), Some(2), None));
    }

    #[test]
    fn instantiate_requires_full_binding() {
        let pattern = TriplePattern::new(v(0), k(1), v(2));
        let mut binding = EMPTY_BINDING;
        binding[0] = Some(5);
        binding[2] = Some(6);
        assert_eq!(pattern.instantiate(&binding), (5, 1, 6));
    }
}
