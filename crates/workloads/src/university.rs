//! A small LUBM-style university workload.
//!
//! The paper does not evaluate on real data; this generator provides a
//! realistic-looking instance graph (departments, courses, professors,
//! students) over a fixed RDFS schema so that the query-answering
//! experiments (E11, E15) run over something that resembles a deployment
//! rather than purely random triples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swdb_model::{graph, rdfs, Graph, Term, Triple};
use swdb_query::{query, Query};

/// Size parameters for the university generator.
#[derive(Clone, Copy, Debug)]
pub struct UniversityConfig {
    /// Number of departments.
    pub departments: usize,
    /// Courses per department.
    pub courses_per_department: usize,
    /// Professors per department.
    pub professors_per_department: usize,
    /// Students per department.
    pub students_per_department: usize,
    /// Courses each student takes (sampled with replacement).
    pub enrollments_per_student: usize,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            departments: 2,
            courses_per_department: 5,
            professors_per_department: 3,
            students_per_department: 10,
            enrollments_per_student: 3,
        }
    }
}

/// The fixed university schema.
pub fn schema() -> Graph {
    graph([
        ("uni:Professor", rdfs::SC, "uni:Faculty"),
        ("uni:Lecturer", rdfs::SC, "uni:Faculty"),
        ("uni:Faculty", rdfs::SC, "uni:Person"),
        ("uni:Student", rdfs::SC, "uni:Person"),
        ("uni:GraduateStudent", rdfs::SC, "uni:Student"),
        ("uni:teaches", rdfs::DOM, "uni:Faculty"),
        ("uni:teaches", rdfs::RANGE, "uni:Course"),
        ("uni:takes", rdfs::DOM, "uni:Student"),
        ("uni:takes", rdfs::RANGE, "uni:Course"),
        ("uni:offers", rdfs::DOM, "uni:Department"),
        ("uni:offers", rdfs::RANGE, "uni:Course"),
        ("uni:headOf", rdfs::SP, "uni:worksFor"),
        ("uni:worksFor", rdfs::DOM, "uni:Person"),
        ("uni:worksFor", rdfs::RANGE, "uni:Department"),
    ])
}

/// Generates the instance data for the given configuration.
pub fn instances(config: &UniversityConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    for d in 0..config.departments {
        let dept = Term::iri(format!("uni:dept{d}"));
        g.insert(Triple::new(
            dept.clone(),
            rdfs::type_(),
            Term::iri("uni:Department"),
        ));
        let courses: Vec<Term> = (0..config.courses_per_department)
            .map(|c| Term::iri(format!("uni:course{d}_{c}")))
            .collect();
        for course in &courses {
            g.insert(Triple::new(dept.clone(), "uni:offers", course.clone()));
            g.insert(Triple::new(
                course.clone(),
                rdfs::type_(),
                Term::iri("uni:Course"),
            ));
        }
        for p in 0..config.professors_per_department {
            let prof = Term::iri(format!("uni:prof{d}_{p}"));
            g.insert(Triple::new(
                prof.clone(),
                rdfs::type_(),
                Term::iri("uni:Professor"),
            ));
            g.insert(Triple::new(prof.clone(), "uni:worksFor", dept.clone()));
            if p == 0 {
                g.insert(Triple::new(prof.clone(), "uni:headOf", dept.clone()));
            }
            if !courses.is_empty() {
                let course = &courses[rng.gen_range(0..courses.len())];
                g.insert(Triple::new(prof, "uni:teaches", course.clone()));
            }
        }
        for s in 0..config.students_per_department {
            let student = Term::iri(format!("uni:student{d}_{s}"));
            let class = if s % 4 == 0 {
                "uni:GraduateStudent"
            } else {
                "uni:Student"
            };
            g.insert(Triple::new(
                student.clone(),
                rdfs::type_(),
                Term::iri(class),
            ));
            for _ in 0..config.enrollments_per_student {
                if courses.is_empty() {
                    break;
                }
                let course = &courses[rng.gen_range(0..courses.len())];
                g.insert(Triple::new(student.clone(), "uni:takes", course.clone()));
            }
            // Some students have an anonymous advisor.
            if s % 5 == 0 {
                g.insert(Triple::new(
                    student,
                    "uni:advisedBy",
                    Term::blank(format!("advisor{d}_{s}")),
                ));
            }
        }
    }
    g
}

/// Schema plus instances.
pub fn university(config: &UniversityConfig, seed: u64) -> Graph {
    schema().union(&instances(config, seed))
}

/// "Which persons work for which department" — requires subproperty
/// reasoning (`headOf ⊑ worksFor`).
pub fn workers_query() -> Query {
    query(
        [("?X", "uni:worksFor", "?D")],
        [("?X", "uni:worksFor", "?D")],
    )
}

/// "Which resources are persons" — requires domain typing and subclass
/// lifting.
pub fn persons_query() -> Query {
    query(
        [("?X", rdfs::TYPE, "uni:Person")],
        [("?X", rdfs::TYPE, "uni:Person")],
    )
}

/// A join query: students and the professors teaching the courses they take.
pub fn student_professor_query() -> Query {
    query(
        [("?S", "uni:learnsFrom", "?P")],
        [("?S", "uni:takes", "?C"), ("?P", "uni:teaches", "?C")],
    )
}

/// A star-shaped query of configurable width over one department, used to
/// scale *query* complexity while the data stays fixed (E15).
pub fn star_query(width: usize) -> Query {
    let mut body: Vec<(String, String, String)> = Vec::with_capacity(width);
    for i in 0..width {
        body.push(("?D".to_owned(), "uni:offers".to_owned(), format!("?C{i}")));
    }
    let body_refs: Vec<(&str, &str, &str)> = body
        .iter()
        .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str()))
        .collect();
    query([("?D", rdfs::TYPE, "uni:BusyDepartment")], body_refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_query::answer_union;

    #[test]
    fn generator_is_seeded_and_scales() {
        let small = university(&UniversityConfig::default(), 1);
        let same = university(&UniversityConfig::default(), 1);
        assert_eq!(small, same);
        let bigger = university(
            &UniversityConfig {
                departments: 4,
                ..UniversityConfig::default()
            },
            1,
        );
        assert!(bigger.len() > small.len());
    }

    #[test]
    fn subproperty_reasoning_reaches_heads_of_departments() {
        let g = university(&UniversityConfig::default(), 2);
        let answers = answer_union(&workers_query(), &g);
        // Every head-of is also a works-for.
        assert!(answers
            .iter()
            .any(|t| t.subject() == &Term::iri("uni:prof0_0")));
    }

    #[test]
    fn persons_are_inferred_from_types_and_domains() {
        let g = university(&UniversityConfig::default(), 3);
        let answers = answer_union(&persons_query(), &g);
        assert!(answers
            .iter()
            .any(|t| t.subject() == &Term::iri("uni:student0_0")));
        assert!(answers
            .iter()
            .any(|t| t.subject() == &Term::iri("uni:prof0_0")));
    }

    #[test]
    fn join_query_connects_students_and_professors() {
        let g = university(&UniversityConfig::default(), 4);
        let answers = answer_union(&student_professor_query(), &g);
        assert!(!answers.is_empty());
        assert!(answers
            .iter()
            .all(|t| t.predicate().as_str() == "uni:learnsFrom"));
    }

    #[test]
    fn star_queries_grow_with_width() {
        assert_eq!(star_query(1).body().len(), 1);
        assert_eq!(star_query(5).body().len(), 5);
        assert_eq!(star_query(5).body_variables().len(), 6);
    }
}
