//! Round-based, sharded parallel evaluation of the RDFS rule joins.
//!
//! [`crate::DeltaClosure`]'s sequential propagation is depth-first and
//! triple-at-a-time: pop a delta, join it against the closure, push fresh
//! conclusions, repeat. This module restructures the same semi-naive
//! computation into **rounds** so the independent rule joins can run on
//! worker threads (`std::thread::scope` — std only, no external thread
//! pool):
//!
//! 1. **Shard** — the current frontier is partitioned by the
//!    `(rule, hypothesis)` paths its predicates wake
//!    ([`crate::rules::RuleSystem::paths_for_predicate`]): one shard is one
//!    path plus every frontier triple that wakes it. Two shards never share
//!    a join, so they are embarrassingly parallel.
//! 2. **Join** — shards are balanced across workers (longest-processing-
//!    time-first greedy assignment) and every worker joins its shards
//!    against one shared, immutable snapshot view of the closure (the
//!    [`swdb_store::IdIndex`] read-snapshot guarantee; the [`IdTarget`]
//!    `Sync` bound makes the sharing a compile-time fact).
//! 3. **Merge** — worker conclusions are concatenated, sorted, deduplicated
//!    and returned; the single-threaded caller commits the fresh ones and
//!    makes them the next round's frontier.
//!
//! ## Why the fixpoint cannot change
//!
//! The rules (2)–(13) are *monotone* (a conclusion derivable from a set of
//! triples stays derivable from any superset) and the closure is a *set*
//! (commits are idempotent and order-insensitive). Round-parallel
//! derivation therefore reaches exactly the fixpoint the depth-first loop
//! reaches: every rule instance with a hypothesis in the frontier is
//! evaluated against a view that contains the whole frontier (the frontier
//! is committed before the round runs), so no instance is missed, and no
//! instance can derive anything outside `RDFS-cl(G)` because each round
//! only applies the rules. The per-round sort additionally makes the
//! *rounds themselves* — and with them the `added` delta log — identical
//! for every thread count ≥ 2, which the differential tests in
//! `crates/reason/tests/` make executable (thread count 1 preserves the
//! original depth-first code path bit for bit; its log is the same *set*).
//!
//! The DRed delete reuses the same machinery: the overdeletion cascade is
//! the same join shape (run with a "currently in the closure" filter
//! instead of a freshness filter), and the per-candidate prune/rederive
//! probes are independent membership checks parallelized by
//! [`parallel_mask`].

use std::thread;

use swdb_hom::IdTarget;
use swdb_obs::{Counter, Hist, Metrics, MetricsLevel, RULE_SLOTS};
use swdb_store::IdTriple;

use crate::delta::{flush_firings, guards_pass, join_all};
use crate::pattern::{TriplePattern, EMPTY_BINDING};
use crate::rules::{RulePath, RuleSystem};

/// Below this many `(delta, path)` join tasks a round runs inline on the
/// calling thread: for single-triple edits the spawn cost would dominate
/// the joins, and an inline round computes the identical result (the merge
/// sorts either way).
const INLINE_TASK_THRESHOLD: usize = 64;

/// One shard: a `(rule, hypothesis)` path plus the frontier triples whose
/// predicate woke it.
type Shard = (RulePath, Vec<IdTriple>);

/// Partitions the frontier into shards keyed by woken rule path.
fn shard_frontier(rules: &RuleSystem, frontier: &[IdTriple]) -> Vec<Shard> {
    let mut by_path: std::collections::BTreeMap<RulePath, Vec<IdTriple>> =
        std::collections::BTreeMap::new();
    for &t in frontier {
        for path in rules.paths_for_predicate(t.1) {
            by_path.entry(path).or_default().push(t);
        }
    }
    by_path.into_iter().collect()
}

/// Greedy longest-first balancing of shards into at most `threads` buckets.
fn balance(mut shards: Vec<Shard>, threads: usize) -> Vec<Vec<Shard>> {
    shards.sort_by_key(|(_, deltas)| std::cmp::Reverse(deltas.len()));
    let buckets = threads.min(shards.len()).max(1);
    let mut out: Vec<(usize, Vec<Shard>)> = (0..buckets).map(|_| (0, Vec::new())).collect();
    for shard in shards {
        let lightest = out
            .iter_mut()
            .min_by_key(|(load, _)| *load)
            .expect("at least one bucket");
        lightest.0 += shard.1.len().max(1);
        lightest.1.push(shard);
    }
    out.into_iter().map(|(_, bucket)| bucket).collect()
}

/// Evaluates one shard: every delta is unified against its hypothesis, the
/// remaining hypotheses are joined against the snapshot view, and every
/// guard-passing conclusion accepted by `keep` is appended to `out`.
#[allow(clippy::too_many_arguments)]
fn eval_shard<V: IdTarget>(
    rules: &RuleSystem,
    view: &V,
    is_iri: &[bool],
    (rule_idx, hyp_idx): RulePath,
    deltas: &[IdTriple],
    keep: &(impl Fn(IdTriple) -> bool + Sync),
    out: &mut Vec<IdTriple>,
    fired: &mut [u64; RULE_SLOTS],
) {
    let rule = &rules.rules()[rule_idx];
    let remaining: Vec<&TriplePattern> = rule
        .hypotheses
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != hyp_idx)
        .map(|(_, h)| h)
        .collect();
    for &delta in deltas {
        let mut seed = EMPTY_BINDING;
        if !rule.hypotheses[hyp_idx].unify(delta, &mut seed) {
            continue;
        }
        let mut bindings = Vec::new();
        join_all(view, &remaining, seed, &mut bindings);
        for binding in bindings {
            if !guards_pass(is_iri, &rule.iri_guards, &binding) {
                continue;
            }
            for conclusion in &rule.conclusions {
                let derived = conclusion.instantiate(&binding);
                if keep(derived) {
                    fired[rule_idx % RULE_SLOTS] += 1;
                    out.push(derived);
                }
            }
        }
    }
}

/// Runs one propagation round: joins the whole frontier against the
/// immutable `view` on up to `threads` workers and returns the sorted,
/// deduplicated conclusions accepted by `keep`.
///
/// `keep` is a read-only pre-filter evaluated inside the workers (against
/// the same snapshot) so the merge only sees plausible conclusions; the
/// caller still re-checks at commit time, because two shards of the same
/// round can derive the same triple.
pub(crate) fn round_conclusions<V>(
    rules: &RuleSystem,
    view: &V,
    is_iri: &[bool],
    frontier: &[IdTriple],
    threads: usize,
    keep: &(impl Fn(IdTriple) -> bool + Sync),
    metrics: &Metrics,
) -> Vec<IdTriple>
where
    V: IdTarget + Sync,
{
    let shards = shard_frontier(rules, frontier);
    let tasks: usize = shards.iter().map(|(_, deltas)| deltas.len()).sum();
    metrics.count(Counter::ReasonShards, shards.len() as u64);
    if metrics.on(MetricsLevel::Debug) {
        for (_, deltas) in &shards {
            metrics.record(Hist::ShardSize, deltas.len() as u64);
        }
    }
    // Workers accumulate rule firings into plain local arrays (no shared
    // atomics inside the joins); the per-worker batches are flushed after
    // the round — at `Off` this whole scheme costs register increments.
    let mut fired = [0u64; RULE_SLOTS];
    let mut fresh = if threads <= 1 || shards.len() <= 1 || tasks < INLINE_TASK_THRESHOLD {
        let mut out = Vec::new();
        for (path, deltas) in &shards {
            eval_shard(
                rules, view, is_iri, *path, deltas, keep, &mut out, &mut fired,
            );
        }
        out
    } else {
        metrics.count(Counter::ReasonParallelRounds, 1);
        let buckets = balance(shards, threads);
        if metrics.on(MetricsLevel::Debug) {
            // Per-round utilization: how evenly LPT spread the load.
            // 100% means every worker carried the same number of tasks;
            // the busiest worker bounds the round's critical path.
            let loads: Vec<usize> = buckets
                .iter()
                .map(|b| b.iter().map(|(_, d)| d.len().max(1)).sum())
                .collect();
            let busiest = loads.iter().copied().max().unwrap_or(1).max(1);
            let total: usize = loads.iter().sum();
            let utilization = 100 * total / (loads.len().max(1) * busiest);
            metrics.record(Hist::RoundUtilizationPct, utilization as u64);
        }
        let mut results: Vec<(Vec<IdTriple>, [u64; RULE_SLOTS])> = Vec::new();
        thread::scope(|scope| {
            let workers: Vec<_> = buckets
                .iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut fired = [0u64; RULE_SLOTS];
                        for (path, deltas) in bucket {
                            eval_shard(
                                rules, view, is_iri, *path, deltas, keep, &mut out, &mut fired,
                            );
                        }
                        (out, fired)
                    })
                })
                .collect();
            results = workers
                .into_iter()
                .map(|w| w.join().expect("propagation worker panicked"))
                .collect();
        });
        let mut merged = Vec::new();
        for (out, worker_fired) in results {
            merged.push(out);
            for (slot, n) in worker_fired.into_iter().enumerate() {
                fired[slot] += n;
            }
        }
        merged.concat()
    };
    flush_firings(metrics, &fired);
    // Sorting makes the round — and therefore the whole fixpoint schedule
    // and the `added` log — independent of the shard-to-worker assignment
    // and of the thread count.
    fresh.sort_unstable();
    fresh.dedup();
    fresh
}

/// Evaluates an independent boolean probe over every item, in parallel when
/// the batch is large enough, preserving item order in the returned mask.
/// Used for the DRed prune (`still supported by asserted facts alone?`) and
/// rederivation (`still one-step derivable from the surviving closure?`)
/// probes, which only read immutable snapshots.
pub(crate) fn parallel_mask<T: Sync>(
    items: &[T],
    threads: usize,
    test: &(impl Fn(&T) -> bool + Sync),
) -> Vec<bool> {
    if threads <= 1 || items.len() < INLINE_TASK_THRESHOLD {
        return items.iter().map(test).collect();
    }
    let chunk = items.len().div_ceil(threads.min(items.len()));
    let mut mask = Vec::with_capacity(items.len());
    thread::scope(|scope| {
        let workers: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(test).collect::<Vec<bool>>()))
            .collect();
        for worker in workers {
            mask.extend(worker.join().expect("probe worker panicked"));
        }
    });
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_spreads_load_without_losing_shards() {
        let shards: Vec<Shard> = (0..7)
            .map(|i| ((i, 0), vec![(0, 0, 0); 1 + (i % 3)]))
            .collect();
        let total: usize = shards.iter().map(|(_, d)| d.len()).sum();
        let buckets = balance(shards, 3);
        assert_eq!(buckets.len(), 3);
        let spread: usize = buckets
            .iter()
            .flat_map(|b| b.iter().map(|(_, d)| d.len()))
            .sum();
        assert_eq!(spread, total, "no shard may be dropped or duplicated");
        let max = buckets
            .iter()
            .map(|b| b.iter().map(|(_, d)| d.len()).sum::<usize>())
            .max()
            .unwrap();
        assert!(max <= total, "greedy LPT keeps buckets bounded");
    }

    #[test]
    fn balance_with_more_threads_than_shards_stays_dense() {
        let shards: Vec<Shard> = vec![((0, 0), vec![(1, 2, 3)])];
        let buckets = balance(shards, 8);
        assert_eq!(buckets.len(), 1, "empty buckets are never created");
    }

    #[test]
    fn parallel_mask_matches_sequential_on_any_batch_size() {
        let items: Vec<u32> = (0..500).collect();
        let test = |x: &u32| x.is_multiple_of(3);
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                parallel_mask(&items, threads, &test),
                items.iter().map(test).collect::<Vec<bool>>(),
                "threads={threads}"
            );
        }
        let tiny: Vec<u32> = (0..5).collect();
        assert_eq!(parallel_mask(&tiny, 8, &test).len(), 5);
    }
}
