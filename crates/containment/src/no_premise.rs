//! Containment of queries without premises (Theorems 5.5 and 5.7).
//!
//! Two notions of containment are studied (Definition 5.1):
//!
//! * **standard containment** `q ⊑p q'` — every pre-answer of `q` appears
//!   (up to isomorphism) among the pre-answers of `q'`, over every database;
//! * **entailment-based containment** `q ⊑m q'` — the answer of `q'` always
//!   entails the answer of `q`.
//!
//! Standard containment implies entailment-based containment
//! (Proposition 5.2) but not conversely (Example 5.3). Both are NP-complete
//! for premise-free queries (Theorem 5.6) and are decided here by the
//! substitution characterizations of Theorem 5.5, extended to constraints as
//! in Theorem 5.7:
//!
//! * `q ⊑p q'` iff there is a substitution `θ` of the variables of `q'` with
//!   `θ(B') ⊆ nf(B)`, `θ(H') ≅ H` and `θ(C') ⊆ C`;
//! * `q ⊑m q'` iff there are substitutions `θ1, …, θn` with
//!   `θj(B') ⊆ nf(B)`, `⋃j θj(H') ⊨ H` and `θj(C') ⊆ C`.

use swdb_hom::{Binding, GraphIndex, Solver};
use swdb_model::{isomorphic, Graph};
use swdb_query::Query;

use crate::freeze::{freeze, freeze_variable, thaw_term};

/// Which notion of containment to decide (Definition 5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Notion {
    /// Standard containment `⊑p` (per-pre-answer, up to isomorphism).
    Standard,
    /// Entailment-based containment `⊑m`.
    EntailmentBased,
}

/// Upper bound on the number of candidate substitutions enumerated. The
/// containment problem is NP-complete, so the enumeration is exponential in
/// the worst case; the cap guards against runaway instances in benchmarks.
const SUBSTITUTION_LIMIT: usize = 100_000;

/// Decides `q ⊑ q'` for premise-free queries under the requested notion
/// (Theorems 5.5 and 5.7). Premises, if present, are ignored by this
/// function — use [`crate::with_premise::contained_in`] for the general
/// case.
pub fn contained_in_no_premise(q: &Query, q_prime: &Query, notion: Notion) -> bool {
    // Freeze q: its variables become constants, its body is normalized.
    let frozen_body = freeze(q.body());
    let frozen_head = freeze(q.head());
    let nf_body = swdb_normal::normal_form(&frozen_body);

    let substitutions = candidate_substitutions(q_prime, &nf_body);
    match notion {
        Notion::Standard => substitutions.iter().any(|theta| {
            constraints_respected(q, q_prime, theta)
                && q_prime
                    .head()
                    .instantiate(theta)
                    .is_some_and(|image| isomorphic(&image, &frozen_head))
        }),
        Notion::EntailmentBased => {
            let mut union = Graph::new();
            let mut any = false;
            for theta in &substitutions {
                if !constraints_respected(q, q_prime, theta) {
                    continue;
                }
                if let Some(image) = q_prime.head().instantiate(theta) {
                    union = union.union(&image);
                    any = true;
                }
            }
            if !any {
                // With no candidate substitution at all, containment can only
                // hold if the frozen head of q is entailed by nothing, i.e.
                // it is empty.
                return frozen_head.is_empty();
            }
            swdb_entailment::entails(&union, &frozen_head)
        }
    }
}

/// `q ⊑p q'` for premise-free queries.
pub fn standard_contained_in(q: &Query, q_prime: &Query) -> bool {
    contained_in_no_premise(q, q_prime, Notion::Standard)
}

/// `q ⊑m q'` for premise-free queries.
pub fn entailment_contained_in(q: &Query, q_prime: &Query) -> bool {
    contained_in_no_premise(q, q_prime, Notion::EntailmentBased)
}

/// Enumerates the substitutions `θ` of the variables of `q'` such that
/// `θ(B') ⊆ target` (condition (a) of Theorems 5.5/5.7/5.8).
pub fn candidate_substitutions(q_prime: &Query, target: &Graph) -> Vec<Binding> {
    let index = GraphIndex::new(target);
    let solver = Solver::new(q_prime.body(), &index);
    solver.solutions_up_to(SUBSTITUTION_LIMIT)
}

/// Condition (c) of Theorem 5.7: `θ(C') ⊆ C` — every constrained variable of
/// `q'` is mapped onto (the frozen image of) a constrained variable of `q`.
pub fn constraints_respected(q: &Query, q_prime: &Query, theta: &Binding) -> bool {
    q_prime.constraints().iter().all(|c_prime| {
        let Some(image) = theta.get(c_prime) else {
            return false;
        };
        q.constraints().iter().any(|c| image == &freeze_variable(c))
            || thaw_term(image).is_some_and(|v| q.constraints().contains(&v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_hom::{pattern_graph, Variable};
    use swdb_model::graph;
    use swdb_query::query;

    #[test]
    fn syntactically_identical_queries_contain_each_other() {
        let q1 = query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]);
        let q2 = query([("?A", "ex:p", "?B")], [("?A", "ex:p", "?B")]);
        assert!(standard_contained_in(&q1, &q2));
        assert!(standard_contained_in(&q2, &q1));
        assert!(entailment_contained_in(&q1, &q2));
    }

    #[test]
    fn more_restrictive_bodies_are_contained_in_looser_ones() {
        // q asks for painters of exhibited works; q' asks merely for
        // painters. Every pre-answer of q is a pre-answer of q'.
        let q = query(
            [("?A", "ex:paints", "?Y")],
            [
                ("?A", "ex:paints", "?Y"),
                ("?Y", "ex:exhibited", "ex:Uffizi"),
            ],
        );
        let q_prime = query([("?A", "ex:paints", "?Y")], [("?A", "ex:paints", "?Y")]);
        assert!(standard_contained_in(&q, &q_prime));
        assert!(!standard_contained_in(&q_prime, &q));
        assert!(entailment_contained_in(&q, &q_prime));
        assert!(!entailment_contained_in(&q_prime, &q));
    }

    #[test]
    fn proposition_5_2_standard_implies_entailment_based() {
        let pairs = [
            (
                query(
                    [("?X", "ex:p", "?Y")],
                    [("?X", "ex:p", "?Y"), ("?Y", "ex:q", "?Z")],
                ),
                query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]),
            ),
            (
                query([("ex:a", "ex:r", "?Y")], [("ex:a", "ex:p", "?Y")]),
                query([("ex:a", "ex:r", "?B")], [("?A", "ex:p", "?B")]),
            ),
        ];
        for (q, q_prime) in pairs {
            if standard_contained_in(&q, &q_prime) {
                assert!(entailment_contained_in(&q, &q_prime));
            }
        }
    }

    #[test]
    fn example_5_3_blank_head_separates_the_two_notions() {
        // Heads: H = (c, q, ?X) vs H' = (_:Y, q, ?X), same bodies.
        // q' ⊑m q but q' ⋢p q.
        let body = pattern_graph([("?X", "ex:p", "ex:c")]);
        let q =
            swdb_query::Query::new(pattern_graph([("ex:c", "ex:q", "?X")]), body.clone()).unwrap();
        let q_prime = swdb_query::Query::new(pattern_graph([("_:Y", "ex:q", "?X")]), body).unwrap();
        assert!(
            entailment_contained_in(&q_prime, &q),
            "the ground head entails the blank head, so q' ⊑m q"
        );
        assert!(
            !standard_contained_in(&q_prime, &q),
            "but the single answers are not isomorphic, so q' ⋢p q"
        );
    }

    #[test]
    fn union_of_substitutions_separates_the_two_notions() {
        // A single substitution cannot make the one-triple head of q'
        // isomorphic to the two-triple head of q, but the union of two
        // substitutions entails it — the phenomenon behind the third part of
        // Example 5.3 (no vocabulary, no blanks).
        let q = swdb_query::Query::new(
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:q", "?X")]),
            pattern_graph([("?X", "ex:p", "?Y"), ("?Y", "ex:p", "?X")]),
        )
        .unwrap();
        let q_prime = swdb_query::Query::new(
            pattern_graph([("?U", "ex:q", "?V")]),
            pattern_graph([("?U", "ex:p", "?V")]),
        )
        .unwrap();
        assert!(
            entailment_contained_in(&q, &q_prime),
            "q ⊑m q' via two substitutions"
        );
        assert!(!standard_contained_in(&q, &q_prime), "but q ⋢p q'");
    }

    #[test]
    fn example_5_3_rdfs_bodies_are_m_equivalent_but_not_p_comparable() {
        // Example 5.3, first part: heads equal bodies; B = {(?X, sc, ?Y),
        // (?Y, sc, ?Z)}, B' adds the transitive shortcut (?X, sc, ?Z). Under
        // RDFS semantics q ⊑m q' and q' ⊑m q, but neither ⊑p direction
        // holds (the heads have different sizes, so no substitution makes
        // them isomorphic).
        let b = pattern_graph([
            ("?X", "rdfs:subClassOf", "?Y"),
            ("?Y", "rdfs:subClassOf", "?Z"),
        ]);
        let b_prime = pattern_graph([
            ("?X", "rdfs:subClassOf", "?Y"),
            ("?Y", "rdfs:subClassOf", "?Z"),
            ("?X", "rdfs:subClassOf", "?Z"),
        ]);
        let q = swdb_query::Query::new(b.clone(), b).unwrap();
        let q_prime = swdb_query::Query::new(b_prime.clone(), b_prime).unwrap();
        assert!(entailment_contained_in(&q, &q_prime));
        assert!(entailment_contained_in(&q_prime, &q));
        assert!(!standard_contained_in(&q, &q_prime));
        assert!(!standard_contained_in(&q_prime, &q));
    }

    #[test]
    fn theorem_5_7_constraints_restrict_containment() {
        let head = pattern_graph([("?X", "ex:p", "?Y")]);
        let body = pattern_graph([("?X", "ex:p", "?Y")]);
        let unconstrained = swdb_query::Query::new(head.clone(), body.clone()).unwrap();
        let constrained =
            swdb_query::Query::with_constraints(head.clone(), body.clone(), [Variable::new("X")])
                .unwrap();
        // The constrained query only returns ground-X answers: it is
        // contained in the unconstrained one, not vice versa.
        assert!(standard_contained_in(&constrained, &unconstrained));
        assert!(!standard_contained_in(&unconstrained, &constrained));
        // Two identically constrained queries contain each other.
        let constrained2 =
            swdb_query::Query::with_constraints(head, body, [Variable::new("X")]).unwrap();
        assert!(standard_contained_in(&constrained, &constrained2));
    }

    #[test]
    fn unrelated_queries_are_incomparable() {
        let q1 = query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]);
        let q2 = query([("?X", "ex:q", "?Y")], [("?X", "ex:q", "?Y")]);
        assert!(!standard_contained_in(&q1, &q2));
        assert!(!standard_contained_in(&q2, &q1));
        assert!(!entailment_contained_in(&q1, &q2));
        assert!(!entailment_contained_in(&q2, &q1));
    }

    #[test]
    fn constant_specialisation_is_contained_in_variable_generalisation() {
        // q: painters of Guernica; q': painters of anything.
        let q = query(
            [("?A", "ex:paints", "ex:Guernica")],
            [("?A", "ex:paints", "ex:Guernica")],
        );
        let q_prime = query([("?A", "ex:paints", "?W")], [("?A", "ex:paints", "?W")]);
        assert!(standard_contained_in(&q, &q_prime));
        assert!(!standard_contained_in(&q_prime, &q));
    }

    #[test]
    fn empirical_cross_check_on_sample_databases() {
        // Sanity: when the decision procedure claims q ⊑p q', the per-database
        // inclusion of pre-answers holds on sample data; when it claims
        // non-containment, some sample database separates the queries.
        let q = query(
            [("?A", "ex:paints", "?Y")],
            [
                ("?A", "ex:paints", "?Y"),
                ("?Y", "ex:exhibited", "ex:Uffizi"),
            ],
        );
        let q_prime = query([("?A", "ex:paints", "?Y")], [("?A", "ex:paints", "?Y")]);
        let d = graph([
            ("ex:Botticelli", "ex:paints", "ex:Primavera"),
            ("ex:Primavera", "ex:exhibited", "ex:Uffizi"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]);
        let pre_q = swdb_query::pre_answers(&q, &d);
        let pre_qp = swdb_query::pre_answers(&q_prime, &d);
        for ans in &pre_q {
            assert!(
                pre_qp.iter().any(|other| isomorphic(other, ans)),
                "q ⊑p q' must hold on the sample database"
            );
        }
        // And the separating answer for the converse.
        assert!(pre_qp
            .iter()
            .any(|ans| !pre_q.iter().any(|other| isomorphic(other, ans))));
    }
}
