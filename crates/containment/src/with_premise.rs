//! Containment of queries with premises (§5.4, Theorems 5.8 and 5.12).
//!
//! The study is restricted to *simple* queries — RDFS vocabulary is treated
//! as uninterpreted wherever it appears — because Proposition 5.9 (premise
//! elimination) fails once the vocabulary semantics is switched on.
//!
//! * **Theorem 5.8**: when only the containing query `q'` has a premise,
//!   the substitution characterization of Theorem 5.5 applies with the
//!   target `P' + B` instead of `nf(B)`.
//! * **Proposition 5.9 + 5.11 + Theorem 5.12**: when the contained query `q`
//!   also has a premise, expand it into the premise-free union `Ω_q`;
//!   `q ⊑ q'` iff `q_μ ⊑ q'` for every member. The resulting decision
//!   procedure is NP-hard and in Π₂ᵖ.

use swdb_model::{isomorphic, Graph};
use swdb_query::{premise_free_expansion, Query};

use crate::freeze::freeze;
use crate::no_premise::{candidate_substitutions, constraints_respected, Notion};

/// Decides `q ⊑ q'` by Theorem 5.8, assuming `q` is premise-free (the
/// premise of `q`, if any, is ignored here). `q'` may carry a premise.
pub fn contained_in_with_right_premise(q: &Query, q_prime: &Query, notion: Notion) -> bool {
    // Target: P' + B (the premise of q' merged with the frozen body of q).
    // For simple queries no normal form is taken (the vocabulary is
    // uninterpreted in this section).
    let frozen_body = freeze(q.body());
    let frozen_head = freeze(q.head());
    let target = q_prime.premise().merge(&frozen_body);

    let substitutions = candidate_substitutions(q_prime, &target);
    match notion {
        Notion::Standard => substitutions.iter().any(|theta| {
            constraints_respected(q, q_prime, theta)
                && q_prime
                    .head()
                    .instantiate(theta)
                    .is_some_and(|image| isomorphic(&image, &frozen_head))
        }),
        Notion::EntailmentBased => {
            let mut union = Graph::new();
            let mut any = false;
            for theta in &substitutions {
                if !constraints_respected(q, q_prime, theta) {
                    continue;
                }
                if let Some(image) = q_prime.head().instantiate(theta) {
                    union = union.union(&image);
                    any = true;
                }
            }
            if !any {
                return frozen_head.is_empty();
            }
            swdb_entailment::simple_entails(&union, &frozen_head)
        }
    }
}

/// Decides `q ⊑ q'` in full generality (premises allowed on both sides) via
/// premise elimination: `q ⊑ q'` iff every member of `Ω_q` is contained in
/// `q'` (Propositions 5.9/5.11, Theorem 5.12).
pub fn contained_in(q: &Query, q_prime: &Query, notion: Notion) -> bool {
    if q.is_premise_free() {
        return dispatch(q, q_prime, notion);
    }
    premise_free_expansion(q)
        .iter()
        .all(|q_mu| dispatch(q_mu, q_prime, notion))
}

fn dispatch(q: &Query, q_prime: &Query, notion: Notion) -> bool {
    if q_prime.is_premise_free() && q_prime.is_simple() && q.is_simple() {
        // No premise anywhere and simple: Theorem 5.5/5.7 applies — but the
        // simple case coincides with Theorem 5.8 with an empty premise, so
        // either route gives the same answer. Use the nf-based route, which
        // also covers non-simple queries.
        crate::no_premise::contained_in_no_premise(q, q_prime, notion)
    } else if q_prime.is_premise_free() {
        crate::no_premise::contained_in_no_premise(q, q_prime, notion)
    } else {
        contained_in_with_right_premise(q, q_prime, notion)
    }
}

/// `q ⊑p q'` in full generality.
pub fn standard_contained_in(q: &Query, q_prime: &Query) -> bool {
    contained_in(q, q_prime, Notion::Standard)
}

/// `q ⊑m q'` in full generality.
pub fn entailment_contained_in(q: &Query, q_prime: &Query) -> bool {
    contained_in(q, q_prime, Notion::EntailmentBased)
}

/// Two queries are equivalent under a notion if they contain each other.
pub fn equivalent(q: &Query, q_prime: &Query, notion: Notion) -> bool {
    contained_in(q, q_prime, notion) && contained_in(q_prime, q, notion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_hom::pattern_graph;
    use swdb_model::{graph, rdfs, Graph};
    use swdb_query::{query, Query};

    fn relatives_query(premise: Graph) -> Query {
        Query::with_premise(
            pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            premise,
        )
        .unwrap()
    }

    #[test]
    fn theorem_5_8_premise_on_the_containing_side() {
        // q: bodies must match the data alone; q' may additionally use its
        // premise facts. Every answer of q is an answer of q', so q ⊑ q'.
        let q = query(
            [("?X", "ex:p", "ex:a")],
            [("?X", "ex:q", "ex:a"), ("ex:a", "ex:t", "ex:s")],
        );
        let q_prime = Query::with_premise(
            pattern_graph([("?X", "ex:p", "ex:a")]),
            pattern_graph([("?X", "ex:q", "ex:a"), ("ex:a", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(standard_contained_in(&q, &q_prime));
        assert!(entailment_contained_in(&q, &q_prime));
        // The converse fails: q' can answer over databases lacking
        // (a, t, s) because its premise supplies it, q cannot.
        assert!(!standard_contained_in(&q_prime, &q));
    }

    #[test]
    fn premise_makes_a_query_strictly_larger() {
        // Same head and body; one query carries a premise that can satisfy
        // part of the body. The premise-free query is contained in the
        // premised one, not conversely.
        let without = query(
            [("?X", "ex:p", "?Y")],
            [("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")],
        );
        let with = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(standard_contained_in(&without, &with));
        assert!(entailment_contained_in(&without, &with));
        assert!(!standard_contained_in(&with, &without));
        assert!(!entailment_contained_in(&with, &without));
    }

    #[test]
    fn identical_premises_give_mutual_containment() {
        let p = graph([("ex:son", "ex:sub", "ex:relative")]);
        let q1 = relatives_query(p.clone());
        let q2 = relatives_query(p);
        assert!(equivalent(&q1, &q2, Notion::Standard));
        assert!(equivalent(&q1, &q2, Notion::EntailmentBased));
    }

    #[test]
    fn larger_premises_contain_smaller_ones() {
        // q has premise P1 ⊆ P2 of q': anything q can conclude with P1 in
        // the (uninterpreted) simple setting, q' can conclude with P2.
        let q = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        let q_prime = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s"), ("ex:b", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(standard_contained_in(&q, &q_prime));
        assert!(entailment_contained_in(&q, &q_prime));
        assert!(!standard_contained_in(&q_prime, &q));
    }

    #[test]
    fn premises_are_not_interpreted_with_rdfs_semantics_in_this_fragment() {
        // §5.4 treats rdfs graphs as simple graphs. A premise (son, sp,
        // relative) therefore does *not* make the son-query contained in the
        // relative-query: the vocabulary is uninterpreted here.
        let q_son = query(
            [("?X", "ex:son", "ex:Peter")],
            [("?X", "ex:son", "ex:Peter")],
        );
        let q_relative = Query::with_premise(
            pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            pattern_graph([("?X", "ex:relative", "ex:Peter")]),
            graph([("ex:son", rdfs::SP, "ex:relative")]),
        )
        .unwrap();
        assert!(!standard_contained_in(&q_son, &q_relative));
        assert!(!entailment_contained_in(&q_son, &q_relative));
    }

    #[test]
    fn expansion_based_containment_agrees_with_direct_answer_comparison() {
        // Empirical cross-check of Theorem 5.12's procedure on sample
        // databases.
        let q = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        let q_prime = Query::with_premise(
            pattern_graph([("?X", "ex:p", "?Y")]),
            pattern_graph([("?X", "ex:q", "?Y")]),
            swdb_model::Graph::new(),
        )
        .unwrap();
        // q' has a weaker body, so q ⊑ q'.
        assert!(standard_contained_in(&q, &q_prime));
        let databases = [
            graph([("ex:u", "ex:q", "ex:a")]),
            graph([("ex:u", "ex:q", "ex:w"), ("ex:w", "ex:t", "ex:s")]),
            graph([("ex:u", "ex:q", "ex:w")]),
        ];
        for d in &databases {
            let pre_q = swdb_query::pre_answers(&q, d);
            let pre_qp = swdb_query::pre_answers(&q_prime, d);
            for ans in &pre_q {
                assert!(
                    pre_qp.iter().any(|other| isomorphic(other, ans)),
                    "claimed containment must hold on {d}"
                );
            }
        }
    }

    #[test]
    fn blank_nodes_in_premises_participate_in_containment() {
        // The premise of q' contains a blank node; the substitution may send
        // body variables of q' to it.
        let q = query(
            [("ex:marker", "ex:found", "ex:yes")],
            [("?Y", "ex:t", "ex:s")],
        );
        let q_prime = Query::with_premise(
            pattern_graph([("ex:marker", "ex:found", "ex:yes")]),
            pattern_graph([("?Z", "ex:t", "ex:s")]),
            graph([("_:B", "ex:t", "ex:s")]),
        )
        .unwrap();
        assert!(standard_contained_in(&q, &q_prime));
        assert!(entailment_contained_in(&q, &q_prime));
    }
}
