//! Endpoint-level tests of the HTTP front end: the happy paths, the whole
//! `4xx` discipline, panic isolation, load shedding, degraded (durability
//! fail-stop) serving, and the graceful-shutdown handoff.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use swdb_core::{MetricsLevel, SemanticWebDatabase};
use swdb_durable::{FaultIo, FaultKind};
use swdb_server::{Server, ServerConfig, ServerHandle};

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "swdb-server-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One full request over a fresh connection; returns (status, full
/// response text).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "{method} {target} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

/// Writes raw bytes, reads to EOF, parses the first status line.
fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("write");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    let status: u16 = out
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, out)
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(600),
        write_timeout: Duration::from_millis(600),
        ..ServerConfig::default()
    }
}

fn start_default() -> ServerHandle {
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    Server::start(db, quick_config()).expect("server start")
}

#[test]
fn ingest_query_answer_health_metrics_round_trip() {
    let server = start_default();
    let addr = server.addr();

    let (status, response) = request(
        addr,
        "POST",
        "/ingest",
        "<ex:paints> <rdfs:subPropertyOf> <ex:creates> .\n\
         <ex:Picasso> <ex:paints> <ex:Guernica> .\n",
    );
    assert_eq!(status, 200, "{response}");
    assert!(body_of(&response).contains("\"inserted\": 2"));

    // The inferred triple is served from a pinned snapshot.
    let (status, response) = request(
        addr,
        "POST",
        "/query",
        "(?X, ex:creates, ?Y) <- (?X, ex:creates, ?Y)",
    );
    assert_eq!(status, 200, "{response}");
    assert!(body_of(&response).contains("<ex:Picasso> <ex:creates> <ex:Guernica>"));
    assert!(response.contains("x-swdb-epoch:"));
    assert!(response.contains("x-swdb-degraded: false"));

    let (status, response) = request(
        addr,
        "POST",
        "/answer?semantics=merge",
        "(?X, ex:creates, ?Y) <- (?X, ex:creates, ?Y)",
    );
    assert_eq!(status, 200, "{response}");
    assert!(body_of(&response).contains("\"answers\": 1"));
    assert!(body_of(&response).contains("\"non_minimal\": false"));

    let (status, response) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert!(body_of(&response).contains("\"asserted_triples\": 2"));

    let (status, response) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body_of(&response).contains("\"server_requests\""));
    assert!(body_of(&response).contains("\"snapshots_published\""));

    // Removal unwinds the answer.
    let (status, _) = request(
        addr,
        "POST",
        "/remove",
        "<ex:Picasso> <ex:paints> <ex:Guernica> .\n",
    );
    assert_eq!(status, 200);
    let (status, response) = request(
        addr,
        "POST",
        "/query",
        "(?X, ex:creates, ?Y) <- (?X, ex:creates, ?Y)",
    );
    assert_eq!(status, 200);
    assert!(!body_of(&response).contains("ex:Guernica"));

    server.shutdown();
}

#[test]
fn protocol_violations_get_the_right_4xx() {
    let server = start_default();
    let addr = server.addr();

    let (status, _) = request(addr, "GET", "/no-such-endpoint", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/ingest", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "POST", "/ingest", "this is not n-triples");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/query", "this is not a query");
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/query?semantics=bogus",
        "(?X, ex:p, ?X) <- (?X, ex:p, ?X)",
    );
    assert_eq!(status, 400);

    let (status, _) = send_raw(addr, b"NONSENSE\r\n\r\n");
    assert_eq!(status, 400, "malformed request line");
    let (status, _) = send_raw(
        addr,
        b"POST /ingest HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 501, "chunked is declined");
    let (status, _) = send_raw(
        addr,
        b"POST /ingest HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
    );
    assert_eq!(status, 413, "body over the cap");
    let huge_header = format!(
        "GET /health HTTP/1.1\r\nx-filler: {}\r\n\r\n",
        "a".repeat(64 << 10)
    );
    let (status, _) = send_raw(addr, huge_header.as_bytes());
    assert_eq!(status, 431, "head over the cap");

    // After all that abuse the server still serves.
    let (status, _) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_at_the_read_deadline() {
    let server = start_default();
    let addr = server.addr();
    let t0 = std::time::Instant::now();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Drip half a request and then stall.
    stream.write_all(b"GET /health HT").unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 408"),
        "expected 408 cut-off, got: {out:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "the deadline must fire promptly"
    );
    let snapshot = server.metrics().snapshot();
    assert!(
        snapshot
            .counters
            .get("server_timeouts")
            .copied()
            .unwrap_or(0)
            >= 1
    );
    server.shutdown();
}

#[test]
fn keep_alive_pipelining_serves_back_to_back_requests() {
    let server = start_default();
    let addr = server.addr();
    let one = "GET /health HTTP/1.1\r\nhost: t\r\n\r\n";
    let two = format!("{one}{one}");
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(two.as_bytes()).unwrap();
    // Both pipelined requests are answered on the one connection; it then
    // idles out at the read deadline (and may close with a final 408).
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert_eq!(
        out.matches("HTTP/1.1 200").count(),
        2,
        "both pipelined requests must be answered: {out:?}"
    );
    server.shutdown();
}

#[test]
fn a_panicking_handler_costs_one_connection_never_a_worker() {
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    let config = ServerConfig {
        workers: 2,
        enable_test_endpoints: true,
        ..quick_config()
    };
    let server = Server::start(db, config).expect("server start");
    let addr = server.addr();

    // More deliberate panics than workers: if a panic killed its worker,
    // the pool would be gone after two.
    for _ in 0..6 {
        let (_, response) = request(addr, "POST", "/panic", "");
        assert!(
            !response.contains("HTTP/1.1 200"),
            "a panicked handler must not answer 200"
        );
    }
    let (status, _) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200, "the pool must survive every panic");
    let snapshot = server.metrics().snapshot();
    assert_eq!(
        snapshot.counters.get("server_panics").copied().unwrap_or(0),
        6
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::start(db, config).expect("server start");
    let addr = server.addr();

    // Occupy the single worker with a stalled request, fill the
    // depth-one queue with a second connection, then watch the third
    // get shed.
    let mut stall = TcpStream::connect(addr).unwrap();
    stall.write_all(b"GET /health HT").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let mut queued = TcpStream::connect(addr).unwrap();
    queued.write_all(b"GET").unwrap();
    std::thread::sleep(Duration::from_millis(200));

    let (status, response) = request(addr, "GET", "/health", "");
    assert_eq!(status, 503, "{response}");
    assert!(response.contains("retry-after:"));
    let snapshot = server.metrics().snapshot();
    assert!(snapshot.counters.get("server_shed").copied().unwrap_or(0) >= 1);
    drop(stall);
    drop(queued);
    server.shutdown();
}

#[test]
fn durability_fail_stop_degrades_to_503_writes_200_reads() {
    let dir = tmp_dir("degraded");
    let fault = FaultIo::new();
    let mut db = SemanticWebDatabase::new();
    db.set_metrics_level(MetricsLevel::Counters);
    db.persist_to_with_io(&dir, Arc::new(fault.clone()))
        .expect("attach durability");
    let server = Server::start(db, quick_config()).expect("server start");
    let addr = server.addr();

    let (status, _) = request(addr, "POST", "/ingest", "<ex:a> <ex:p> <ex:b> .\n");
    assert_eq!(status, 200, "durable write while healthy");

    // The next WAL append fails: the write that hits it still succeeds in
    // memory (fail-stop detaches the layer), then every later write is
    // refused and every read keeps serving.
    fault.arm(0, FaultKind::Fail);
    let (status, _) = request(addr, "POST", "/ingest", "<ex:a> <ex:p> <ex:c> .\n");
    assert_eq!(
        status, 200,
        "the detaching write itself is applied in memory"
    );
    fault.disarm();

    let (status, response) = request(addr, "POST", "/ingest", "<ex:a> <ex:p> <ex:d> .\n");
    assert_eq!(
        status, 503,
        "writes after fail-stop are refused: {response}"
    );
    assert!(response.contains("retry-after:"));
    let (status, response) = request(addr, "POST", "/query", "(?X, ex:p, ?Y) <- (?X, ex:p, ?Y)");
    assert_eq!(status, 200, "reads keep serving after fail-stop");
    assert!(body_of(&response).contains("<ex:b>"));

    // The detach is observable in the metrics snapshot.
    let (_, response) = request(addr, "GET", "/metrics", "");
    assert!(body_of(&response).contains("\"durability_detached\": 1"));
    assert!(body_of(&response).contains("durability_error"));

    let db = server.shutdown();
    assert!(db.durability_error().is_some());

    // The directory still recovers to the last durably-acknowledged state:
    // the first ingest survived, the detaching and refused ones did not.
    let recovered = SemanticWebDatabase::open(&dir).expect("reopen");
    assert_eq!(recovered.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_rotates_and_hands_the_store_back() {
    let dir = tmp_dir("shutdown");
    let mut db = SemanticWebDatabase::new();
    db.persist_to(&dir).expect("attach durability");
    let server = Server::start(db, quick_config()).expect("server start");
    let addr = server.addr();
    let (status, _) = request(addr, "POST", "/ingest", "<ex:a> <ex:p> <ex:b> .\n");
    assert_eq!(status, 200);

    let db = server.shutdown();
    assert_eq!(db.len(), 1);
    assert!(db.is_durable(), "shutdown must not detach a healthy layer");
    assert_eq!(
        db.wal_records(),
        0,
        "the final snapshot_now rotation truncates the WAL"
    );
    drop(db);
    let recovered = SemanticWebDatabase::open(&dir).expect("reopen");
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered.closure(), recovered.closure_recomputed());
    let _ = std::fs::remove_dir_all(&dir);
}
