//! A [`TripleStore`] bundled with its incrementally maintained RDFS closure.
//!
//! This is the type an application holds when it wants closure-aware reads
//! under mutation: `insert`/`remove` keep both the asserted store and the
//! materialized `RDFS-cl(G)` up to date (via [`DeltaClosure`]), and pattern
//! scans can be answered from either side. The asserted store and the
//! closure share one dictionary, so a term has the same id in both.

use swdb_model::{Graph, Iri, Term, Triple};
use swdb_store::{IdPattern, IdTriple, TripleStore};

use crate::delta::DeltaClosure;
use crate::rules::Vocabulary;

/// The id-level net effect of one mutation on a [`MaterializedStore`]:
/// which base triples were asserted/retracted and which triples entered or
/// left the maintained closure. This is what downstream incremental
/// structures (the facade's evaluation-index core engine) consume to stay
/// in step without recomputing anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClosureDelta {
    /// Ids of the base triples this mutation asserted or retracted (empty
    /// when the mutation was a no-op on the asserted store).
    pub base: Vec<IdTriple>,
    /// Triples that entered `RDFS-cl(G)`.
    pub added: Vec<IdTriple>,
    /// Triples that left `RDFS-cl(G)`.
    pub removed: Vec<IdTriple>,
}

/// A triple store whose RDFS closure is maintained incrementally.
#[derive(Clone, Debug)]
pub struct MaterializedStore {
    store: TripleStore,
    engine: DeltaClosure,
}

impl Default for MaterializedStore {
    fn default() -> Self {
        MaterializedStore::new()
    }
}

impl MaterializedStore {
    /// Creates an empty store; its closure is the five rule-(9) axioms.
    pub fn new() -> Self {
        let mut store = TripleStore::new();
        let vocab = Vocabulary {
            sp: store.intern(&Term::iri(swdb_model::rdfs::SP)),
            sc: store.intern(&Term::iri(swdb_model::rdfs::SC)),
            ty: store.intern(&Term::iri(swdb_model::rdfs::TYPE)),
            dom: store.intern(&Term::iri(swdb_model::rdfs::DOM)),
            range: store.intern(&Term::iri(swdb_model::rdfs::RANGE)),
        };
        let mut engine = DeltaClosure::new(vocab);
        engine.sync_terms(store.dictionary());
        MaterializedStore { store, engine }
    }

    /// Creates an empty store whose closure maintenance may use up to
    /// `threads` worker threads (see [`MaterializedStore::set_threads`]).
    pub fn with_threads(threads: usize) -> Self {
        let mut materialized = MaterializedStore::new();
        materialized.set_threads(threads);
        materialized
    }

    /// Sets the worker-thread ceiling for closure propagation and DRed
    /// cascades. `1` (the default) runs the original sequential schedule;
    /// higher counts run the round-based sharded schedule of
    /// `swdb_reason::parallel`, which reaches the identical closure — the
    /// differential tests sweep thread counts to pin this.
    pub fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    /// The configured worker-thread ceiling.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Attaches a metrics handle to the closure engine (see
    /// [`DeltaClosure::set_metrics`]). The handle is shared: a caller that
    /// keeps a clone observes rounds, per-rule firings, frontier sizes and
    /// closure growth as mutations run. The default handle is `Off`, which
    /// reduces every instrumentation site to a relaxed flag load.
    pub fn set_metrics(&mut self, metrics: swdb_obs::Metrics) {
        self.engine.set_metrics(metrics);
    }

    /// The metrics handle observing closure maintenance.
    pub fn metrics(&self) -> &swdb_obs::Metrics {
        self.engine.metrics()
    }

    /// Builds a store (and closure) from a graph, using the batched
    /// propagation path.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut materialized = MaterializedStore::new();
        materialized.insert_graph(graph);
        materialized
    }

    /// Rebuilds a store from durability-snapshot parts: the dictionary's
    /// terms **in id order** (re-interning sequentially reproduces the
    /// identical ids — the dictionary is append-only and never recycles),
    /// the asserted base id-triples, and the maintained closure id-triples,
    /// adopted verbatim via [`DeltaClosure::adopt_closure`] — **no closure
    /// propagation runs**. The caller (the durability layer) is responsible
    /// for the three parts being a consistent checksummed unit.
    pub fn restore(terms: &[Term], base: &[IdTriple], closure: &[IdTriple]) -> Self {
        let mut store = TripleStore::new();
        for term in terms {
            store.intern(term);
        }
        // The five vocabulary terms are interned by `new()` before anything
        // else, so any snapshot's term list already contains them; interning
        // again just resolves their ids.
        let vocab = Vocabulary {
            sp: store.intern(&Term::iri(swdb_model::rdfs::SP)),
            sc: store.intern(&Term::iri(swdb_model::rdfs::SC)),
            ty: store.intern(&Term::iri(swdb_model::rdfs::TYPE)),
            dom: store.intern(&Term::iri(swdb_model::rdfs::DOM)),
            range: store.intern(&Term::iri(swdb_model::rdfs::RANGE)),
        };
        let mut engine = DeltaClosure::new(vocab);
        engine.sync_terms(store.dictionary());
        engine.adopt_closure(closure.iter().copied());
        for &t in base {
            store.insert_id_triple(t);
        }
        MaterializedStore { store, engine }
    }

    /// The asserted triples.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Number of asserted triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` if nothing is asserted (the closure still holds the
    /// axioms).
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of triples in the maintained closure.
    pub fn closure_len(&self) -> usize {
        self.engine.len()
    }

    /// Inserts a triple; returns `true` if it was newly asserted. The
    /// closure is extended by semi-naive delta propagation.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        !self.insert_with_delta(triple).base.is_empty()
    }

    /// Inserts a triple, reporting the closure delta: the id triples that
    /// entered `RDFS-cl(G)` as a consequence.
    pub fn insert_with_delta(&mut self, triple: &Triple) -> ClosureDelta {
        let mut delta = ClosureDelta::default();
        let (ids, added) = self.store.insert_with_ids(triple);
        if added {
            delta.base.push(ids);
            self.engine.sync_terms(self.store.dictionary());
            self.engine.insert_batch_logged([ids], &mut delta.added);
        }
        delta
    }

    /// Inserts every triple of a graph, extending the closure in **one**
    /// frontier-batched semi-naive round (see
    /// [`DeltaClosure::insert_batch`]): the whole batch is interned and
    /// asserted first, terms are synced once, and a single propagation
    /// fixpoint runs with all fresh triples as the initial frontier — bulk
    /// loads amortize the per-delta index probes instead of paying a
    /// propagation round per triple. Returns the number of newly asserted
    /// triples.
    pub fn insert_graph(&mut self, graph: &Graph) -> usize {
        self.insert_graph_with_delta(graph).base.len()
    }

    /// Bulk insert ([`MaterializedStore::insert_graph`]) reporting the
    /// closure delta. `base` holds the newly *asserted* ids — a triple that
    /// was already derivable still counts there even though the closure did
    /// not grow by it.
    pub fn insert_graph_with_delta(&mut self, graph: &Graph) -> ClosureDelta {
        let mut delta = ClosureDelta::default();
        for t in graph.iter() {
            let (ids, added) = self.store.insert_with_ids(t);
            if added {
                delta.base.push(ids);
            }
        }
        self.engine.sync_terms(self.store.dictionary());
        self.engine
            .insert_batch_logged(delta.base.iter().copied(), &mut delta.added);
        delta
    }

    /// Interns every term of a graph into the shared dictionary — nothing
    /// is asserted and no closure propagation runs — and returns the
    /// graph's id triples. The substrate of *transient* premise
    /// evaluation: the ids are durable (the dictionary is append-only, so
    /// interning perturbs no index), while the store and the maintained
    /// closure stay untouched.
    pub fn intern_graph(&mut self, graph: &Graph) -> Vec<IdTriple> {
        let ids = graph
            .iter()
            .map(|t| {
                let s = self.store.intern(t.subject());
                let p = self.store.intern(&Term::Iri(t.predicate().clone()));
                let o = self.store.intern(t.object());
                (s, p, o)
            })
            .collect();
        self.engine.sync_terms(self.store.dictionary());
        ids
    }

    /// Previews the closure growth of transiently inserting the given id
    /// triples — `RDFS-cl(G ∪ Δ) − RDFS-cl(G)` — without perturbing the
    /// maintained closure (see [`DeltaClosure::preview_insert_batch`]).
    pub fn preview_insert(&self, ids: &[IdTriple]) -> Vec<IdTriple> {
        self.engine.preview_insert_batch(ids.iter().copied())
    }

    /// Removes a triple; returns `true` if it was asserted. The closure is
    /// maintained by DRed overdelete/rederive.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        !self.remove_with_delta(triple).base.is_empty()
    }

    /// Removes a triple, reporting the closure delta: the id triples that
    /// left `RDFS-cl(G)` for good (a retracted triple that is still
    /// derivable from the surviving assertions does not appear).
    pub fn remove_with_delta(&mut self, triple: &Triple) -> ClosureDelta {
        let mut delta = ClosureDelta::default();
        if let Some(ids) = self.store.remove_with_ids(triple) {
            delta.base.push(ids);
            self.engine
                .delete_logged(ids, &self.store, &mut delta.removed);
        }
        delta
    }

    /// Is the triple asserted?
    pub fn contains(&self, triple: &Triple) -> bool {
        self.store.contains(triple)
    }

    /// Is the triple in `RDFS-cl(G)`? Constant-time-ish: id resolution plus
    /// one indexed membership probe, never a closure computation.
    pub fn closure_contains(&self, triple: &Triple) -> bool {
        self.resolve(triple)
            .is_some_and(|ids| self.engine.contains(ids))
    }

    fn resolve(&self, triple: &Triple) -> Option<IdTriple> {
        Some((
            self.store.id_of(triple.subject())?,
            self.store.id_of(&Term::Iri(triple.predicate().clone()))?,
            self.store.id_of(triple.object())?,
        ))
    }

    /// Scans the closure with an id-pattern.
    pub fn scan_closure_ids(&self, pattern: IdPattern) -> Vec<IdTriple> {
        self.engine.scan(pattern)
    }

    /// Counts the closure triples matching an id-pattern without
    /// materializing them — the selectivity probe the id-space query
    /// engine orders its joins by.
    pub fn closure_candidate_count(&self, pattern: IdPattern) -> usize {
        self.engine.candidate_count(pattern)
    }

    /// Read access to the maintained closure's SPO/POS/OSP index. Together
    /// with `store().dictionary()` this is the substrate the id-space query
    /// engine (`swdb_query::exec`) executes premise-free queries against.
    pub fn closure_index(&self) -> &swdb_store::IdIndex {
        self.engine.index()
    }

    /// Scans the closure with a term-level pattern (each position optionally
    /// bound), materialising the matches.
    pub fn scan_closure(
        &self,
        subject: Option<&Term>,
        predicate: Option<&Iri>,
        object: Option<&Term>,
    ) -> Vec<Triple> {
        let Some(pattern) = self.store.resolve_pattern(subject, predicate, object) else {
            // A bound term that was never interned matches nothing.
            return Vec::new();
        };
        self.engine
            .scan(pattern)
            .into_iter()
            .map(|ids| self.store.materialize(ids))
            .collect()
    }

    /// The asserted triples as a graph.
    pub fn to_graph(&self) -> Graph {
        self.store.to_graph()
    }

    /// The maintained closure as a graph — equal to
    /// `swdb_entailment::rdfs_closure` of the asserted graph (the property
    /// tests pin this down).
    pub fn closure_graph(&self) -> Graph {
        self.engine
            .iter()
            .map(|ids| self.store.materialize(ids))
            .collect()
    }
}

impl PartialEq for MaterializedStore {
    fn eq(&self, other: &Self) -> bool {
        self.store == other.store
    }
}

impl Eq for MaterializedStore {}

impl From<&Graph> for MaterializedStore {
    fn from(graph: &Graph) -> Self {
        MaterializedStore::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, rdfs, triple};

    fn sample() -> MaterializedStore {
        MaterializedStore::from_graph(&graph([
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:creates", rdfs::DOM, "ex:Artist"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
        ]))
    }

    #[test]
    fn closure_sees_inheritance_and_typing() {
        let m = sample();
        assert_eq!(m.len(), 3);
        assert!(m.closure_contains(&triple("ex:Picasso", "ex:creates", "ex:Guernica")));
        assert!(m.closure_contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist")));
        assert!(!m.contains(&triple("ex:Picasso", "ex:creates", "ex:Guernica")));
        assert!(m.closure_len() > m.len());
    }

    #[test]
    fn closure_scans_answer_patterns_over_inferred_triples() {
        let m = sample();
        let creators = m.scan_closure(None, Some(&Iri::new("ex:creates")), None);
        assert!(creators.contains(&triple("ex:Picasso", "ex:creates", "ex:Guernica")));
        let typed = m.scan_closure(
            Some(&Term::iri("ex:Picasso")),
            Some(&Iri::new(rdfs::TYPE)),
            None,
        );
        assert!(typed.contains(&triple("ex:Picasso", rdfs::TYPE, "ex:Artist")));
        // A term never interned matches nothing.
        assert!(m
            .scan_closure(Some(&Term::iri("ex:nobody")), None, None)
            .is_empty());
    }

    #[test]
    fn mutation_keeps_closure_in_step() {
        let mut m = sample();
        assert!(!m.closure_contains(&triple("ex:Guernica", rdfs::TYPE, "ex:Artifact")));
        m.insert(&triple("ex:creates", rdfs::RANGE, "ex:Artifact"));
        assert!(m.closure_contains(&triple("ex:Guernica", rdfs::TYPE, "ex:Artifact")));
        m.remove(&triple("ex:creates", rdfs::RANGE, "ex:Artifact"));
        assert!(!m.closure_contains(&triple("ex:Guernica", rdfs::TYPE, "ex:Artifact")));
        // A full round trip leaves the closure equal to a fresh build.
        assert_eq!(m.closure_graph(), sample().closure_graph());
    }

    #[test]
    fn empty_store_closure_is_the_axioms() {
        let m = MaterializedStore::new();
        assert!(m.is_empty());
        assert_eq!(m.closure_len(), 5);
        assert!(m.closure_contains(&triple(rdfs::SP, rdfs::SP, rdfs::SP)));
        assert_eq!(m.closure_graph().len(), 5);
    }

    #[test]
    fn batched_insert_graph_matches_triple_by_triple_propagation() {
        let g = graph([
            ("ex:Painter", rdfs::SC, "ex:Artist"),
            ("ex:Artist", rdfs::SC, "ex:Person"),
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("ex:creates", rdfs::DOM, "ex:Artist"),
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        ]);
        let mut batched = MaterializedStore::new();
        assert_eq!(batched.insert_graph(&g), g.len());
        let mut single = MaterializedStore::new();
        for t in g.iter() {
            single.insert(t);
        }
        assert_eq!(batched.closure_graph(), single.closure_graph());
        assert_eq!(batched.insert_graph(&g), 0, "re-inserting is a no-op");
    }

    #[test]
    fn insert_graph_counts_assertions_even_when_already_derived() {
        // (a, sp, c) is already in the closure via sp-transitivity, but
        // asserting it is still a base-store change and must be counted —
        // the same contract as `insert`'s return value.
        let mut m = MaterializedStore::from_graph(&graph([
            ("ex:a", rdfs::SP, "ex:b"),
            ("ex:b", rdfs::SP, "ex:c"),
        ]));
        let derived = triple("ex:a", rdfs::SP, "ex:c");
        assert!(m.closure_contains(&derived));
        assert!(!m.contains(&derived));
        assert_eq!(m.insert_graph(&graph([("ex:a", rdfs::SP, "ex:c")])), 1);
        assert!(m.contains(&derived));
    }

    #[test]
    fn closure_index_and_candidate_counts_expose_the_id_substrate() {
        let m = sample();
        let ty = m.store().id_of(&Term::iri(rdfs::TYPE)).unwrap();
        let pattern = (None, Some(ty), None);
        assert_eq!(
            m.closure_candidate_count(pattern),
            m.scan_closure_ids(pattern).len()
        );
        assert_eq!(m.closure_index().len(), m.closure_len());
    }

    #[test]
    fn reported_deltas_replay_the_closure_exactly() {
        // A shadow set maintained purely from the reported deltas must
        // track the closure index through inserts, bulk loads and DRed
        // deletions — including the cascade cases.
        let mut m = MaterializedStore::new();
        let mut shadow: std::collections::BTreeSet<IdTriple> =
            m.scan_closure_ids((None, None, None)).into_iter().collect();
        let apply = |m: &mut MaterializedStore,
                     shadow: &mut std::collections::BTreeSet<IdTriple>,
                     delta: ClosureDelta| {
            for t in delta.added {
                assert!(shadow.insert(t), "delta re-added a live triple");
            }
            for t in delta.removed {
                assert!(shadow.remove(&t), "delta removed a dead triple");
            }
            assert_eq!(
                m.scan_closure_ids((None, None, None))
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>(),
                *shadow,
                "shadow diverged from the maintained closure"
            );
        };
        let d = m.insert_graph_with_delta(&graph([
            ("ex:p", rdfs::SP, rdfs::SC),
            ("ex:A", "ex:p", "ex:B"),
            ("ex:B", rdfs::SC, "ex:C"),
        ]));
        apply(&mut m, &mut shadow, d);
        let d = m.insert_with_delta(&triple("ex:x", rdfs::TYPE, "ex:A"));
        apply(&mut m, &mut shadow, d);
        // Re-inserting produces an empty delta.
        let d = m.insert_with_delta(&triple("ex:x", rdfs::TYPE, "ex:A"));
        assert_eq!(d, ClosureDelta::default());
        apply(&mut m, &mut shadow, d);
        // Retracting the re-routing edge unwinds the cascade.
        let d = m.remove_with_delta(&triple("ex:p", rdfs::SP, rdfs::SC));
        assert!(!d.removed.is_empty());
        apply(&mut m, &mut shadow, d);
        // Removing a triple that is still derivable reports no closure loss.
        let d = m.insert_with_delta(&triple("ex:A", rdfs::SC, "ex:A"));
        apply(&mut m, &mut shadow, d);
        let d = m.remove_with_delta(&triple("ex:A", rdfs::SC, "ex:A"));
        assert_eq!(d.base.len(), 1);
        assert!(
            d.removed.is_empty(),
            "reflexive sc survives via the closure rules"
        );
        apply(&mut m, &mut shadow, d);
    }

    #[test]
    fn preview_matches_the_committed_delta_and_leaves_the_closure_alone() {
        let mut m = sample();
        let premise = graph([
            ("ex:sculpts", rdfs::SP, "ex:creates"),
            ("ex:Rodin", "ex:sculpts", "ex:TheThinker"),
        ]);
        let before = m.closure_graph();
        let ids = m.intern_graph(&premise);
        assert_eq!(ids.len(), 2);
        let mut previewed = m.preview_insert(&ids);
        assert_eq!(
            m.closure_graph(),
            before,
            "neither interning nor previewing may touch the closure"
        );
        // The preview must equal the added-side of actually committing.
        let mut committed = m.insert_graph_with_delta(&premise).added;
        previewed.sort_unstable();
        committed.sort_unstable();
        assert_eq!(previewed, committed);
        // The preview saw the cross product: the premise's data triple
        // joined with the premise's own schema *and* the stored schema.
        assert!(m.closure_contains(&triple("ex:Rodin", "ex:creates", "ex:TheThinker")));
        assert!(m.closure_contains(&triple("ex:Rodin", rdfs::TYPE, "ex:Artist")));
    }

    #[test]
    fn preview_of_already_derived_triples_is_empty() {
        let mut m = sample();
        let ids = m.intern_graph(&graph([("ex:Picasso", "ex:creates", "ex:Guernica")]));
        assert!(
            m.preview_insert(&ids).is_empty(),
            "a triple already in the closure adds nothing"
        );
    }

    #[test]
    fn restore_reproduces_store_closure_and_ids_without_propagation() {
        let mut m = sample();
        m.insert(&triple("ex:a", "ex:p", "_:X"));
        let terms: Vec<Term> = m
            .store()
            .dictionary()
            .iter()
            .map(|(_, t)| t.clone())
            .collect();
        let base: Vec<IdTriple> = m.store().iter_ids().collect();
        let closure: Vec<IdTriple> = m.closure_index().iter().collect();
        let restored = MaterializedStore::restore(&terms, &base, &closure);
        // Identical ids: the dictionary re-interns in id order.
        for (id, term) in m.store().dictionary().iter() {
            assert_eq!(restored.store().id_of(term), Some(id));
        }
        assert_eq!(restored.to_graph(), m.to_graph());
        let a: Vec<IdTriple> = m.closure_index().iter().collect();
        let b: Vec<IdTriple> = restored.closure_index().iter().collect();
        assert_eq!(a, b, "closure adopted bit-identically");
        // And the restored engine keeps maintaining increments correctly.
        let mut m2 = restored;
        let d = m2.insert_with_delta(&triple("ex:sculpts", rdfs::SP, "ex:creates"));
        assert!(!d.base.is_empty());
        let mut reference = sample();
        reference.insert(&triple("ex:a", "ex:p", "_:X"));
        reference.insert(&triple("ex:sculpts", rdfs::SP, "ex:creates"));
        assert_eq!(m2.closure_graph(), reference.closure_graph());
    }

    #[test]
    fn from_graph_round_trips_assertions() {
        let g = graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]);
        let m = MaterializedStore::from_graph(&g);
        assert_eq!(m.to_graph(), g);
        assert_eq!(MaterializedStore::from(&g), m);
    }
}
