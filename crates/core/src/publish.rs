//! The publication layer: immutable, epoch-stamped MVCC snapshots of the
//! evaluation state, atomically swapped by the writer and pinned by any
//! number of reader threads.
//!
//! The facade ([`SemanticWebDatabase`]) is a single-owner value: every read
//! path takes `&mut self` (the evaluation index builds lazily), so shared
//! serving would force readers and writers through one lock. This module
//! splits the read side off: [`SemanticWebDatabase::publish`] clones the
//! two structures query answering actually needs — the append-only
//! [`Dictionary`] and the evaluation [`IdIndex`] — into an immutable
//! [`PublishedSnapshot`] behind an `Arc`, and swaps it into a shared slot.
//! A [`SnapshotReader`] pins the current snapshot with one brief read-lock
//! acquisition (held only for the `Arc` clone — the std-only equivalent of
//! an arc-swap), after which the reader answers queries with **no further
//! coordination whatsoever**: a pinned snapshot is immutable, so
//! `answer`/`explain` on it can never block — or be blocked by —
//! `insert`/`remove` on the live database.
//!
//! What a snapshot can serve is exactly what the dictionary + index pair
//! determines: premise-free queries (the hot path) and premise queries
//! eligible for the Proposition 5.9 expansion. Premise queries that need
//! the overlay mechanism require the mutable reasoner and return
//! [`SnapshotQueryError::NeedsWriter`] — the serving layer falls back to
//! the locked facade for those.
//!
//! The degraded flags ride the snapshot: `non_minimal` (core budget
//! exhausted at publication time — answers sound and complete, possibly
//! redundant) and `durability_detached` (the fail-stop record was set), so
//! a reader reports the status of the state it is *actually answering
//! from*, not the writer's current state.
//!
//! [`SemanticWebDatabase`]: crate::SemanticWebDatabase
//! [`SemanticWebDatabase::publish`]: crate::SemanticWebDatabase::publish

use std::fmt;
use std::sync::{Arc, RwLock};

use swdb_model::Graph;
use swdb_obs::{Counter, Hist, Metrics, MetricsLevel};
use swdb_query::{Explain, Query, Semantics};
use swdb_store::{Dictionary, IdIndex};

use crate::database::{expansion_eligible, EntailmentRegime};

/// Why a query cannot be answered on a pinned snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotQueryError {
    /// The query's premise needs the overlay mechanism (closure preview +
    /// scoped core diff), which lives in the mutable facade — answer it
    /// through [`SemanticWebDatabase::answer`](crate::SemanticWebDatabase::answer)
    /// on the live database instead.
    NeedsWriter,
}

impl fmt::Display for SnapshotQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotQueryError::NeedsWriter => write!(
                f,
                "query needs the premise overlay, which only the live \
                 (writable) database can compute — not servable from an \
                 immutable snapshot"
            ),
        }
    }
}

impl std::error::Error for SnapshotQueryError {}

/// An immutable, epoch-stamped snapshot of the evaluation state: everything
/// a reader needs to answer premise-free and expansion-eligible queries,
/// plus the degraded flags in force when it was published. Values are
/// created by [`SemanticWebDatabase::publish`](crate::SemanticWebDatabase::publish)
/// and shared as `Arc<PublishedSnapshot>`; every method takes `&self`, so
/// any number of threads query one snapshot concurrently.
#[derive(Debug)]
pub struct PublishedSnapshot {
    /// Publication sequence number: 0 is the empty placeholder a fresh
    /// slot holds, real publications count from 1.
    epoch: u64,
    regime: EntailmentRegime,
    /// Asserted triples in the database at publication time.
    asserted: usize,
    non_minimal: bool,
    durability_detached: bool,
    dictionary: Dictionary,
    index: IdIndex,
    metrics: Metrics,
    /// The snapshot's own compiled plan + expansion cache
    /// (`swdb_query::plan`). The snapshot is immutable, so — unlike the
    /// writer's cache — nothing ever invalidates it: every repeated query
    /// shape served from this snapshot reuses its plan for the snapshot's
    /// whole lifetime.
    plan_cache: swdb_query::PlanCache,
}

impl PublishedSnapshot {
    /// Assembles a snapshot (crate-internal: the facade's `publish` is the
    /// only constructor).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        epoch: u64,
        regime: EntailmentRegime,
        asserted: usize,
        non_minimal: bool,
        durability_detached: bool,
        dictionary: Dictionary,
        index: IdIndex,
        metrics: Metrics,
        plan_cache: swdb_query::PlanCache,
    ) -> Self {
        PublishedSnapshot {
            epoch,
            regime,
            asserted,
            non_minimal,
            durability_detached,
            dictionary,
            index,
            metrics,
            plan_cache,
        }
    }

    /// The publication epoch (monotonically increasing; 0 only on the
    /// pre-publication placeholder).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The entailment regime the snapshot was published under.
    pub fn regime(&self) -> EntailmentRegime {
        self.regime
    }

    /// Asserted triples in the database at publication time.
    pub fn asserted_triples(&self) -> usize {
        self.asserted
    }

    /// Triples in the snapshot's evaluation index (`nf(D)` under RDFS,
    /// `core(D)` under simple entailment, as of publication).
    pub fn evaluation_triples(&self) -> usize {
        self.index.len()
    }

    /// `true` when a core-budget exhaustion had left the published
    /// evaluation index a sound but possibly non-minimal superset of the
    /// true core at publication time. Answers from this snapshot are still
    /// sound and complete; they may mention redundant blanks.
    pub fn non_minimal(&self) -> bool {
        self.non_minimal
    }

    /// `true` when the database's durability layer had fail-stopped by
    /// publication time: reads (this snapshot) are fine, but writes on the
    /// live database are no longer durable.
    pub fn durability_detached(&self) -> bool {
        self.durability_detached
    }

    /// The dictionary the snapshot's index is encoded against.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The snapshot's evaluation index.
    pub fn index(&self) -> &IdIndex {
        &self.index
    }

    /// Can [`PublishedSnapshot::answer`] serve this query? Exactly the
    /// premise-free and expansion-eligible mechanisms — both need only the
    /// dictionary + index pair the snapshot carries.
    pub fn supports(&self, query: &Query) -> bool {
        query.is_premise_free() || expansion_eligible(self.regime, query)
    }

    /// Answers a query against this snapshot — entirely in id space, with
    /// no access to (and therefore no contention on) the live database.
    /// Returns [`SnapshotQueryError::NeedsWriter`] for overlay-mechanism
    /// premise queries (see [`PublishedSnapshot::supports`]).
    pub fn answer(&self, query: &Query, semantics: Semantics) -> Result<Graph, SnapshotQueryError> {
        let metrics = &self.metrics;
        let t0 = metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let out = self.answer_inner(query, semantics, metrics)?;
        if let Some(t0) = t0 {
            metrics.record(Hist::SpanQueryAnswerNs, t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    fn answer_inner(
        &self,
        query: &Query,
        semantics: Semantics,
        metrics: &Metrics,
    ) -> Result<Graph, SnapshotQueryError> {
        if query.is_premise_free() {
            return Ok(swdb_query::planned_answer(
                &self.plan_cache,
                query,
                &self.dictionary,
                &self.index,
                semantics,
                metrics,
            ));
        }
        if expansion_eligible(self.regime, query) {
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, metrics);
                return Ok(swdb_query::planned_answer_union(
                    &self.plan_cache,
                    &members,
                    &self.dictionary,
                    &self.index,
                    semantics,
                    metrics,
                ));
            }
            let members = swdb_query::premise_free_expansion(query);
            if metrics.on(MetricsLevel::Counters) {
                metrics.count(Counter::QueryCompiled, 1);
                let metered = swdb_query::MeteredTarget::new(&self.index);
                let answer = swdb_query::id_answer_union_of_queries(
                    &members,
                    &self.dictionary,
                    &metered,
                    semantics,
                );
                metered.flush(metrics);
                metrics.count(Counter::QueryAnswers, answer.len() as u64);
                return Ok(answer);
            }
            return Ok(swdb_query::id_answer_union_of_queries(
                &members,
                &self.dictionary,
                &self.index,
                semantics,
            ));
        }
        Err(SnapshotQueryError::NeedsWriter)
    }

    /// [`PublishedSnapshot::answer`] plus the snapshot's `non_minimal`
    /// flag — the analogue of
    /// [`SemanticWebDatabase::answer_with_status`](crate::SemanticWebDatabase::answer_with_status),
    /// except the flag describes the substrate actually answered from (this
    /// snapshot), not the live database's current state.
    pub fn answer_with_status(
        &self,
        query: &Query,
        semantics: Semantics,
    ) -> Result<(Graph, bool), SnapshotQueryError> {
        Ok((self.answer(query, semantics)?, self.non_minimal))
    }

    /// The pre-answer (list of single answers) over this snapshot.
    pub fn pre_answers(&self, query: &Query) -> Result<Vec<Graph>, SnapshotQueryError> {
        let metrics = &self.metrics;
        if query.is_premise_free() {
            return Ok(swdb_query::planned_pre_answers(
                &self.plan_cache,
                query,
                &self.dictionary,
                &self.index,
                metrics,
            ));
        }
        if expansion_eligible(self.regime, query) {
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, metrics);
                return Ok(swdb_query::planned_pre_answers_union(
                    &self.plan_cache,
                    &members,
                    &self.dictionary,
                    &self.index,
                    metrics,
                ));
            }
            let members = swdb_query::premise_free_expansion(query);
            return Ok(swdb_query::id_pre_answers_of_queries(
                &members,
                &self.dictionary,
                &self.index,
            ));
        }
        Err(SnapshotQueryError::NeedsWriter)
    }

    /// `true` if the query has no answer over this snapshot (early-exits on
    /// the first witness).
    pub fn answer_is_empty(&self, query: &Query) -> Result<bool, SnapshotQueryError> {
        let metrics = &self.metrics;
        if query.is_premise_free() {
            return Ok(swdb_query::planned_answer_is_empty(
                &self.plan_cache,
                query,
                &self.dictionary,
                &self.index,
                metrics,
            ));
        }
        if expansion_eligible(self.regime, query) {
            if self.plan_cache.enabled() {
                let (members, _) = swdb_query::expansion_members(&self.plan_cache, query, metrics);
                return Ok(swdb_query::planned_union_is_empty(
                    &self.plan_cache,
                    &members,
                    &self.dictionary,
                    &self.index,
                    metrics,
                ));
            }
            let members = swdb_query::premise_free_expansion(query);
            return Ok(swdb_query::id_union_answer_is_empty(
                &members,
                &self.dictionary,
                &self.index,
            ));
        }
        Err(SnapshotQueryError::NeedsWriter)
    }

    /// Explains how this snapshot executes the query (mechanism, compiled
    /// patterns, executed join order, probe/binding/answer counts — the
    /// same contract as
    /// [`SemanticWebDatabase::explain`](crate::SemanticWebDatabase::explain)),
    /// with `non_minimal` reporting the snapshot's flag.
    pub fn explain(
        &self,
        query: &Query,
        semantics: Semantics,
    ) -> Result<Explain, SnapshotQueryError> {
        let metrics = &self.metrics;
        if query.is_premise_free() {
            let mut explain = swdb_query::planned_explain(
                &self.plan_cache,
                query,
                &self.dictionary,
                &self.index,
                semantics,
                metrics,
            );
            explain.non_minimal = self.non_minimal;
            return Ok(explain);
        }
        if expansion_eligible(self.regime, query) {
            let mut explain = if self.plan_cache.enabled() {
                let (members, hit) =
                    swdb_query::expansion_members(&self.plan_cache, query, metrics);
                swdb_query::planned_explain_union(
                    &self.plan_cache,
                    &members,
                    &self.dictionary,
                    &self.index,
                    semantics,
                    metrics,
                    hit,
                )
            } else {
                let members = swdb_query::premise_free_expansion(query);
                let mut merged: Option<Explain> = None;
                for member in &members {
                    let e = swdb_query::explain_premise_free(
                        member,
                        &self.dictionary,
                        &self.index,
                        semantics,
                    );
                    match merged.as_mut() {
                        None => merged = Some(e),
                        Some(m) => {
                            m.probes += e.probes;
                            m.bindings += e.bindings;
                            m.answers += e.answers;
                            m.truncated |= e.truncated;
                        }
                    }
                }
                let mut explain = merged.unwrap_or_else(|| Explain::empty("expansion", semantics));
                explain.mechanism = "expansion";
                explain.members = members.len();
                explain
            };
            explain.non_minimal = self.non_minimal;
            return Ok(explain);
        }
        Err(SnapshotQueryError::NeedsWriter)
    }
}

/// The shared slot a database publishes into: one `RwLock` around the
/// current `Arc`. The write lock is held only for the pointer swap and the
/// read lock only for the `Arc` clone — neither section ever computes — so
/// this is the std-only stand-in for an atomic arc-swap: readers pin in
/// O(1) and then run entirely on their pinned value.
#[derive(Debug)]
pub(crate) struct PublishSlot {
    current: RwLock<Arc<PublishedSnapshot>>,
}

impl PublishSlot {
    /// A fresh slot holding the empty epoch-0 placeholder.
    pub(crate) fn empty(metrics: Metrics) -> Self {
        PublishSlot {
            current: RwLock::new(Arc::new(PublishedSnapshot::new(
                0,
                EntailmentRegime::default(),
                0,
                false,
                false,
                Dictionary::default(),
                IdIndex::new(),
                metrics,
                swdb_query::PlanCache::from_env(),
            ))),
        }
    }

    /// Atomically replaces the current snapshot. Lock poisoning is
    /// recovered from: a panic elsewhere never holds this lock across
    /// user code, so the stored value is always a fully published snapshot.
    pub(crate) fn swap(&self, next: Arc<PublishedSnapshot>) {
        let mut slot = self.current.write().unwrap_or_else(|e| e.into_inner());
        *slot = next;
    }

    /// Clones out the current snapshot.
    pub(crate) fn pin(&self) -> Arc<PublishedSnapshot> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A clonable, `Send + Sync` reader handle onto a database's publication
/// slot, detached from the facade's `&mut` discipline: hand one to each
/// serving thread, [`SnapshotReader::pin`] the current snapshot per
/// request, and answer on the pin. Created by
/// [`SemanticWebDatabase::reader`](crate::SemanticWebDatabase::reader).
#[derive(Clone, Debug)]
pub struct SnapshotReader {
    slot: Arc<PublishSlot>,
}

impl SnapshotReader {
    pub(crate) fn new(slot: Arc<PublishSlot>) -> Self {
        SnapshotReader { slot }
    }

    /// The latest published snapshot, as a plain `Arc` this thread now
    /// owns: everything after the pin is coordination-free, and the pinned
    /// value stays bit-identical no matter what the writer does.
    pub fn pin(&self) -> Arc<PublishedSnapshot> {
        self.slot.pin()
    }

    /// The current publication epoch (pins internally).
    pub fn epoch(&self) -> u64 {
        self.pin().epoch()
    }
}

// The publication layer's whole point is crossing threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PublishedSnapshot>();
    assert_send_sync::<SnapshotReader>();
};
