//! End-to-end crash-safety tests for the durability layer, driven through
//! the public facade.
//!
//! The centerpiece is the **crash-point matrix**: a fixed mutation script
//! runs against a fault-injecting IO shim that interrupts the k-th
//! write-point operation — for *every* k, under each of three fault kinds
//! (clean failure, torn write, acknowledged corruption) — and every
//! interrupted run must reopen to a state identical (in term space) to an
//! uninterrupted reference database that executed some prefix of the same
//! script: the prefix through mutation `m − 1` or through `m`, where `m`
//! is the mutation the fault landed in. Nothing else is acceptable — no
//! partial mutations, no resurrections, no silently dropped earlier
//! commits. Re-applying the remaining suffix must then converge on the
//! full reference state.
//!
//! Around the matrix: a property test pinning WAL replay ≡ direct
//! mutation over random scripts, a double-crash during recovery, degraded
//! mode surviving a reopen exactly, and metrics-pinned proof that
//! recovery never recomputes the closure or re-runs a core search.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use swdb_core::durable::{FaultIo, FaultKind};
use swdb_core::{
    CoreBudget, CoreBudgetMode, EntailmentRegime, Metrics, MetricsLevel, SemanticWebDatabase,
    Semantics,
};
use swdb_model::{graph, rdfs, triple, Graph, Triple};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory; unique per test per process.
fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "swdb-durability-{tag}-{}-{seq}",
        std::process::id()
    ))
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// The logical, term-space state two databases are compared on: asserted
/// graph, maintained closure, and regime. Ids are deliberately excluded —
/// a recovered store legitimately assigns different ids than the
/// original (queries intern scratch terms that are never logged).
fn state_of(db: &SemanticWebDatabase) -> (Graph, Graph, EntailmentRegime) {
    (db.graph().clone(), db.closure(), db.regime())
}

type Step = fn(&mut SemanticWebDatabase);

/// The crash-matrix mutation script: every WAL record kind appears, plus
/// an explicit snapshot rotation mid-script so the matrix sweeps the
/// rotation fault sites too, plus RDFS schema so mutations carry
/// non-trivial closure deltas through the incremental engines.
fn script() -> Vec<Step> {
    vec![
        |db| {
            db.insert_graph(&graph([
                ("ex:p", rdfs::SP, "ex:q"),
                ("ex:q", rdfs::DOM, "ex:C"),
            ]))
        },
        |db| {
            db.insert(triple("ex:a", "ex:p", "ex:b"));
        },
        |db| {
            db.insert(triple("ex:b", "ex:p", "ex:c"));
        },
        |db| {
            let _ = db.snapshot_now();
        },
        |db| {
            db.remove(&triple("ex:a", "ex:p", "ex:b"));
        },
        |db| db.set_regime(EntailmentRegime::Simple),
        |db| {
            db.insert(triple("ex:c", "ex:q", "ex:d"));
        },
        |db| db.set_regime(EntailmentRegime::Rdfs),
        |db| {
            db.insert_graph(&graph([
                ("ex:d", "ex:p", "ex:e"),
                ("_:blank", "ex:q", "ex:d"),
            ]))
        },
    ]
}

/// Reference states: `references()[j]` is the state after executing the
/// first `j` steps on a purely in-memory database.
fn references(steps: &[Step]) -> Vec<(Graph, Graph, EntailmentRegime)> {
    let mut db = SemanticWebDatabase::new();
    let mut states = vec![state_of(&db)];
    for step in steps {
        step(&mut db);
        states.push(state_of(&db));
    }
    states
}

/// The crash-point matrix. For every write-point operation of the durable
/// run and every fault kind: run the script until the fault lands (the
/// simulated crash), drop the database, reopen the directory, and check
/// the recovered state is exactly a legal prefix of the reference run —
/// then re-apply the remaining suffix and check convergence on the final
/// reference state.
#[test]
fn crash_point_matrix_recovers_a_consistent_prefix_at_every_fault_site() {
    let steps = script();
    let refs = references(&steps);
    let total = refs.len() - 1;

    // Probe: count the write-point operations of an uninterrupted run.
    let probe_dir = scratch_dir("matrix-probe");
    let probe_io = FaultIo::new();
    let mut db = SemanticWebDatabase::new();
    db.persist_to_with_io(&probe_dir, Arc::new(probe_io.clone()))
        .expect("probe persist");
    probe_io.disarm(); // count only the script's own operations
    for step in &steps {
        step(&mut db);
    }
    assert!(db.is_durable(), "probe run must not detach");
    assert_eq!(state_of(&db), refs[total]);
    let ops = probe_io.ops();
    assert!(ops > 0, "the script must hit the disk");
    drop(db);
    // An uninterrupted reopen also lands on the final reference state.
    let reopened = SemanticWebDatabase::open(&probe_dir).expect("probe reopen");
    assert_eq!(state_of(&reopened), refs[total]);
    cleanup(&probe_dir);

    for kind in [FaultKind::Fail, FaultKind::Truncate, FaultKind::Corrupt] {
        for at in 0..ops {
            let dir = scratch_dir("matrix");
            let fault = FaultIo::new();
            let mut db = SemanticWebDatabase::new();
            db.persist_to_with_io(&dir, Arc::new(fault.clone()))
                .expect("persist before arming");
            fault.arm(at, kind);

            // Run the script until the fault lands; stopping right there
            // simulates the crash (even when the op was acknowledged, as
            // a lying disk does).
            let mut crashed_in = None;
            for (i, step) in steps.iter().enumerate() {
                step(&mut db);
                if fault.injected() > 0 {
                    crashed_in = Some(i + 1);
                    break;
                }
            }
            let m = crashed_in
                .unwrap_or_else(|| panic!("fault at op {at} ({kind:?}) never landed in {ops} ops"));
            drop(db);
            fault.disarm();

            let recovered = SemanticWebDatabase::open_with_io(
                &dir,
                Arc::new(fault.clone()),
                Metrics::from_env(),
            )
            .unwrap_or_else(|e| panic!("reopen after op {at} ({kind:?}) failed: {e}"));
            let got = state_of(&recovered);
            let j = if got == refs[m] {
                m
            } else if got == refs[m - 1] {
                m - 1
            } else {
                panic!(
                    "fault at op {at} ({kind:?}) in mutation {m}: recovered state is \
                     neither prefix {m} nor prefix {}",
                    m - 1
                );
            };

            // Re-applying the missing suffix converges on the full state.
            let mut resumed = recovered;
            for step in &steps[j..] {
                step(&mut resumed);
            }
            assert_eq!(
                state_of(&resumed),
                refs[total],
                "suffix re-applied after fault at op {at} ({kind:?}) must converge"
            );
            cleanup(&dir);
        }
    }
}

/// A crash *during recovery* must leave the directory recoverable: tear
/// the WAL tail, fail the very first write-point of the recovering open
/// (the tail truncation), and check that a second open still lands on the
/// committed state.
#[test]
fn double_crash_during_recovery_still_recovers() {
    let dir = scratch_dir("double-crash");
    let mut db = SemanticWebDatabase::new();
    db.persist_to(&dir).expect("persist");
    db.insert(triple("ex:a", "ex:p", "ex:b"));
    db.insert(triple("ex:b", "ex:p", "ex:c"));
    let committed = state_of(&db);
    let generation_wal = dir.join(format!("wal-{}.log", 1));
    drop(db);

    // Tear the tail: garbage after the last committed record.
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&generation_wal)
        .expect("live WAL exists");
    file.write_all(&[0xDE, 0xAD, 0xBE]).expect("tear tail");
    drop(file);

    // First recovery attempt crashes at its first write point (the
    // truncation of the torn tail).
    let fault = FaultIo::new();
    fault.arm(0, FaultKind::Fail);
    let attempt =
        SemanticWebDatabase::open_with_io(&dir, Arc::new(fault.clone()), Metrics::from_env());
    assert!(attempt.is_err(), "the armed truncation must fail the open");
    assert_eq!(fault.injected(), 1);
    fault.disarm();

    // The second attempt recovers everything that was committed.
    let recovered = SemanticWebDatabase::open(&dir).expect("second recovery");
    assert_eq!(state_of(&recovered), committed);
    cleanup(&dir);
}

/// Degraded mode survives a reopen *exactly*: the snapshot carries the
/// per-component uncored flags, so `is_degraded`, `uncored_components`,
/// `uncored_triples` and `answer_with_status` agree before and after, and
/// `refresh_degraded` under a lifted budget completes the recovery the
/// budget interrupted.
#[test]
fn degraded_mode_survives_reopen_and_refresh_resumes_after_recovery() {
    let dir = scratch_dir("degraded");
    // The hidden-fold family: the component *can* be cored away, but the
    // search is a hidden-colouring search a 20-step budget interrupts —
    // and, unlike a blank clique, the lifted retry finishes fast.
    let instance = swdb_workloads::hidden_fold_instance(10, 0.5, 7);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.persist_to(&dir).expect("persist");
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(20)));
    db.insert_graph(&instance);
    // Force the evaluation engine (and its budgeted core search) to build.
    let q = swdb_query::query([("?S", "?P", "?O")], [("?S", "?P", "?O")]);
    let (answers, non_minimal) = db.answer_with_status(&q, Semantics::Union);
    assert!(
        db.is_degraded(),
        "a 20-step budget cannot core the hidden-fold instance"
    );
    assert!(non_minimal);
    let uncored_components = db.uncored_components();
    let uncored_triples = db.uncored_triples();
    let answer_count = answers.len();
    db.snapshot_now().expect("rotate with degraded state");
    drop(db);

    let mut recovered = SemanticWebDatabase::open(&dir).expect("reopen");
    assert!(recovered.is_degraded(), "degraded flags must survive");
    assert_eq!(recovered.uncored_components(), uncored_components);
    assert_eq!(recovered.uncored_triples(), uncored_triples);
    let (answers, non_minimal) = recovered.answer_with_status(&q, Semantics::Union);
    assert_eq!(answers.len(), answer_count);
    assert!(non_minimal, "answers must still be flagged non-minimal");

    // Lift the budget; the retry resumes from the published survivors.
    recovered.set_core_budget(CoreBudgetMode::Unlimited);
    assert!(recovered.refresh_degraded(), "unlimited retry must finish");
    assert!(!recovered.is_degraded());
    let (_, non_minimal) = recovered.answer_with_status(&q, Semantics::Union);
    assert!(!non_minimal);
    cleanup(&dir);
}

/// Recovery replays through the incremental engines — it never recomputes.
/// Pinned by metrics: an open that loads a snapshot with an empty WAL
/// performs **zero** reasoner rounds and **zero** core retraction
/// searches; an open with a WAL suffix replays exactly its records.
#[test]
fn recovery_is_incremental_not_recomputed() {
    let dir = scratch_dir("no-recompute");
    let mut db = SemanticWebDatabase::new();
    db.persist_to(&dir).expect("persist");
    db.insert_graph(&graph([
        ("ex:p", rdfs::SP, "ex:q"),
        ("ex:q", rdfs::DOM, "ex:C"),
        ("ex:a", "ex:p", "ex:b"),
    ]));
    // Build the evaluation engine so its state rides in the snapshot.
    let q = swdb_query::query([("?X", "ex:q", "?Y")], [("?X", "ex:q", "?Y")]);
    assert_eq!(db.answer(&q, Semantics::Union).len(), 1);
    db.snapshot_now().expect("rotate");
    drop(db);

    // Snapshot-only open: pure deserialization.
    let metrics = Metrics::new(MetricsLevel::Counters);
    let recovered = SemanticWebDatabase::open_with_io(
        &dir,
        Arc::new(swdb_core::durable::StdIo),
        metrics.clone(),
    )
    .expect("snapshot-only open");
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("reason_rounds"), 0, "no closure fixpoint");
    assert_eq!(
        snap.counter("core_retraction_searches"),
        0,
        "no core search"
    );
    assert_eq!(snap.counter("recovery_replayed_deltas"), 0);
    // …and yet the full state is there, engines included.
    let mut recovered = recovered;
    assert_eq!(recovered.answer(&q, Semantics::Union).len(), 1);
    assert!(recovered.closure_contains(&triple("ex:a", "ex:q", "ex:b")));

    // Three more mutations → a reopen replays exactly three deltas.
    recovered.insert(triple("ex:b", "ex:p", "ex:c"));
    recovered.insert(triple("ex:c", "ex:p", "ex:d"));
    recovered.remove(&triple("ex:c", "ex:p", "ex:d"));
    let expected = state_of(&recovered);
    drop(recovered);

    let metrics = Metrics::new(MetricsLevel::Counters);
    let replayed = SemanticWebDatabase::open_with_io(
        &dir,
        Arc::new(swdb_core::durable::StdIo),
        metrics.clone(),
    )
    .expect("suffix open");
    assert_eq!(
        metrics.snapshot().counter("recovery_replayed_deltas"),
        3,
        "exactly the WAL suffix replays"
    );
    assert_eq!(state_of(&replayed), expected);
    cleanup(&dir);
}

/// Fail-stop: a durability error detaches the layer, records why, and the
/// in-memory database keeps answering; the directory reopens to the last
/// durable state.
#[test]
fn io_errors_fail_stop_without_poisoning_the_in_memory_database() {
    let dir = scratch_dir("fail-stop");
    let fault = FaultIo::new();
    let mut db = SemanticWebDatabase::new();
    db.persist_to_with_io(&dir, Arc::new(fault.clone()))
        .expect("persist");
    db.insert(triple("ex:a", "ex:p", "ex:b"));
    assert!(db.is_durable());

    fault.arm(0, FaultKind::Fail);
    db.insert(triple("ex:b", "ex:p", "ex:c"));
    assert!(!db.is_durable(), "the failed commit must detach");
    let why = db.durability_error().expect("reason recorded").to_string();
    assert!(why.contains("WAL commit failed"), "got: {why}");

    // In-memory state is intact and mutable after the detach.
    assert_eq!(db.len(), 2);
    db.insert(triple("ex:c", "ex:p", "ex:d"));
    assert_eq!(db.len(), 3);

    // The directory recovers to the last durable state: one triple.
    fault.disarm();
    let recovered = SemanticWebDatabase::open(&dir).expect("reopen");
    assert_eq!(recovered.len(), 1);
    cleanup(&dir);
}

/// WAL compaction: past the threshold the log rotates into a snapshot on
/// its own, and the recovered state is unaffected.
#[test]
fn wal_compaction_rotates_automatically_and_preserves_state() {
    let dir = scratch_dir("compact");
    std::env::set_var("SWDB_WAL_COMPACT", "5");
    let mut db = SemanticWebDatabase::new();
    let result = db.persist_to(&dir);
    std::env::remove_var("SWDB_WAL_COMPACT");
    result.expect("persist");

    for i in 0..12 {
        db.insert(triple(format!("ex:s{i}").as_str(), "ex:p", "ex:o"));
    }
    assert!(db.is_durable());
    assert!(
        db.wal_records() <= 5,
        "compaction must have rotated: {} live records",
        db.wal_records()
    );
    let expected = state_of(&db);
    drop(db);
    let recovered = SemanticWebDatabase::open(&dir).expect("reopen");
    assert_eq!(state_of(&recovered), expected);
    cleanup(&dir);
}

// ----- WAL replay ≡ direct mutation, over random scripts -----

#[derive(Clone, Debug)]
enum Op {
    Insert(usize, usize, usize),
    Remove(usize, usize, usize),
    InsertBatch(Vec<(usize, usize, usize)>),
    SetRegime(bool),
    Minimize,
}

fn triple_of(s: usize, p: usize, o: usize) -> Triple {
    triple(
        &format!("ex:n{s}"),
        &format!("ex:p{}", p % 3),
        &format!("ex:n{o}"),
    )
}

fn apply(db: &mut SemanticWebDatabase, op: &Op) {
    match op {
        Op::Insert(s, p, o) => {
            db.insert(triple_of(*s, *p, *o));
        }
        Op::Remove(s, p, o) => {
            db.remove(&triple_of(*s, *p, *o));
        }
        Op::InsertBatch(batch) => {
            db.insert_graph(
                &batch
                    .iter()
                    .map(|(s, p, o)| triple_of(*s, *p, *o))
                    .collect(),
            );
        }
        Op::SetRegime(simple) => db.set_regime(if *simple {
            EntailmentRegime::Simple
        } else {
            EntailmentRegime::Rdfs
        }),
        Op::Minimize => {
            db.minimize();
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let id = 0..6usize;
    prop_oneof![
        4 => (id.clone(), id.clone(), id.clone()).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
        2 => (id.clone(), id.clone(), id.clone()).prop_map(|(s, p, o)| Op::Remove(s, p, o)),
        2 => proptest::collection::vec((id.clone(), id.clone(), id.clone()), 1..5)
            .prop_map(Op::InsertBatch),
        1 => prop_oneof![Just(Op::SetRegime(true)), Just(Op::SetRegime(false))],
        1 => Just(Op::Minimize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a WAL reproduces, in term space, exactly the state direct
    /// mutation built — including the maintained closure and the regime.
    #[test]
    fn wal_replay_is_equivalent_to_direct_mutation(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let dir = scratch_dir("replay-prop");
        let mut durable = SemanticWebDatabase::new();
        durable.persist_to(&dir).expect("persist");
        let mut reference = SemanticWebDatabase::new();
        for op in &ops {
            apply(&mut durable, op);
            apply(&mut reference, op);
        }
        prop_assert!(durable.is_durable());
        prop_assert_eq!(state_of(&durable), state_of(&reference));
        drop(durable);
        // Every reopen replays the whole script from the WAL (no snapshot
        // was ever rotated after persist_to's initial empty one).
        let recovered = SemanticWebDatabase::open(&dir).expect("reopen");
        prop_assert_eq!(state_of(&recovered), state_of(&reference));
        cleanup(&dir);
    }
}
