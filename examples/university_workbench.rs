//! A larger, deployment-shaped scenario: the LUBM-style university workload.
//!
//! Loads a generated university graph into the dictionary-encoded triple
//! store, answers schema-aware queries through the facade, compares union
//! and merge semantics, and eliminates redundancy from answers.
//!
//! Run with `cargo run --example university_workbench`.

use semweb_foundations::core::{SemanticWebDatabase, Semantics};
use semweb_foundations::query;
use semweb_foundations::store::{GraphStats, TripleStore};
use semweb_foundations::workloads::university as uni_mod;
use semweb_foundations::workloads::UniversityConfig;

fn main() {
    let config = UniversityConfig {
        departments: 3,
        courses_per_department: 6,
        professors_per_department: 4,
        students_per_department: 15,
        enrollments_per_student: 3,
    };
    let data = uni_mod::university(&config, 2024);
    println!("university workload: {}", GraphStats::of(&data).summary());

    // The store substrate: dictionary-encoded, indexed.
    let store = TripleStore::from_graph(&data);
    println!(
        "triple store: {} triples over {} interned terms, predicates: {:?}",
        store.len(),
        store.term_count(),
        store.predicates().len()
    );

    let mut db = SemanticWebDatabase::from_graph(store.to_graph());

    println!("\n-- who works for which department (headOf ⊑ worksFor) --");
    let workers = db.answer_union(&uni_mod::workers_query());
    for t in workers.iter().take(8) {
        println!("  {t}");
    }
    println!("  … {} answers total", workers.len());

    println!("\n-- persons (domain typing + subclass lifting) --");
    let persons = db.answer_union(&uni_mod::persons_query());
    println!("  {} persons inferred", persons.len());

    println!("\n-- students and who teaches them (a join query) --");
    let learns = db.answer_union(&uni_mod::student_professor_query());
    for t in learns.iter().take(8) {
        println!("  {t}");
    }
    println!("  … {} answers total", learns.len());

    // Union vs merge semantics on a query whose head introduces blanks.
    let anon = query::query(
        [("?S", "uni:hasAdvisor", "_:Advisor")],
        [("?S", "uni:advisedBy", "?A")],
    );
    let union = db.answer(&anon, Semantics::Union);
    let merge = db.answer(&anon, Semantics::Merge);
    println!("\n-- anonymised advisors --");
    println!(
        "  union semantics: {} triples, {} blanks",
        union.len(),
        union.blank_nodes().len()
    );
    println!(
        "  merge semantics: {} triples, {} blanks",
        merge.len(),
        merge.blank_nodes().len()
    );

    // Redundancy elimination.
    let all_takes = query::query([("?S", "uni:takes", "?C")], [("?S", "uni:takes", "?C")]);
    let raw = db.answer_union(&all_takes);
    let lean = db.answer_without_redundancy(&all_takes, Semantics::Union);
    println!("\n-- enrolment answers --");
    println!(
        "  raw answer:  {} triples (lean: {})",
        raw.len(),
        swdb_normal::is_lean(&raw)
    );
    println!("  after redundancy elimination: {} triples", lean.len());

    // Round-trip through the concrete syntax.
    let serialized = db.to_ntriples();
    let reloaded = SemanticWebDatabase::from_ntriples(&serialized).expect("round trip");
    println!(
        "\nserialization round trip preserved {} triples",
        reloaded.len()
    );
}
