//! Cores of classical graphs.
//!
//! The core of a graph `H` is the smallest subgraph of `H` that is also a
//! homomorphic image of `H` (Hell & Nešetřil). §3.2 of the paper uses two
//! associated decision problems:
//!
//! * **Core** — "is there a homomorphism of `H` to a proper subgraph?"
//!   (NP-complete; the source of coNP-hardness of leanness, Theorem 3.12(1));
//! * **Core Identification** — "is `H'` the core of `H`?" (DP-complete; the
//!   source of DP-hardness of core identification for RDF graphs,
//!   Theorem 3.12(2)).

use std::collections::{BTreeMap, BTreeSet};

use swdb_obs::Budget;

use crate::digraph::DiGraph;
use crate::homomorphism::{find_homomorphism_budgeted, find_isomorphism, is_homomorphic};

/// Searches for a homomorphism from `g` to a *proper* subgraph of itself
/// (i.e. a retraction witnessing that `g` is not a core). Returns the
/// witnessing assignment if one exists.
///
/// A graph has a homomorphism to a proper subgraph iff it has one to a
/// subgraph induced by a proper subset of its vertices, so it suffices to
/// try removing one vertex at a time. One working copy serves every
/// candidate: the vertex's edges are dropped before the search and restored
/// after it — `O(deg)` per candidate instead of an `O(V + E)` induced
/// subgraph per candidate per retraction round.
pub fn find_retraction(g: &DiGraph) -> Option<BTreeMap<usize, usize>> {
    find_retraction_budgeted(g, None)
}

/// [`find_retraction`] under a cooperative [`Budget`] shared across all
/// per-vertex homomorphism searches. `None` with `budget.is_exhausted()`
/// means the search was abandoned — the graph may or may not be a core;
/// a returned assignment is always a genuine retraction witness.
pub fn find_retraction_budgeted(
    g: &DiGraph,
    budget: Option<&Budget>,
) -> Option<BTreeMap<usize, usize>> {
    let vertices: Vec<usize> = g.vertices().collect();
    let mut target = g.clone();
    for &dropped in &vertices {
        if budget.is_some_and(|b| b.is_exhausted()) {
            return None;
        }
        let detached = target.remove_vertex(dropped);
        if let Some(h) = find_homomorphism_budgeted(g, &target, budget) {
            return Some(h);
        }
        target.add_vertex(dropped);
        for (u, v) in detached {
            target.add_edge(u, v);
        }
    }
    None
}

/// Returns `true` if the graph is its own core (no homomorphism to a proper
/// subgraph exists).
pub fn is_core(g: &DiGraph) -> bool {
    find_retraction(g).is_none()
}

/// Computes the core of `g` by iterated retraction. The result is unique up
/// to isomorphism.
pub fn core(g: &DiGraph) -> DiGraph {
    let mut current = g.clone();
    loop {
        match find_retraction(&current) {
            None => return current,
            Some(h) => {
                // Retract onto the image of the homomorphism.
                let image: BTreeSet<usize> = h.values().copied().collect();
                current = current.induced_subgraph(&image);
            }
        }
    }
}

/// Decides the Core Identification problem: is `candidate` (isomorphic to)
/// the core of `g`?
pub fn is_core_of(candidate: &DiGraph, g: &DiGraph) -> bool {
    // candidate must itself be a core, must be homomorphically equivalent to
    // g, and must embed into g as an induced subgraph up to isomorphism.
    // Computing core(g) and comparing up to isomorphism is the simplest
    // faithful check (and is exactly how the DP upper bound splits into an NP
    // part and a coNP part).
    if !is_core(candidate) {
        return false;
    }
    if !(is_homomorphic(candidate, g) && is_homomorphic(g, candidate)) {
        return false;
    }
    find_isomorphism(candidate, &core(g)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::isomorphic;

    #[test]
    fn complete_graphs_are_cores() {
        for n in 1..5 {
            assert!(is_core(&DiGraph::complete(n)), "K{n} is a core");
        }
    }

    #[test]
    fn even_cycles_retract_to_an_edge() {
        let c6 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert!(!is_core(&c6));
        let k = core(&c6);
        assert!(
            isomorphic(&k, &DiGraph::complete(2)),
            "core(C6) ≅ K2, got {k:?}"
        );
    }

    #[test]
    fn odd_cycles_are_cores() {
        let c5 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(is_core(&c5));
        assert!(isomorphic(&core(&c5), &c5));
    }

    #[test]
    fn directed_path_retracts() {
        // The directed path 0→1→2→3 retracts onto a single edge? No: a
        // directed path with no cycles has a core that is a single vertex
        // only if it has a loop; in fact the core of a directed path
        // P_n (n ≥ 2 edges) is the single edge, since mapping i ↦ (i mod 2)
        // gives a homomorphism onto {0→1} only when edges alternate — it does
        // not. The true core of a transitive-free directed path is the path
        // itself is *false*: P2 = 0→1→2 maps onto 0→1? h(0)=0,h(1)=1,h(2)=?
        // must have (1,h(2)) an edge: only (0,1), so h(2)=1 needs (1,1): no.
        // So P2 is a core. We assert exactly that.
        let p2 = DiGraph::from_edges([(0, 1), (1, 2)]);
        assert!(is_core(&p2));
    }

    #[test]
    fn disjoint_union_of_triangle_and_edge_retracts_to_triangle() {
        let mut g = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 0)]);
        g.add_edge(10, 11);
        g.add_edge(11, 10);
        assert!(!is_core(&g));
        let k = core(&g);
        assert!(isomorphic(&k, &DiGraph::complete(3)));
    }

    #[test]
    fn core_identification() {
        let c6 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert!(is_core_of(&DiGraph::complete(2), &c6));
        assert!(!is_core_of(&DiGraph::complete(3), &c6));
        assert!(
            !is_core_of(&c6, &c6),
            "C6 itself is not a core, so it is not *the* core"
        );
    }

    #[test]
    fn core_is_idempotent() {
        let c6 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let k = core(&c6);
        assert!(isomorphic(&core(&k), &k));
    }

    #[test]
    fn budgeted_retraction_gives_up_but_never_lies() {
        // K6 is a core: proving that means exhausting every per-vertex
        // search. A tiny budget abandons the proof and says so.
        let k6 = DiGraph::complete(6);
        let budget = Budget::steps(10);
        assert_eq!(find_retraction_budgeted(&k6, Some(&budget)), None);
        assert!(budget.is_exhausted(), "abandoned, not refuted");
        // Unbudgeted (or generously budgeted) the answer is definitive.
        let budget = Budget::steps(u64::MAX);
        assert_eq!(find_retraction_budgeted(&k6, Some(&budget)), None);
        assert!(!budget.is_exhausted());
        // A witness found within budget is genuine.
        let c6 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let budget = Budget::steps(1_000_000);
        let h = find_retraction_budgeted(&c6, Some(&budget)).expect("C6 retracts");
        let image: BTreeSet<usize> = h.values().copied().collect();
        assert!(image.len() < 6, "proper subgraph");
        assert!(crate::homomorphism::verify_homomorphism(
            &c6,
            &c6.induced_subgraph(&image),
            &h
        ));
    }

    #[test]
    fn graph_with_loop_retracts_to_loop() {
        // Any graph containing a self-loop retracts onto that loop vertex.
        let mut g = DiGraph::complete(3);
        g.add_edge(0, 0);
        let k = core(&g);
        assert_eq!(k.vertex_count(), 1);
        assert!(k.has_edge(k.vertices().next().unwrap(), k.vertices().next().unwrap()));
    }
}
