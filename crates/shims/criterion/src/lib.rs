//! In-tree shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the benchmarking API surface the workspace uses: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! complete iterations until `measurement_time` has elapsed (always at least
//! one), and reports the mean and best wall-clock time per iteration. There
//! is no statistical analysis, outlier rejection or HTML report — the output
//! is one line per benchmark on stdout. The API mirrors `criterion 0.5` so
//! the shim can be swapped for the real crate without touching any caller.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Formats a duration like criterion does: scaled to ns/µs/ms/s.
fn format_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples (advisory in this shim; kept for
    /// API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// No-op: the shim never produces plots.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(self, name, &mut f);
        self
    }
}

fn run_benchmark(c: &Criterion, label: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up_time: c.warm_up_time,
        measurement_time: c.measurement_time,
        max_samples: (c.sample_size.max(1) * 100).min(u32::MAX as usize) as u32,
        iters: 0,
        total: Duration::ZERO,
        best: Duration::MAX,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{label:<60} (no iterations)");
        return;
    }
    let mean = bencher.total / bencher.iters;
    println!(
        "{label:<60} time: [mean {} | best {} | {} iters]",
        format_time(mean),
        format_time(bencher.best),
        bencher.iters,
    );
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a closure parameterised by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        let criterion = self.criterion.clone();
        run_benchmark(&criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no separate input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        let criterion = self.criterion.clone();
        run_benchmark(&criterion, &label, &mut f);
        self
    }

    /// Overrides the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Overrides the sample size for this group (advisory).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id labelled by the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Drives the timing loop inside one benchmark.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    max_samples: u32,
    iters: u32,
    total: Duration,
    best: Duration,
}

impl Bencher {
    /// Times complete executions of `f` (the routine under measurement).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: run untimed until the warm-up window closes (at least
        // once, so one-shot heavy routines are not skipped).
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        // Measurement: complete iterations until the window closes.
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let elapsed = t0.elapsed();
            self.iters += 1;
            self.total += elapsed;
            self.best = self.best.min(elapsed);
            if started.elapsed() >= self.measurement_time || self.iters >= self.max_samples {
                break;
            }
        }
    }
}

/// Declares a function running a list of benchmark targets under a shared
/// configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3u64).pow(2)));
    }

    #[test]
    fn the_harness_runs_and_counts_iterations() {
        let mut c = Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        fake_bench(&mut c);
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(format_time(Duration::from_nanos(500)), "500 ns");
        assert!(format_time(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_time(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_time(Duration::from_secs(2)).ends_with(" s"));
    }

    criterion_group! {
        name = grouped;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = fake_bench
    }

    criterion_group!(plain, fake_bench);

    #[test]
    fn group_macros_compile_and_run() {
        grouped();
        // `plain` uses the default 2 s window; invoking it here would slow
        // the suite, so it is only compiled.
        let _ = plain as fn();
    }
}
