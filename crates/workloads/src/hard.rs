//! Hard instances: the graph-homomorphism encodings behind the paper's
//! hardness results.
//!
//! Theorem 2.9 reduces graph homomorphism to simple entailment via
//! `enc(H)`; Theorem 3.12 reduces the Core and Core Identification problems
//! to leanness and core identification. These generators produce the
//! instances the reductions use, so that the exponential-versus-polynomial
//! *shape* of those results is visible in the benchmarks (E03, E08).

use swdb_graphs::DiGraph;
use swdb_model::{encode_edges_with, Graph, Iri, Term, Triple};

/// The predicate used for encoded edges.
pub fn edge_predicate() -> Iri {
    Iri::new(swdb_model::EDGE_PREDICATE)
}

/// Encodes a classical directed graph as a simple RDF graph, `enc(H)`.
pub fn encode(h: &DiGraph, prefix: &str) -> Graph {
    encode_edges_with(&h.edge_list(), &edge_predicate(), prefix)
}

/// The pair of RDF graphs whose entailment decides `k`-colourability of `h`
/// (Theorem 2.9(1)): `enc(K_k) ⊨ enc(h)` iff `h → K_k` iff `h` is
/// `k`-colourable. Returns `(premise, conclusion)` such that
/// `premise ⊨ conclusion` holds iff the graph is `k`-colourable.
pub fn coloring_instance(h: &DiGraph, k: usize) -> (Graph, Graph) {
    let symmetric = DiGraph::from_undirected_edges(h.edges());
    (encode(&DiGraph::complete(k), "kk"), encode(&symmetric, "h"))
}

/// The pair of RDF graphs whose entailment decides whether `h` contains a
/// `k`-clique: `enc(h) ⊨ enc(K_k)` iff `K_k → h`.
pub fn clique_instance(h: &DiGraph, k: usize) -> (Graph, Graph) {
    (encode(h, "h"), encode(&DiGraph::complete(k), "kk"))
}

/// An RDF graph that is not lean because an even blank cycle of length
/// `2 * n` retracts onto a single edge attached to it. Used to scale the
/// leanness workload.
pub fn redundant_cycle(n: usize) -> Graph {
    let cycle = DiGraph::from_undirected_edges((0..2 * n).map(|i| (i, (i + 1) % (2 * n))));
    encode(&cycle, "c")
}

/// An RDF graph that *is* lean: an odd blank cycle (its core is itself).
pub fn lean_cycle(n: usize) -> Graph {
    let cycle =
        DiGraph::from_undirected_edges((0..(2 * n + 1)).map(|i| (i, (i + 1) % (2 * n + 1))));
    encode(&cycle, "c")
}

/// A crown-like instance known to make backtracking homomorphism searches
/// slow: a random 3-colourable graph (hidden partition) asked to map into
/// `K_3`. Returns `(premise, conclusion)` with `premise ⊨ conclusion`
/// always true but hard to certify.
pub fn hidden_coloring_instance(nodes: usize, density: f64, seed: u64) -> (Graph, Graph) {
    let h = swdb_graphs::planted_3_colorable(nodes, density, seed);
    coloring_instance(&h, 3)
}

// ----- adversarial core workloads (degraded-mode family) -----
//
// The generators below target the *core maintenance* path specifically:
// each produces blank structure whose per-component retraction search is
// slow, deep, or wide, so that a budgeted `IdCoreEngine` has something to
// degrade on and an unbudgeted one something to stall on.

/// The canonical budget-buster: `enc(K_n)` as a single all-blank component
/// of `n·(n−1)` triples. `K_n` is a core, so the graph is lean — but an
/// unbudgeted core search must *prove* that by exhausting one NP-hard
/// retraction search per blank, which past `n ≈ 10` takes minutes. A
/// budgeted engine publishes the same (already minimal) triples within its
/// slice and merely flags them unproven.
pub fn blank_clique(n: usize) -> Graph {
    encode(&DiGraph::complete(n), "q")
}

/// A planted fold instance: a random 3-colourable all-blank graph plus a
/// **ground** URI triangle it can retract onto (a 3-colouring is exactly a
/// homomorphism into `K_3`, and the encoding preserves it). The fold
/// exists but is hidden — finding it is the hidden-colouring search — so
/// an unbudgeted engine eventually shrinks the whole blank component onto
/// the triangle, while a budgeted one may publish intermediate survivors
/// uncored. Both published states are sound supersets of the core, which
/// is the six ground triangle triples.
pub fn hidden_fold_instance(nodes: usize, density: f64, seed: u64) -> Graph {
    let planted = swdb_graphs::planted_3_colorable(nodes, density, seed);
    let mut g = encode(&DiGraph::from_undirected_edges(planted.edges()), "v");
    let p = edge_predicate();
    for (a, b) in [(0usize, 1usize), (1, 2), (2, 0)] {
        g.insert(Triple::new(ground_color(a), p.clone(), ground_color(b)));
        g.insert(Triple::new(ground_color(b), p.clone(), ground_color(a)));
    }
    g
}

fn ground_color(i: usize) -> Term {
    Term::iri(format!("ex:color{i}"))
}

/// A deep all-blank directed chain of `len` edges: one large component
/// that is its own core (a directed path admits no retraction), stressing
/// the budget bookkeeping on a *deep* benign component — many cheap
/// per-blank searches instead of one explosive one.
pub fn deep_blank_chain(len: usize) -> Graph {
    encode(&DiGraph::path(len + 1), "d")
}

/// A wide co-occurrence fan: one ground absorber triple plus `width`
/// redundant blank spokes on the same subject and predicate. Every spoke
/// is its own singleton component that folds onto the absorber in one
/// step, so the graph exercises per-component budget *slicing* across many
/// components (and the quiet-refresh retry over all of them) rather than
/// search depth. Its core is the single ground triple.
pub fn wide_blank_fan(width: usize) -> Graph {
    let p = edge_predicate();
    let hub = Term::iri("ex:hub");
    let mut g = Graph::default();
    g.insert(Triple::new(hub.clone(), p.clone(), Term::iri("ex:spoke")));
    for i in 0..width {
        g.insert(Triple::new(
            hub.clone(),
            p.clone(),
            Term::blank(format!("w{i}")),
        ));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coloring_instances_track_colourability() {
        // C5 is 3-colourable but not 2-colourable.
        let c5 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (premise3, conclusion3) = coloring_instance(&c5, 3);
        assert!(swdb_entailment::simple_entails(&premise3, &conclusion3));
        let (premise2, conclusion2) = coloring_instance(&c5, 2);
        assert!(!swdb_entailment::simple_entails(&premise2, &conclusion2));
    }

    #[test]
    fn clique_instances_track_cliques() {
        let k4 = DiGraph::complete(4);
        let (p, c) = clique_instance(&k4, 3);
        assert!(swdb_entailment::simple_entails(&p, &c));
        let c5 = DiGraph::from_undirected_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (p, c) = clique_instance(&c5, 3);
        assert!(!swdb_entailment::simple_entails(&p, &c));
    }

    #[test]
    fn redundant_cycles_are_not_lean_and_lean_cycles_are() {
        assert!(!swdb_normal::is_lean(&redundant_cycle(3)));
        assert!(swdb_normal::is_lean(&lean_cycle(2)));
    }

    #[test]
    fn hidden_coloring_instances_are_always_yes_instances() {
        for seed in 0..3 {
            let (p, c) = hidden_coloring_instance(9, 0.5, seed);
            assert!(swdb_entailment::simple_entails(&p, &c));
        }
    }

    #[test]
    fn blank_cliques_are_lean_single_components() {
        let g = blank_clique(4);
        assert!(g.is_simple());
        assert_eq!(g.len(), 12);
        assert_eq!(g.blank_nodes().len(), 4);
        assert!(
            swdb_normal::is_lean(&g),
            "K4's encoding is its own core — the search only proves it"
        );
    }

    #[test]
    fn hidden_fold_instances_core_to_the_ground_triangle() {
        let g = hidden_fold_instance(7, 0.5, 42);
        let core = swdb_normal::core(&g);
        assert!(core.is_ground(), "every blank folds onto the triangle");
        assert_eq!(core.len(), 6);
    }

    #[test]
    fn deep_blank_chains_are_lean() {
        let g = deep_blank_chain(40);
        assert_eq!(g.len(), 40);
        assert!(swdb_normal::is_lean(&g));
    }

    #[test]
    fn wide_blank_fans_core_to_the_absorber() {
        let g = wide_blank_fan(16);
        assert_eq!(g.len(), 17);
        let core = swdb_normal::core(&g);
        assert_eq!(core.len(), 1);
        assert!(core.is_ground());
    }

    #[test]
    fn encodings_are_simple_blank_graphs() {
        let g = encode(&DiGraph::complete(4), "x");
        assert!(g.is_simple());
        assert!(g.blank_nodes().len() == 4);
        assert_eq!(g.len(), 12);
    }
}
