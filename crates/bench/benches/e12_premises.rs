//! E12 — §4.2, Proposition 5.9, Example 5.10: queries with premises.
//!
//! Measures direct evaluation of a premised query, the premise-free
//! expansion `Ω_q` (size and construction time), and evaluation through the
//! expansion, as the premise grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_hom::pattern_graph;
use swdb_model::{Graph, Term, Triple};
use swdb_query::{answer_union, answer_union_of_queries, premise_free_expansion, Query, Semantics};
use swdb_workloads::{simple_graph, SimpleGraphConfig};

fn premise_of_size(n: usize) -> Graph {
    (0..n)
        .map(|i| {
            Triple::new(
                Term::iri(format!("ex:t{i}")),
                swdb_model::Iri::new("ex:t"),
                Term::iri("ex:s"),
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let data = simple_graph(
        &SimpleGraphConfig {
            triples: 150,
            predicates: 2,
            blank_probability: 0.1,
            ..SimpleGraphConfig::default()
        },
        3,
    );
    let mut group = c.benchmark_group("e12_premises");
    for &premise_size in &[2usize, 4, 8] {
        let q = Query::with_premise(
            pattern_graph([("?X", "ex:result", "?Y")]),
            pattern_graph([("?X", "ex:p0", "?Y"), ("?Y", "ex:t", "ex:s")]),
            premise_of_size(premise_size),
        )
        .unwrap();
        let expansion = premise_free_expansion(&q);
        report_row(
            "E12",
            &format!("premise={premise_size}"),
            &[
                ("expansion_members", expansion.len().to_string()),
                ("direct_answers", answer_union(&q, &data).len().to_string()),
            ],
        );
        group.bench_with_input(
            BenchmarkId::new("direct_evaluation", premise_size),
            &premise_size,
            |b, _| b.iter(|| answer_union(&q, &data)),
        );
        group.bench_with_input(
            BenchmarkId::new("build_expansion", premise_size),
            &premise_size,
            |b, _| b.iter(|| premise_free_expansion(&q)),
        );
        group.bench_with_input(
            BenchmarkId::new("evaluate_expansion", premise_size),
            &premise_size,
            |b, _| b.iter(|| answer_union_of_queries(&expansion, &data, Semantics::Union)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
