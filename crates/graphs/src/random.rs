//! Seeded random graph generators used by the experiment harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::digraph::DiGraph;

/// Generates an Erdős–Rényi style directed graph `G(n, p)`: each ordered pair
/// of distinct vertices becomes an edge independently with probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    for v in 0..n {
        g.add_vertex(v);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Generates a random undirected graph (both orientations inserted) with the
/// given edge probability.
pub fn undirected_gnp(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    for v in 0..n {
        g.add_vertex(v);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// Generates a random DAG with `n` vertices: edges only go from lower to
/// higher vertex index, each present with probability `p`.
pub fn random_dag(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    for v in 0..n {
        g.add_vertex(v);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Generates a graph guaranteed to be 3-colourable (but typically hard to
/// colour greedily): vertices are partitioned into three classes and edges
/// are only added between distinct classes.
pub fn planted_3_colorable(n: usize, p: f64, seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new();
    for v in 0..n {
        g.add_vertex(v);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if u % 3 != v % 3 && rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
                g.add_edge(v, u);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::is_k_colorable;
    use crate::transitive::is_acyclic;

    #[test]
    fn gnp_is_seeded_and_deterministic() {
        let g1 = gnp(20, 0.2, 42);
        let g2 = gnp(20, 0.2, 42);
        assert_eq!(g1, g2);
        let g3 = gnp(20, 0.2, 43);
        assert_ne!(g1, g3, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 90);
    }

    #[test]
    fn random_dag_is_acyclic() {
        for seed in 0..5 {
            assert!(is_acyclic(&random_dag(30, 0.3, seed)));
        }
    }

    #[test]
    fn undirected_gnp_is_symmetric() {
        let g = undirected_gnp(15, 0.4, 7);
        for (u, v) in g.edge_list() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn planted_graphs_are_3_colorable() {
        for seed in 0..3 {
            let g = planted_3_colorable(12, 0.6, seed);
            assert!(
                is_k_colorable(&g, 3),
                "planted 3-partition must be 3-colourable"
            );
        }
    }
}
