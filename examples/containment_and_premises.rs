//! Query containment and queries with premises (§4.2 and §5).
//!
//! Demonstrates the two notions of containment (standard `⊑p` and
//! entailment-based `⊑m`), the separating examples of Example 5.3, premise
//! elimination (Proposition 5.9 / Example 5.10), and containment with
//! premises (Theorems 5.8 / 5.12).
//!
//! Run with `cargo run --example containment_and_premises`.

use semweb_foundations::containment::{self, Notion};
use semweb_foundations::hom::pattern_graph;
use semweb_foundations::model::{graph, rdfs};
use semweb_foundations::query::{premise_free_expansion, query, Query, Semantics};

fn check(label: &str, q: &Query, q_prime: &Query) {
    println!(
        "  {label}: ⊑p = {},  ⊑m = {}",
        containment::contained_in(q, q_prime, Notion::Standard),
        containment::contained_in(q, q_prime, Notion::EntailmentBased),
    );
}

fn main() {
    // --- Basic containment ------------------------------------------------
    println!("Basic containment (restricting the body shrinks the query):");
    let exhibited_painters = query(
        [("?A", "art:paints", "?Y")],
        [
            ("?A", "art:paints", "?Y"),
            ("?Y", "art:exhibited", "art:Uffizi"),
        ],
    );
    let painters = query([("?A", "art:paints", "?Y")], [("?A", "art:paints", "?Y")]);
    check(
        "exhibited-painters ⊑ painters",
        &exhibited_painters,
        &painters,
    );
    check(
        "painters ⊑ exhibited-painters",
        &painters,
        &exhibited_painters,
    );

    // --- Example 5.3: the two notions differ ------------------------------
    println!("\nExample 5.3 (heads = bodies, one body has the redundant sc shortcut):");
    let b = pattern_graph([("?X", rdfs::SC, "?Y"), ("?Y", rdfs::SC, "?Z")]);
    let b_shortcut = pattern_graph([
        ("?X", rdfs::SC, "?Y"),
        ("?Y", rdfs::SC, "?Z"),
        ("?X", rdfs::SC, "?Z"),
    ]);
    let q = Query::new(b.clone(), b).unwrap();
    let q_prime = Query::new(b_shortcut.clone(), b_shortcut).unwrap();
    check("q ⊑ q'", &q, &q_prime);
    check("q' ⊑ q", &q_prime, &q);

    // --- Premises: Example 5.10 -------------------------------------------
    println!("\nPremise elimination (Example 5.10):");
    let with_premise = Query::with_premise(
        pattern_graph([("?X", "ex:p", "?Y")]),
        pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
        graph([("ex:a", "ex:t", "ex:s"), ("ex:b", "ex:t", "ex:s")]),
    )
    .unwrap();
    println!("  query: {with_premise}");
    let expansion = premise_free_expansion(&with_premise);
    println!("  Ω_q has {} premise-free members:", expansion.len());
    for member in &expansion {
        println!("    {member}");
    }
    // Answers agree on a sample database.
    let d = graph([
        ("ex:u", "ex:q", "ex:a"),
        ("ex:v", "ex:q", "ex:w"),
        ("ex:w", "ex:t", "ex:s"),
    ]);
    let direct = semweb_foundations::query::answer_union(&with_premise, &d);
    let expanded =
        semweb_foundations::query::answer_union_of_queries(&expansion, &d, Semantics::Union);
    println!("  direct answer:    {direct}");
    println!("  via expansion:    {expanded}");
    println!("  answers agree?    {}", direct == expanded);

    // --- Containment with premises (Theorem 5.8) ---------------------------
    println!("\nContainment with premises (Theorem 5.8):");
    let premise_free = query(
        [("?X", "ex:p", "?Y")],
        [("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")],
    );
    check(
        "premise-free ⊑ premised (the premise only adds answers)",
        &premise_free,
        &with_premise,
    );
    check("premised ⊑ premise-free", &with_premise, &premise_free);

    // --- Hypothetical reasoning: premises cannot be simulated by Datalog ---
    println!("\nHypothetical (if-then) querying with premises:");
    let data = graph([("ex:John", "ex:son", "ex:Mary")]);
    let hypothetical = Query::with_premise(
        pattern_graph([("?X", "ex:descendant", "ex:Mary")]),
        pattern_graph([("?X", "ex:descendant", "ex:Mary")]),
        graph([("ex:son", rdfs::SP, "ex:descendant")]),
    )
    .unwrap();
    let answers = semweb_foundations::query::answer_union(&hypothetical, &data);
    println!("  data: {data}");
    println!("  \"descendants of Mary, if son ⊑ descendant\": {answers}");
}
