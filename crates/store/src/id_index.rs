//! A three-way ordered index over id-triples.
//!
//! The core physical structure of the store layer: the same set of triples
//! held in SPO, POS and OSP order so that any pattern with a bound prefix is
//! a range scan. [`crate::TripleStore`] wraps one of these together with the
//! term dictionary; the incremental reasoner (`swdb-reason`) uses a second,
//! dictionary-less one to hold the maintained closure over the same ids.

use std::collections::BTreeSet;

use crate::dictionary::TermId;
use crate::triple_store::{IdPattern, IdTriple};

/// An ordered, scannable set of id-triples.
///
/// # Read-snapshot guarantee
///
/// An `IdIndex` has no interior mutability: between `&mut self` calls, a
/// shared `&IdIndex` is a frozen snapshot — every [`IdIndex::scan_while`],
/// [`IdIndex::candidate_count`] and [`IdIndex::contains`] observes exactly
/// the same triple set, and the type is `Send + Sync` by construction
/// (asserted by a compile-time test below). The parallel propagation
/// workers of `swdb-reason` rely on this: each round shares one `&IdIndex`
/// of the closure across `std::thread::scope` threads, runs all rule joins
/// against that immutable view, and only the single-threaded merge step
/// takes `&mut self` to commit the round's conclusions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdIndex {
    spo: BTreeSet<IdTriple>,
    pos: BTreeSet<IdTriple>,
    osp: BTreeSet<IdTriple>,
}

impl IdIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        IdIndex::default()
    }

    /// Number of triples indexed.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Returns `true` if the index holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Inserts a triple; returns `true` if it was new.
    pub fn insert(&mut self, (s, p, o): IdTriple) -> bool {
        let added = self.spo.insert((s, p, o));
        if added {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        added
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, (s, p, o): IdTriple) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, ids: IdTriple) -> bool {
        self.spo.contains(&ids)
    }

    /// Iterates in `(s, p, o)` order.
    pub fn iter(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo.iter().copied()
    }

    /// The distinct predicate ids in use, ascending.
    pub fn predicate_ids(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        for &(p, _, _) in &self.pos {
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Visits every triple matching the pattern, using the most selective
    /// index. Every pattern shape is a contiguous range of one of the three
    /// orderings (two-position prefixes included: `(s, p, ·)` on SPO,
    /// `(p, o, ·)` on POS, `(o, s, ·)` on OSP), so no visited triple is ever
    /// filtered out. The visitor returns `true` to keep scanning, `false`
    /// to stop early (used by existence checks).
    pub fn scan_while(&self, pattern: IdPattern, mut visit: impl FnMut(IdTriple) -> bool) {
        const MAX: TermId = TermId::MAX;
        match pattern {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    visit((s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &(ts, tp, to) in self.spo.range((s, p, 0)..=(s, p, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                for &(to, ts, tp) in self.osp.range((o, s, 0)..=(o, s, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (Some(s), None, None) => {
                for &(ts, tp, to) in self.spo.range((s, 0, 0)..=(s, MAX, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                for &(tp, to, ts) in self.pos.range((p, o, 0)..=(p, o, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (None, Some(p), None) => {
                for &(tp, to, ts) in self.pos.range((p, 0, 0)..=(p, MAX, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (None, None, Some(o)) => {
                for &(to, ts, tp) in self.osp.range((o, 0, 0)..=(o, MAX, MAX)) {
                    if !visit((ts, tp, to)) {
                        return;
                    }
                }
            }
            (None, None, None) => {
                for &t in &self.spo {
                    if !visit(t) {
                        return;
                    }
                }
            }
        }
    }

    /// Collects every triple matching the pattern, in `(s, p, o)` order.
    pub fn scan(&self, pattern: IdPattern) -> Vec<IdTriple> {
        let mut out = Vec::new();
        self.scan_while(pattern, |t| {
            out.push(t);
            true
        });
        out
    }

    /// Counts the triples matching the pattern without materializing them —
    /// the selectivity probe behind most-constrained-first join ordering.
    /// Fully-bound and fully-unbound patterns are O(1); every other shape
    /// walks exactly its matching prefix range (see
    /// [`IdIndex::scan_while`]) and never allocates.
    pub fn candidate_count(&self, pattern: IdPattern) -> usize {
        const MAX: TermId = TermId::MAX;
        match pattern {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self.spo.range((s, p, 0)..=(s, p, MAX)).count(),
            (Some(s), None, Some(o)) => self.osp.range((o, s, 0)..=(o, s, MAX)).count(),
            (Some(s), None, None) => self.spo.range((s, 0, 0)..=(s, MAX, MAX)).count(),
            (None, Some(p), Some(o)) => self.pos.range((p, o, 0)..=(p, o, MAX)).count(),
            (None, Some(p), None) => self.pos.range((p, 0, 0)..=(p, MAX, MAX)).count(),
            (None, None, Some(o)) => self.osp.range((o, 0, 0)..=(o, MAX, MAX)).count(),
            (None, None, None) => self.spo.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The read-snapshot guarantee, at compile time: shared references to
    /// the index (and to the whole store it lives in) may cross thread
    /// boundaries, so parallel propagation workers can scan one snapshot.
    #[test]
    fn index_snapshots_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IdIndex>();
        assert_send_sync::<&IdIndex>();
        assert_send_sync::<crate::TripleStore>();
    }

    fn sample() -> IdIndex {
        let mut index = IdIndex::new();
        for t in [(1, 10, 2), (1, 10, 3), (2, 11, 3), (4, 10, 2)] {
            index.insert(t);
        }
        index
    }

    #[test]
    fn insert_remove_contains() {
        let mut index = sample();
        assert_eq!(index.len(), 4);
        assert!(index.contains((1, 10, 2)));
        assert!(!index.insert((1, 10, 2)));
        assert!(index.remove((1, 10, 2)));
        assert!(!index.remove((1, 10, 2)));
        assert!(!index.contains((1, 10, 2)));
        assert_eq!(index.len(), 3);
    }

    #[test]
    fn scans_match_by_any_bound_prefix() {
        let index = sample();
        assert_eq!(index.scan((Some(1), None, None)).len(), 2);
        assert_eq!(index.scan((None, Some(10), None)).len(), 3);
        assert_eq!(index.scan((None, None, Some(2))).len(), 2);
        assert_eq!(index.scan((Some(1), Some(10), Some(3))), vec![(1, 10, 3)]);
        assert_eq!(index.scan((None, Some(10), Some(2))).len(), 2);
        assert_eq!(index.scan((None, None, None)).len(), 4);
    }

    #[test]
    fn scan_while_supports_early_exit() {
        let index = sample();
        let mut seen = 0;
        index.scan_while((None, Some(10), None), |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn predicate_ids_are_distinct_and_sorted() {
        let index = sample();
        assert_eq!(index.predicate_ids(), vec![10, 11]);
    }

    #[test]
    fn candidate_count_agrees_with_scan_on_every_pattern_shape() {
        let index = sample();
        let ids = [None, Some(1), Some(2), Some(3), Some(4), Some(10), Some(11)];
        for &s in &ids {
            for &p in &ids {
                for &o in &ids {
                    let pattern = (s, p, o);
                    assert_eq!(
                        index.candidate_count(pattern),
                        index.scan(pattern).len(),
                        "count/scan disagree on {pattern:?}"
                    );
                }
            }
        }
    }
}
