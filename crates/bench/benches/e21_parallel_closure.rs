//! E21 — parallel sharded closure propagation: bulk-load throughput across
//! worker-thread counts.
//!
//! PR 2's frontier-batched semi-naive fixpoint (`DeltaClosure::insert_batch`)
//! is the sequential baseline; this experiment measures the round-based
//! sharded schedule (`swdb_reason::parallel`) that partitions each round's
//! frontier by woken `(rule, hypothesis)` paths and runs the independent
//! joins on `std::thread::scope` workers against an immutable snapshot of
//! the closure index. Workloads: the university generator and the random
//! RDFS schema generator at the 10k and 50k scales, loaded in one
//! `MaterializedStore::insert_graph` batch at 1/2/4/8 threads.
//!
//! Every parallel load is differentially pinned inside the bench: the
//! maintained closure index must be **bit-identical** to the thread-count-1
//! run, and the `added` delta log (the feed of the downstream
//! `IdCoreEngine`) must be equal as a set. Results land on stdout and in
//! `BENCH_e21.json` at the workspace root.
//!
//! Acceptance: ≥ 2× bulk-load speedup at 4 threads over the sequential
//! batch path on the 10k university workload — asserted when
//! `E21_ASSERT_SPEEDUP=1` is set on a host with ≥ 4 cores (shared CI
//! runners and small hosts skip the assert). The identity checks always
//! run, and the recorded numbers state the core count, so the JSON never
//! claims parallel speedup the hardware cannot produce.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{json_prologue, metrics_block, quick, report_row};
use swdb_model::Graph;
use swdb_obs::{Metrics, MetricsLevel};
use swdb_reason::MaterializedStore;
use swdb_workloads::{schema_graph, university, SchemaGraphConfig, UniversityConfig};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn university_workload(target: usize) -> Graph {
    let departments = (target / 160).max(1);
    university(
        &UniversityConfig {
            departments,
            courses_per_department: 10,
            professors_per_department: 6,
            students_per_department: 30,
            enrollments_per_student: 3,
        },
        0xE21,
    )
}

fn random_workload(target: usize) -> Graph {
    schema_graph(
        &SchemaGraphConfig {
            classes: 32,
            properties: 12,
            edge_probability: 0.10,
            instances: target / 6,
            data_triples: target - target / 6,
        },
        0xE21,
    )
}

/// Best-of-N wall clock after one warm-up run.
fn measure(rounds: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best
}

struct Row {
    workload: &'static str,
    triples: usize,
    closure_triples: usize,
    threads: usize,
    load_ms: f64,
    speedup: f64,
}

fn bench(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<Row> = Vec::new();
    let mut group = c.benchmark_group("e21_parallel_closure");

    for &target in &[10_000usize, 50_000] {
        for (workload, data) in [
            ("university", university_workload(target)),
            ("random_rdf", random_workload(target)),
        ] {
            let n = data.len();

            // Sequential baseline (the PR 2 batch path, preserved exactly
            // at thread count 1), plus the reference closure and log for
            // the differential pins.
            let mut reference = MaterializedStore::with_threads(1);
            let reference_added: BTreeSet<_> = reference
                .insert_graph_with_delta(&data)
                .added
                .into_iter()
                .collect();
            let sequential = measure(2, || {
                let mut m = MaterializedStore::with_threads(1);
                m.insert_graph(&data);
                criterion::black_box(m.closure_len());
            });
            let sequential_ms = sequential.as_secs_f64() * 1e3;
            rows.push(Row {
                workload,
                triples: n,
                closure_triples: reference.closure_len(),
                threads: 1,
                load_ms: sequential_ms,
                speedup: 1.0,
            });

            for &threads in &THREAD_SWEEP[1..] {
                // Differential pin: bit-identical closure index, identical
                // added-log set.
                let mut parallel = MaterializedStore::with_threads(threads);
                let added: BTreeSet<_> = parallel
                    .insert_graph_with_delta(&data)
                    .added
                    .into_iter()
                    .collect();
                assert_eq!(
                    parallel.closure_index(),
                    reference.closure_index(),
                    "{workload} n={n}: closure diverged at threads={threads}"
                );
                assert_eq!(
                    added, reference_added,
                    "{workload} n={n}: added log diverged at threads={threads}"
                );

                let load = measure(2, || {
                    let mut m = MaterializedStore::with_threads(threads);
                    m.insert_graph(&data);
                    criterion::black_box(m.closure_len());
                });
                let load_ms = load.as_secs_f64() * 1e3;
                rows.push(Row {
                    workload,
                    triples: n,
                    closure_triples: reference.closure_len(),
                    threads,
                    load_ms,
                    speedup: sequential_ms / load_ms.max(1e-9),
                });
                report_row(
                    "E21",
                    &format!("{workload} n={n} threads={threads}"),
                    &[
                        ("load_ms", format!("{load_ms:.1}")),
                        ("sequential_ms", format!("{sequential_ms:.1}")),
                        (
                            "speedup",
                            format!("{:.2}x", sequential_ms / load_ms.max(1e-9)),
                        ),
                    ],
                );
            }

            // Criterion timings at the 10k point only — each iteration is
            // a full bulk load.
            if target == 10_000 {
                for &threads in &THREAD_SWEEP {
                    group.bench_with_input(
                        BenchmarkId::new(format!("bulk_load/{workload}/t{threads}"), n),
                        &threads,
                        |b, &threads| {
                            b.iter(|| {
                                let mut m = MaterializedStore::with_threads(threads);
                                m.insert_graph(&data);
                                criterion::black_box(m.closure_len())
                            })
                        },
                    );
                }
            }
        }
    }
    group.finish();
    write_json(&rows, cores, &instrumented_snapshot());

    // Acceptance: the 2× bar at 4 threads is a statement about dedicated
    // parallel hardware. It is asserted only when `E21_ASSERT_SPEEDUP=1`
    // is set on a host with ≥ 4 cores — shared CI runners report 4 vCPUs
    // over 2 noisy physical cores, where a hard assert would flake — and
    // otherwise the measured ratio is reported (and recorded in the JSON)
    // without failing the run. The differential identity checks above are
    // unconditional.
    let point = rows
        .iter()
        .find(|r| {
            r.workload == "university" && r.triples > 5_000 && r.triples < 20_000 && r.threads == 4
        })
        .expect("the 10k university / 4-thread point was measured");
    let assert_requested = std::env::var("E21_ASSERT_SPEEDUP").is_ok_and(|v| v.trim() == "1");
    if assert_requested && cores >= 4 {
        assert!(
            point.speedup >= 2.0,
            "bulk load at 4 threads must beat the sequential batch path 2x \
             on the 10k university workload: measured {:.2}x",
            point.speedup
        );
    } else {
        println!(
            "[E21] 10k university at 4 threads: {:.2}x vs sequential on {cores} core(s); \
             the 2x acceptance bar is asserted with E21_ASSERT_SPEEDUP=1 on >= 4 dedicated cores",
            point.speedup
        );
    }
}

/// One instrumented 4-thread bulk load at `Debug` level: the report carries
/// the round structure, shard sizes and per-round utilization histograms of
/// the sharded schedule.
fn instrumented_snapshot() -> String {
    let metrics = Metrics::new(MetricsLevel::Debug);
    let data = university_workload(10_000);
    let mut store = MaterializedStore::with_threads(4);
    store.set_metrics(metrics.clone());
    store.insert_graph(&data);
    metrics.snapshot().to_json()
}

fn write_json(rows: &[Row], cores: usize, metrics_json: &str) {
    let mut out = json_prologue("e21_parallel_closure");
    out.push_str(
        "  \"acceptance\": \"bulk load at 4 threads >= 2x the sequential batch path on 10k university (asserted with E21_ASSERT_SPEEDUP=1 on >= 4 dedicated cores); closure index and added log bit-identical at every thread count\",\n",
    );
    out.push_str("  \"mode\": \"release, best-of-N after warm-up\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str("  \"bulk_load\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"triples\": {}, \"closure_triples\": {}, \"threads\": {}, \"load_ms\": {:.1}, \"speedup_vs_sequential\": {:.2}}}{}\n",
            r.workload,
            r.triples,
            r.closure_triples,
            r.threads,
            r.load_ms,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&metrics_block(metrics_json));
    out.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e21.json");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_e21.json: {e}");
    } else {
        println!("[E21] results recorded in BENCH_e21.json");
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
