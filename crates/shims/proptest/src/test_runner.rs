//! Per-case configuration and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the deterministic,
        // shrink-free shim suite fast while still exercising plenty of
        // structure.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Seeded from the case index, so every run of
/// a test generates the same case sequence and failures are reproducible by
/// case number.
#[derive(Clone, Debug)]
pub struct TestRng {
    /// The underlying generator (public so strategy impls can sample).
    pub rng: StdRng,
}

impl TestRng {
    /// The generator for the given case index.
    pub fn for_case(case: u64) -> Self {
        // Offset the seed so case 0 does not start at SplitMix64's weak
        // all-zero state neighbourhood.
        TestRng {
            rng: StdRng::seed_from_u64(case.wrapping_mul(0x9E37_79B9) ^ 0xC0FF_EE11),
        }
    }
}
