//! The art-gallery example of Fig. 1.
//!
//! The figure describes a small schema for art resources: painters and
//! sculptors are artists, paintings and sculptures are artifacts, `paints`
//! and `sculpts` are sub-properties of `creates` with domain Artist and
//! range Artifact, artifacts are exhibited in museums, and the data level
//! records that Picasso paints Guernica — illustrating that schema and data
//! live in the same graph.

use swdb_model::{graph, rdfs, Graph};
use swdb_query::{query, Query};

/// The schema part of Fig. 1.
pub fn schema() -> Graph {
    graph([
        // class hierarchy
        ("art:Painter", rdfs::SC, "art:Artist"),
        ("art:Sculptor", rdfs::SC, "art:Artist"),
        ("art:Painting", rdfs::SC, "art:Artifact"),
        ("art:Sculpture", rdfs::SC, "art:Artifact"),
        ("art:Artist", rdfs::SC, "art:Person"),
        // property hierarchy
        ("art:paints", rdfs::SP, "art:creates"),
        ("art:sculpts", rdfs::SP, "art:creates"),
        // domains and ranges
        ("art:creates", rdfs::DOM, "art:Artist"),
        ("art:creates", rdfs::RANGE, "art:Artifact"),
        ("art:exhibited", rdfs::DOM, "art:Artifact"),
        ("art:exhibited", rdfs::RANGE, "art:Museum"),
    ])
}

/// The data part of Fig. 1 (plus a couple of unnamed artifacts to exercise
/// blank nodes).
pub fn data() -> Graph {
    graph([
        ("art:Picasso", "art:paints", "art:Guernica"),
        ("art:Picasso", rdfs::TYPE, "art:Painter"),
        ("art:Rodin", "art:sculpts", "art:TheThinker"),
        ("art:Guernica", "art:exhibited", "art:ReinaSofia"),
        ("art:TheThinker", "art:exhibited", "art:Rodin_Museum"),
        ("art:Botticelli", "art:paints", "art:Primavera"),
        ("art:Primavera", "art:exhibited", "art:Uffizi"),
        // An anonymous Flemish painter with an anonymous painting.
        ("_:flemish1", rdfs::TYPE, "art:Flemish"),
        ("art:Flemish", rdfs::SC, "art:Painter"),
        ("_:flemish1", "art:paints", "_:work1"),
        ("_:work1", "art:exhibited", "art:Uffizi"),
    ])
}

/// The whole Fig. 1 graph: schema and data together.
pub fn figure1() -> Graph {
    schema().union(&data())
}

/// The query of §4: artifacts created by Flemish artists exhibited at the
/// Uffizi, `(?A, creates, ?Y) ← (?A, type, Flemish), (?A, paints, ?Y),
/// (?Y, exhibited, Uffizi)`.
pub fn flemish_query() -> Query {
    query(
        [("?A", "art:creates", "?Y")],
        [
            ("?A", rdfs::TYPE, "art:Flemish"),
            ("?A", "art:paints", "?Y"),
            ("?Y", "art:exhibited", "art:Uffizi"),
        ],
    )
}

/// "Who creates what" — only answerable through the subproperty semantics.
pub fn creators_query() -> Query {
    query([("?X", "art:creates", "?Y")], [("?X", "art:creates", "?Y")])
}

/// "Which resources are artists" — only answerable through domain typing and
/// subclass lifting.
pub fn artists_query() -> Query {
    query(
        [("?X", rdfs::TYPE, "art:Artist")],
        [("?X", rdfs::TYPE, "art:Artist")],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::triple;
    use swdb_query::answer_union;

    #[test]
    fn figure1_has_schema_and_data_in_one_graph() {
        let g = figure1();
        assert!(g.len() >= 20);
        assert!(!g.is_simple());
        assert!(!g.is_ground());
        // paints is both an arc label and a node label, as the caption notes.
        assert!(g.contains(&triple("art:paints", rdfs::SP, "art:creates")));
        assert!(g.iter().any(|t| t.predicate().as_str() == "art:paints"));
    }

    #[test]
    fn creators_are_inferred_through_subproperties() {
        let answers = answer_union(&creators_query(), &figure1());
        assert!(answers.contains(&triple("art:Picasso", "art:creates", "art:Guernica")));
        assert!(answers.contains(&triple("art:Rodin", "art:creates", "art:TheThinker")));
    }

    #[test]
    fn artists_are_inferred_through_domains_and_subclasses() {
        let answers = answer_union(&artists_query(), &figure1());
        assert!(answers.contains(&triple("art:Picasso", rdfs::TYPE, "art:Artist")));
        assert!(answers.contains(&triple("art:Rodin", rdfs::TYPE, "art:Artist")));
    }

    #[test]
    fn flemish_query_returns_the_anonymous_work() {
        let answers = answer_union(&flemish_query(), &figure1());
        assert_eq!(answers.len(), 1);
        let t = answers.iter().next().unwrap();
        assert_eq!(t.predicate().as_str(), "art:creates");
        assert!(t.subject().is_blank());
        assert!(t.object().is_blank());
    }
}
