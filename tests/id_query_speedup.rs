//! The acceptance property behind bench E18: premise-free answering through
//! the id-space read path beats the string-space evaluator by a wide
//! margin once the evaluation structures are warm. Demonstrated here at a
//! scale that stays fast in debug builds with a conservative 5× bar
//! (best-of-N on both sides; the release-mode margin recorded in
//! `BENCH_e18.json` is far larger); the bench reports it at 1k/10k.

use std::time::{Duration, Instant};

use semweb_foundations::core::{SemanticWebDatabase, Semantics};
use semweb_foundations::query::{answer_against, NormalizedDatabase};
use semweb_foundations::workloads::{university, UniversityConfig};

fn best_of(n: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("n > 0")
}

#[test]
fn warm_id_space_answering_beats_string_space_by_5x() {
    let data = university(
        &UniversityConfig {
            departments: 12,
            courses_per_department: 8,
            professors_per_department: 4,
            students_per_department: 20,
            enrollments_per_student: 3,
        },
        0xE18,
    );
    let q = semweb_foundations::workloads::university::workers_query();

    // String-space warm path: the evaluation graph is already normalized,
    // but every call rebuilds the term-keyed GraphIndex and joins on
    // cloned terms — exactly what the facade did per query before the id
    // engine.
    let normalized = NormalizedDatabase::without_premise(&data);
    // Id-space warm path: the facade compiles the query against the
    // dictionary and joins over the cached id-index.
    let mut db = SemanticWebDatabase::from_graph(data);
    assert_eq!(
        db.answer(&q, Semantics::Union),
        answer_against(&q, &normalized, Semantics::Union),
        "both paths must agree before being compared on speed"
    );

    let string_time = best_of(3, || {
        std::hint::black_box(answer_against(&q, &normalized, Semantics::Union));
    });
    let id_time = best_of(3, || {
        std::hint::black_box(db.answer(&q, Semantics::Union));
    });
    assert!(
        string_time >= id_time * 5,
        "expected >=5x speedup: string-space {string_time:?} vs id-space {id_time:?}"
    );
}
