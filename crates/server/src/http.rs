//! Hand-rolled HTTP/1.1: deadline-enforced request reading (keep-alive and
//! pipelining via a per-connection carry buffer), size caps, and response
//! writing. The parser is deliberately strict — anything malformed is a
//! `400` and the connection closes — because on a fault-hardened server an
//! ambiguous request is an attack surface, not a compatibility feature.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use swdb_obs::{Counter, Hist, MetricsLevel};

use crate::handlers;
use crate::Shared;

/// Poll quantum for the deadline loops: short enough that a deadline is
/// enforced promptly, long enough to stay off the scheduler's back.
const POLL: Duration = Duration::from_millis(50);

/// One parsed request.
pub(crate) struct Request {
    pub(crate) method: String,
    /// Path without the query string.
    pub(crate) path: String,
    /// Raw query string (without the `?`), if any.
    pub(crate) query: Option<String>,
    pub(crate) body: Vec<u8>,
    keep_alive: bool,
}

impl Request {
    /// The value of a `k=v` query parameter, if present.
    pub(crate) fn param(&self, key: &str) -> Option<&str> {
        self.query
            .as_deref()?
            .split('&')
            .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
    }
}

/// A response under construction.
pub(crate) struct Response {
    pub(crate) status: u16,
    pub(crate) body: Vec<u8>,
    pub(crate) content_type: &'static str,
    pub(crate) headers: Vec<(String, String)>,
    /// Force `Connection: close` regardless of the request's wish.
    pub(crate) close: bool,
}

impl Response {
    pub(crate) fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            body: body.into(),
            content_type,
            headers: Vec::new(),
            close: false,
        }
    }

    pub(crate) fn json(status: u16, body: String) -> Self {
        Response::new(status, "application/json", body)
    }

    pub(crate) fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    pub(crate) fn header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }

    fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

enum ReadOutcome {
    Ready(Request),
    /// Peer closed (or half-closed) before a complete request: nothing to
    /// answer.
    Closed,
    /// Protocol violation: answer this and close.
    Bad(Response),
    /// Read deadline exceeded mid-request (slow-loris or genuine stall).
    TimedOut,
}

/// Reads one complete request from `stream`, carrying leftover pipelined
/// bytes across calls in `buf`. Every byte must arrive before `deadline`.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Shared,
    deadline: Instant,
) -> ReadOutcome {
    let config = &shared.config;
    // ---- head ----
    let head_end = loop {
        if let Some(at) = find_head_end(buf) {
            break at;
        }
        if buf.len() > config.max_head_bytes {
            return ReadOutcome::Bad(Response::text(431, "request head too large\n"));
        }
        match fill(stream, buf, deadline) {
            Fill::Got => {}
            Fill::Eof => return ReadOutcome::Closed,
            Fill::TimedOut => {
                // An idle keep-alive connection timing out between
                // requests is a normal close, not a protocol error.
                return if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::TimedOut
                };
            }
            Fill::Err => return ReadOutcome::Closed,
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h.to_string(),
        Err(_) => return ReadOutcome::Bad(Response::text(400, "non-UTF-8 request head\n")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return ReadOutcome::Bad(Response::text(400, "malformed request line\n")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return ReadOutcome::Bad(Response::text(400, "unsupported HTTP version\n"));
    }
    let mut content_length: usize = 0;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Bad(Response::text(400, "malformed header line\n"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return ReadOutcome::Bad(Response::text(400, "bad Content-Length\n")),
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return ReadOutcome::Bad(Response::text(
                501,
                "chunked transfer encoding not supported\n",
            ));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > config.max_request_bytes {
        return ReadOutcome::Bad(Response::text(413, "request body too large\n"));
    }
    // ---- body ----
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        match fill(stream, buf, deadline) {
            Fill::Got => {}
            Fill::Eof => return ReadOutcome::Closed,
            Fill::TimedOut => return ReadOutcome::TimedOut,
            Fill::Err => return ReadOutcome::Closed,
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    let body = buf[body_start..body_start + content_length].to_vec();
    // Keep pipelined leftovers for the next request on this connection.
    buf.drain(..body_start + content_length);
    ReadOutcome::Ready(Request {
        method: method.to_string(),
        path,
        query,
        body,
        keep_alive,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

enum Fill {
    Got,
    Eof,
    TimedOut,
    Err,
}

/// One deadline-aware read into `buf`: the socket timeout is the poll
/// quantum, the *deadline* is enforced here — a client dripping one byte
/// per poll cannot extend it.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>, deadline: Instant) -> Fill {
    let mut chunk = [0u8; 4096];
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Fill::TimedOut;
        }
        let _ = stream.set_read_timeout(Some(POLL.min(deadline - now)));
        match stream.read(&mut chunk) {
            Ok(0) => return Fill::Eof,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Fill::Got;
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Fill::Err,
        }
    }
}

/// Serializes and writes a response; returns `false` when the connection
/// must close afterwards (by response demand, request wish, or write
/// error).
fn write_response(stream: &mut TcpStream, response: &Response, keep_alive: bool) -> bool {
    let keep = keep_alive && !response.close;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&response.body);
    let written = stream.write_all(&out).is_ok() && stream.flush().is_ok();
    keep && written
}

/// The overload answer written from the accept loop when the work queue
/// is full: best-effort, bounded by the write timeout, never blocks the
/// acceptor on a dead peer.
pub(crate) fn shed(mut stream: TcpStream, retry_after_secs: u64, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let response = Response::text(503, "server overloaded, retry later\n")
        .header("retry-after", retry_after_secs.to_string())
        .closing();
    let _ = write_response(&mut stream, &response, false);
}

/// Serves one connection to completion: up to `max_requests_per_connection`
/// keep-alive requests, each under its own read deadline, each answered
/// through [`handlers::handle`]. Every exit path has written whatever
/// answer the protocol allows and lets the socket drop.
pub(crate) fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let config = &shared.config;
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::new();
    for served in 0..config.max_requests_per_connection {
        let deadline = Instant::now() + config.read_timeout;
        match read_request(&mut stream, &mut buf, shared, deadline) {
            ReadOutcome::Ready(request) => {
                shared.metrics.count(Counter::ServerRequests, 1);
                let t0 = shared.metrics.on(MetricsLevel::Debug).then(Instant::now);
                let mut response = handlers::handle(shared, &request);
                if let Some(t0) = t0 {
                    shared
                        .metrics
                        .record(Hist::SpanServerRequestNs, t0.elapsed().as_nanos() as u64);
                }
                // Drain-on-shutdown: answer the in-flight request, then
                // close instead of idling in keep-alive.
                if shared.shutting_down() || served + 1 == config.max_requests_per_connection {
                    response = response.closing();
                }
                if !write_response(&mut stream, &response, request.keep_alive) {
                    return;
                }
            }
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut => {
                shared.metrics.count(Counter::ServerTimeouts, 1);
                let response = Response::text(408, "request deadline exceeded\n").closing();
                let _ = write_response(&mut stream, &response, false);
                return;
            }
            ReadOutcome::Bad(response) => {
                shared.metrics.count(Counter::ServerBadRequests, 1);
                let _ = write_response(&mut stream, &response.closing(), false);
                return;
            }
        }
    }
}
