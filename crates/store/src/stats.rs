//! Descriptive statistics of RDF graphs.
//!
//! The experiment harness reports these statistics alongside timings so that
//! the shape of each workload (blank density, schema fraction, fan-out) is
//! visible next to the measured behaviour.

use std::collections::BTreeMap;

use swdb_model::{rdfs, Graph, Iri};

/// Summary statistics of an RDF graph.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Number of triples.
    pub triples: usize,
    /// Number of distinct terms in the universe.
    pub universe: usize,
    /// Number of distinct blank nodes.
    pub blank_nodes: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of triples whose predicate belongs to the RDFS vocabulary.
    pub schema_triples: usize,
    /// Number of ground triples.
    pub ground_triples: usize,
    /// Histogram of predicate usage.
    pub predicate_histogram: BTreeMap<Iri, usize>,
}

impl GraphStats {
    /// Computes the statistics for a graph.
    pub fn of(graph: &Graph) -> GraphStats {
        let mut histogram: BTreeMap<Iri, usize> = BTreeMap::new();
        let mut schema_triples = 0usize;
        let mut ground_triples = 0usize;
        for t in graph.iter() {
            *histogram.entry(t.predicate().clone()).or_insert(0) += 1;
            if rdfs::is_reserved(t.predicate()) {
                schema_triples += 1;
            }
            if t.is_ground() {
                ground_triples += 1;
            }
        }
        GraphStats {
            triples: graph.len(),
            universe: graph.universe().len(),
            blank_nodes: graph.blank_nodes().len(),
            predicates: histogram.len(),
            schema_triples,
            ground_triples,
            predicate_histogram: histogram,
        }
    }

    /// Fraction of triples mentioning at least one blank node.
    pub fn blank_density(&self) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        (self.triples - self.ground_triples) as f64 / self.triples as f64
    }

    /// Fraction of triples using the RDFS vocabulary as predicate.
    pub fn schema_fraction(&self) -> f64 {
        if self.triples == 0 {
            return 0.0;
        }
        self.schema_triples as f64 / self.triples as f64
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} triples, {} terms, {} blanks ({:.0}% blank density), {} predicates, {:.0}% schema",
            self.triples,
            self.universe,
            self.blank_nodes,
            self.blank_density() * 100.0,
            self.predicates,
            self.schema_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::graph;

    #[test]
    fn statistics_of_a_mixed_graph() {
        let g = graph([
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:paints", rdfs::SP, "ex:creates"),
            ("_:X", rdfs::TYPE, "ex:Painter"),
            ("_:X", "ex:paints", "_:Y"),
        ]);
        let stats = GraphStats::of(&g);
        assert_eq!(stats.triples, 4);
        assert_eq!(stats.blank_nodes, 2);
        assert_eq!(stats.schema_triples, 2);
        assert_eq!(stats.ground_triples, 2);
        assert_eq!(stats.predicates, 3);
        assert_eq!(stats.predicate_histogram[&Iri::new("ex:paints")], 2);
        assert!((stats.blank_density() - 0.5).abs() < 1e-9);
        assert!((stats.schema_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_statistics() {
        let stats = GraphStats::of(&Graph::new());
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.blank_density(), 0.0);
        assert_eq!(stats.schema_fraction(), 0.0);
    }

    #[test]
    fn summary_is_human_readable() {
        let g = graph([("ex:a", "ex:p", "_:X")]);
        let s = GraphStats::of(&g).summary();
        assert!(s.contains("1 triples"));
        assert!(s.contains("100% blank density"));
    }
}
