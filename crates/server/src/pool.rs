//! The bounded work queue between the accept loop and the worker pool:
//! `Mutex<VecDeque>` + `Condvar`, capacity-capped so overload turns into
//! explicit load shedding at the accept side instead of unbounded latency.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};

use swdb_obs::{Gauge, Metrics};

struct QueueState {
    items: VecDeque<TcpStream>,
    closed: bool,
}

pub(crate) struct WorkQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    metrics: Metrics,
}

impl WorkQueue {
    pub(crate) fn new(capacity: usize, metrics: Metrics) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            metrics,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // The queue's critical sections only move pointers — no user code
        // runs under the lock — so a poisoned lock (possible only if a
        // panic unwound through one of these few lines) still holds a
        // structurally sound queue.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueues a connection, or hands it back when the queue is full or
    /// closed (the caller sheds it).
    pub(crate) fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(stream);
        }
        state.items.push_back(stream);
        self.metrics
            .gauge_set(Gauge::ServerQueueDepth, state.items.len() as u64);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once the queue is closed
    /// *and* drained — queued connections are still served after close, so
    /// shutdown never drops an accepted connection on the floor.
    pub(crate) fn pop(&self) -> Option<TcpStream> {
        let mut state = self.lock();
        loop {
            if let Some(stream) = state.items.pop_front() {
                self.metrics
                    .gauge_set(Gauge::ServerQueueDepth, state.items.len() as u64);
                return Some(stream);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue and wakes every blocked worker.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }
}
