//! RDF graphs: sets of RDF triples (Definition 2.1).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::map::TermMap;
use crate::term::{rdfs, BlankNode, Iri, Term};
use crate::triple::Triple;

/// An RDF graph — a finite set of RDF triples (Definition 2.1 of the paper).
///
/// The triple set is kept in a [`BTreeSet`] so that iteration order is
/// deterministic, which makes test output, serialization and benchmark
/// workloads reproducible.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    triples: BTreeSet<Triple>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph from anything that yields triples.
    pub fn from_triples<I, T>(triples: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<Triple>,
    {
        Graph {
            triples: triples.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of triples in the graph, written `|G|` in the paper.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Returns `true` if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Inserts a triple; returns `true` if it was not already present.
    pub fn insert(&mut self, triple: impl Into<Triple>) -> bool {
        self.triples.insert(triple.into())
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, triple: &Triple) -> bool {
        self.triples.remove(triple)
    }

    /// Returns `true` if the triple belongs to the graph.
    pub fn contains(&self, triple: &Triple) -> bool {
        self.triples.contains(triple)
    }

    /// Iterates over the triples in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> + '_ {
        self.triples.iter()
    }

    /// Consumes the graph and returns its triple set.
    pub fn into_triples(self) -> BTreeSet<Triple> {
        self.triples
    }

    /// Returns `true` if `self ⊆ other` as sets of triples (i.e. `self` is a
    /// *subgraph* of `other` in the sense of Definition 2.1).
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        self.triples.is_subset(&other.triples)
    }

    /// Returns `true` if `self ⊊ other` (a proper subgraph).
    pub fn is_proper_subgraph_of(&self, other: &Graph) -> bool {
        self.len() < other.len() && self.is_subgraph_of(other)
    }

    /// The *universe* of the graph: the set of elements of `UB` occurring in
    /// subject or object position, together with the predicates viewed as
    /// terms (Definition 2.1: "the set of elements of UB that occur in the
    /// triples of G").
    pub fn universe(&self) -> BTreeSet<Term> {
        let mut out = BTreeSet::new();
        for t in &self.triples {
            out.insert(t.subject().clone());
            out.insert(Term::Iri(t.predicate().clone()));
            out.insert(t.object().clone());
        }
        out
    }

    /// The *vocabulary* of the graph: `universe(G) ∩ U` (Definition 2.1).
    pub fn vocabulary(&self) -> BTreeSet<Iri> {
        self.universe()
            .into_iter()
            .filter_map(|t| match t {
                Term::Iri(iri) => Some(iri),
                Term::Blank(_) => None,
            })
            .collect()
    }

    /// The set of blank nodes occurring in the graph.
    pub fn blank_nodes(&self) -> BTreeSet<BlankNode> {
        let mut out = BTreeSet::new();
        for t in &self.triples {
            for term in t.node_terms() {
                if let Term::Blank(b) = term {
                    out.insert(b.clone());
                }
            }
        }
        out
    }

    /// Returns `true` if the graph has no blank nodes (a *ground* graph).
    pub fn is_ground(&self) -> bool {
        self.triples.iter().all(Triple::is_ground)
    }

    /// Returns `true` if the graph does not mention the RDFS vocabulary
    /// (`rdfsV ∩ voc(G) = ∅`), i.e. it is a *simple* graph
    /// (Definition 2.2).
    pub fn is_simple(&self) -> bool {
        self.vocabulary().iter().all(|iri| !rdfs::is_reserved(iri))
    }

    /// The set-theoretical union `G1 ∪ G2` (§2.1). Blank nodes with the same
    /// label are identified, exactly as in the paper's union operation.
    pub fn union(&self, other: &Graph) -> Graph {
        let mut triples = self.triples.clone();
        triples.extend(other.triples.iter().cloned());
        Graph { triples }
    }

    /// The *merge* `G1 + G2` (§2.1): the union of `G1` with an isomorphic
    /// copy of `G2` whose blank nodes are disjoint from those of `G1`.
    ///
    /// The merge is unique up to isomorphism; this implementation renames the
    /// clashing blank nodes of `G2` with fresh labels derived from a counter
    /// that avoids every label in either graph.
    pub fn merge(&self, other: &Graph) -> Graph {
        let mine = self.blank_nodes();
        let theirs = other.blank_nodes();
        let clashes: Vec<&BlankNode> = theirs.iter().filter(|b| mine.contains(*b)).collect();
        if clashes.is_empty() {
            return self.union(other);
        }
        let mut used: BTreeSet<String> = mine
            .iter()
            .chain(theirs.iter())
            .map(|b| b.as_str().to_owned())
            .collect();
        let mut renaming: BTreeMap<BlankNode, Term> = BTreeMap::new();
        let mut counter = 0usize;
        for blank in clashes {
            let fresh = loop {
                let candidate = format!("{}~m{}", blank.as_str(), counter);
                counter += 1;
                if !used.contains(&candidate) {
                    break candidate;
                }
            };
            used.insert(fresh.clone());
            renaming.insert(blank.clone(), Term::blank(fresh));
        }
        let map = TermMap::from_bindings(renaming);
        self.union(&map.apply_graph(other))
    }

    /// Applies a map `μ` to the graph, returning `μ(G)` (§2.1).
    pub fn apply(&self, map: &TermMap) -> Graph {
        map.apply_graph(self)
    }

    /// Returns the subgraph of triples whose predicate equals `p`.
    pub fn triples_with_predicate(&self, p: &Iri) -> impl Iterator<Item = &Triple> + '_ {
        let p = p.clone();
        self.triples.iter().filter(move |t| t.predicate() == &p)
    }

    /// Returns the triples whose subject equals the given term.
    pub fn triples_with_subject<'a>(
        &'a self,
        s: &'a Term,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples.iter().filter(move |t| t.subject() == s)
    }

    /// Returns the triples whose object equals the given term.
    pub fn triples_with_object<'a>(&'a self, o: &'a Term) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples.iter().filter(move |t| t.object() == o)
    }

    /// Returns the triples that mention the given term in subject or object
    /// position.
    pub fn triples_mentioning<'a>(
        &'a self,
        term: &'a Term,
    ) -> impl Iterator<Item = &'a Triple> + 'a {
        self.triples
            .iter()
            .filter(move |t| t.subject() == term || t.object() == term)
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &Graph) -> Graph {
        Graph {
            triples: self.triples.difference(&other.triples).cloned().collect(),
        }
    }

    /// Set intersection `self ∩ other`.
    pub fn intersection(&self, other: &Graph) -> Graph {
        Graph {
            triples: self.triples.intersection(&other.triples).cloned().collect(),
        }
    }

    /// Retains only the triples satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&Triple) -> bool) {
        self.triples.retain(|t| keep(t));
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph {{")?;
        for t in &self.triples {
            writeln!(f, "  {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for t in &self.triples {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph {
            triples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        self.triples.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Graph {
    type Item = &'a Triple;
    type IntoIter = std::collections::btree_set::Iter<'a, Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.iter()
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::collections::btree_set::IntoIter<Triple>;

    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

/// Builds a graph from `(s, p, o)` string shorthand, interpreting labels that
/// start with `"_:"` as blank nodes (see [`crate::triple::triple`]).
pub fn graph<'a>(triples: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>) -> Graph {
    triples
        .into_iter()
        .map(|(s, p, o)| crate::triple::triple(s, p, o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triple::triple;

    fn sample() -> Graph {
        graph([
            ("ex:Picasso", "ex:paints", "ex:Guernica"),
            ("ex:paints", "rdfs:subPropertyOf", "ex:creates"),
            ("_:X", "rdf:type", "ex:Painter"),
        ])
    }

    #[test]
    fn len_contains_insert_remove() {
        let mut g = sample();
        assert_eq!(g.len(), 3);
        let t = triple("ex:a", "ex:p", "ex:b");
        assert!(!g.contains(&t));
        assert!(g.insert(t.clone()));
        assert!(!g.insert(t.clone()), "re-inserting must report false");
        assert_eq!(g.len(), 4);
        assert!(g.remove(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn universe_and_vocabulary() {
        let g = sample();
        let universe = g.universe();
        assert!(universe.contains(&Term::iri("ex:Picasso")));
        assert!(universe.contains(&Term::iri("ex:paints")));
        assert!(universe.contains(&Term::blank("X")));
        // vocabulary = universe ∩ U: the blank is excluded.
        let voc = g.vocabulary();
        assert!(voc.iter().any(|i| i.as_str() == "ex:paints"));
        assert!(voc.iter().all(|i| i.as_str() != "X"));
    }

    #[test]
    fn groundness_and_simplicity() {
        let g = sample();
        assert!(!g.is_ground(), "sample has a blank node");
        assert!(!g.is_simple(), "sample mentions rdfs vocabulary");
        let simple = graph([("ex:a", "ex:p", "_:X")]);
        assert!(simple.is_simple());
        assert!(!simple.is_ground());
        let ground = graph([("ex:a", "ex:p", "ex:b")]);
        assert!(ground.is_ground());
    }

    #[test]
    fn union_identifies_equal_blank_labels() {
        let g1 = graph([("_:X", "ex:p", "ex:a")]);
        let g2 = graph([("_:X", "ex:q", "ex:b")]);
        let u = g1.union(&g2);
        assert_eq!(u.len(), 2);
        assert_eq!(u.blank_nodes().len(), 1, "union shares the blank node X");
    }

    #[test]
    fn merge_renames_clashing_blanks_apart() {
        let g1 = graph([("_:X", "ex:p", "ex:a")]);
        let g2 = graph([("_:X", "ex:q", "ex:b")]);
        let m = g1.merge(&g2);
        assert_eq!(m.len(), 2);
        assert_eq!(
            m.blank_nodes().len(),
            2,
            "merge must keep the two X blanks distinct"
        );
        // The copy of g1 inside the merge is untouched.
        assert!(m.contains(&triple("_:X", "ex:p", "ex:a")));
    }

    #[test]
    fn merge_without_clashes_is_union() {
        let g1 = graph([("_:X", "ex:p", "ex:a")]);
        let g2 = graph([("_:Y", "ex:q", "ex:b")]);
        assert_eq!(g1.merge(&g2), g1.union(&g2));
    }

    #[test]
    fn subgraph_relations() {
        let g = sample();
        let sub = graph([("ex:Picasso", "ex:paints", "ex:Guernica")]);
        assert!(sub.is_subgraph_of(&g));
        assert!(sub.is_proper_subgraph_of(&g));
        assert!(g.is_subgraph_of(&g));
        assert!(!g.is_proper_subgraph_of(&g));
        assert!(!g.is_subgraph_of(&sub));
    }

    #[test]
    fn difference_and_intersection() {
        let g = sample();
        let sub = graph([("ex:Picasso", "ex:paints", "ex:Guernica")]);
        assert_eq!(g.difference(&sub).len(), 2);
        assert_eq!(g.intersection(&sub), sub);
    }

    #[test]
    fn pattern_scans() {
        let g = sample();
        assert_eq!(g.triples_with_predicate(&Iri::new("ex:paints")).count(), 1);
        assert_eq!(g.triples_with_subject(&Term::iri("ex:Picasso")).count(), 1);
        assert_eq!(g.triples_with_object(&Term::iri("ex:Guernica")).count(), 1);
        assert_eq!(g.triples_mentioning(&Term::blank("X")).count(), 1);
    }

    #[test]
    fn display_lists_triples() {
        let g = graph([("ex:a", "ex:p", "ex:b")]);
        assert_eq!(g.to_string(), "{(ex:a, ex:p, ex:b)}");
    }
}
