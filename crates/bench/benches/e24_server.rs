//! E24 — serving: reader latency on pinned snapshots under a busy writer.
//!
//! The MVCC claim of the publication layer is that readers never block
//! writers (and vice versa): a reader pins an immutable
//! [`PublishedSnapshot`] and answers on it without taking the facade lock,
//! while the writer keeps mutating and publishing new epochs. This
//! experiment measures that claim differentially on the ~10k-triple
//! university graph:
//!
//! - **Phase A (idle writer)**: 4 reader threads pin + answer in a loop;
//!   the writer does nothing. This is the baseline reader latency.
//! - **Phase B (busy writer)**: the same 4 readers while the main thread
//!   hammers insert/remove/publish as fast as it can.
//!
//! The acceptance bar — busy-writer reader p99 within 2x of the
//! idle-writer p99 at 4 reader threads — is asserted with
//! `E24_ASSERT_ISOLATION=1` on >= 4 dedicated cores; on smaller hosts the
//! ratio is reported honestly (as in `BENCH_e21.json`) because readers and
//! the writer then contend for cores, not locks.
//!
//! Results land on stdout and in `BENCH_e24.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use swdb_bench::{json_prologue, metrics_block, quick, report_row};
use swdb_core::{MetricsLevel, SemanticWebDatabase, Semantics, SnapshotReader};
use swdb_model::triple;
use swdb_workloads::university::persons_query;
use swdb_workloads::{university, UniversityConfig};

/// ~10k triples at ~58 triples per department.
const DEPARTMENTS: usize = 175;
const READER_THREADS: usize = 4;
/// Per-phase measurement window.
const PHASE: Duration = Duration::from_millis(1500);

fn quantile(sorted_ns: &[u64], q: f64) -> u64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * q).round() as usize;
    sorted_ns[idx]
}

/// Runs one phase: `READER_THREADS` readers pin + answer until the stop
/// flag; `writer` runs on the calling thread until the deadline it is
/// handed. Returns the merged, sorted per-answer latencies in nanoseconds.
fn phase(reader: &SnapshotReader, writer: impl FnOnce(Instant)) -> Vec<u64> {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Arc::new(Barrier::new(READER_THREADS + 1));
    let threads: Vec<_> = (0..READER_THREADS)
        .map(|_| {
            let reader = reader.clone();
            let stop = Arc::clone(&stop);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let q = persons_query();
                let mut samples = Vec::new();
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    let t0 = Instant::now();
                    let pinned = reader.pin();
                    let answer = pinned
                        .answer(&q, Semantics::Union)
                        .expect("snapshot-servable");
                    samples.push(t0.elapsed().as_nanos() as u64);
                    assert!(!answer.is_empty());
                }
                samples
            })
        })
        .collect();
    start.wait();
    let deadline = Instant::now() + PHASE;
    writer(deadline);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<u64> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("reader thread"))
        .collect();
    all.sort_unstable();
    all
}

fn bench(c: &mut Criterion) {
    let uni = university(
        &UniversityConfig {
            departments: DEPARTMENTS,
            ..UniversityConfig::default()
        },
        42,
    );
    let mut db = SemanticWebDatabase::from_graph(uni);
    db.set_metrics_level(MetricsLevel::Counters);
    let triples = db.len();
    let reader = db.reader();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- phase A: idle writer ---------------------------------------------
    let idle = phase(&reader, |_| {});

    // --- phase B: busy writer ---------------------------------------------
    let mut publishes = 0u64;
    let busy = phase(&reader, |deadline| {
        let mut i = 0usize;
        while Instant::now() < deadline {
            let t = triple(
                &format!("ex:churn{i}"),
                "ex:touches",
                &format!("ex:churn{}", i + 1),
            );
            db.insert(t.clone());
            db.remove(&t);
            db.publish();
            publishes += 1;
            i += 1;
        }
    });

    let (idle_p50, idle_p99) = (quantile(&idle, 0.50), quantile(&idle, 0.99));
    let (busy_p50, busy_p99) = (quantile(&busy, 0.50), quantile(&busy, 0.99));
    let ratio = busy_p99 as f64 / idle_p99 as f64;
    report_row(
        "E24",
        &format!("reader_latency readers={READER_THREADS} triples={triples}"),
        &[
            ("idle_p50_us", format!("{:.1}", idle_p50 as f64 / 1e3)),
            ("idle_p99_us", format!("{:.1}", idle_p99 as f64 / 1e3)),
            ("busy_p50_us", format!("{:.1}", busy_p50 as f64 / 1e3)),
            ("busy_p99_us", format!("{:.1}", busy_p99 as f64 / 1e3)),
            ("p99_ratio", format!("{ratio:.2}")),
            ("writer_publishes", publishes.to_string()),
            ("idle_samples", idle.len().to_string()),
            ("busy_samples", busy.len().to_string()),
        ],
    );
    assert!(
        publishes > 0,
        "the busy writer must have published while readers answered"
    );

    let assert_requested = std::env::var("E24_ASSERT_ISOLATION").is_ok_and(|v| v.trim() == "1");
    if assert_requested && cores >= 4 {
        assert!(
            ratio <= 2.0,
            "busy-writer reader p99 must stay within 2x of the idle-writer \
             p99 at {READER_THREADS} reader threads: measured {ratio:.2}x"
        );
    } else {
        println!(
            "[E24] p99 ratio busy/idle = {ratio:.2} on {cores} core(s); the 2x acceptance \
             bar is asserted with E24_ASSERT_ISOLATION=1 on >= 4 dedicated cores"
        );
    }

    // --- criterion timings on the primitive operations ---------------------
    let mut group = c.benchmark_group("e24_server");
    group.bench_function("snapshot/pin", |b| b.iter(|| reader.pin().epoch()));
    group.bench_function("snapshot/publish_10k", |b| b.iter(|| db.publish().epoch()));
    group.finish();

    write_json(
        triples,
        cores,
        idle_p50,
        idle_p99,
        busy_p50,
        busy_p99,
        ratio,
        publishes,
        idle.len(),
        busy.len(),
        &db.metrics_snapshot(),
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    triples: usize,
    cores: usize,
    idle_p50: u64,
    idle_p99: u64,
    busy_p50: u64,
    busy_p99: u64,
    ratio: f64,
    publishes: u64,
    idle_samples: usize,
    busy_samples: usize,
    metrics_json: &str,
) {
    let mut out = json_prologue("e24_server");
    out.push_str(
        "  \"acceptance\": \"reader p99 on pinned snapshots under a busy insert/remove/publish writer stays within 2x of the idle-writer p99 at 4 reader threads (asserted with E24_ASSERT_ISOLATION=1 on >= 4 dedicated cores)\",\n",
    );
    out.push_str("  \"mode\": \"release, 1.5 s measurement window per phase\",\n");
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"triples\": {triples},\n"));
    out.push_str(&format!("  \"reader_threads\": {READER_THREADS},\n"));
    out.push_str("  \"points\": {\n");
    out.push_str(&format!(
        "    \"idle_writer_p50_us\": {:.1},\n",
        idle_p50 as f64 / 1e3
    ));
    out.push_str(&format!(
        "    \"idle_writer_p99_us\": {:.1},\n",
        idle_p99 as f64 / 1e3
    ));
    out.push_str(&format!(
        "    \"busy_writer_p50_us\": {:.1},\n",
        busy_p50 as f64 / 1e3
    ));
    out.push_str(&format!(
        "    \"busy_writer_p99_us\": {:.1},\n",
        busy_p99 as f64 / 1e3
    ));
    out.push_str(&format!("    \"p99_ratio_busy_vs_idle\": {ratio:.2},\n"));
    out.push_str(&format!("    \"writer_publishes\": {publishes},\n"));
    out.push_str(&format!("    \"idle_samples\": {idle_samples},\n"));
    out.push_str(&format!("    \"busy_samples\": {busy_samples}\n"));
    out.push_str("  },\n");
    out.push_str(&metrics_block(metrics_json));
    out.push_str("\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e24.json");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_e24.json: {e}");
    } else {
        println!("[E24] results recorded in BENCH_e24.json");
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
