//! The art-gallery example of Fig. 1, end to end: load the graph, inspect
//! its closure, and run the queries of §4 — including the Flemish-artists
//! query and a query with a premise.
//!
//! Run with `cargo run --example art_gallery`.

use semweb_foundations::core::SemanticWebDatabase;
use semweb_foundations::entailment::ClosureStats;
use semweb_foundations::model::{graph, rdfs};
use semweb_foundations::query::Query;
use semweb_foundations::store::GraphStats;
use semweb_foundations::workloads::art;

fn main() {
    let figure1 = art::figure1();
    println!("Fig. 1 graph: {}", GraphStats::of(&figure1).summary());

    let stats = ClosureStats::for_graph(&figure1);
    println!(
        "closure: {} triples from {} asserted ({}x)",
        stats.closure_triples,
        stats.input_triples,
        stats.closure_triples / stats.input_triples.max(1)
    );

    let mut db = SemanticWebDatabase::from_graph(figure1);

    println!("\n-- who creates what (subproperty reasoning) --");
    for t in db.answer_union(&art::creators_query()).iter() {
        println!("  {t}");
    }

    println!("\n-- who is an artist (domain typing + subclass lifting) --");
    for t in db.answer_union(&art::artists_query()).iter() {
        println!("  {t}");
    }

    println!("\n-- artifacts created by Flemish artists exhibited at the Uffizi --");
    for t in db.answer_union(&art::flemish_query()).iter() {
        println!("  {t}");
    }

    // A query with a premise: the user supplies schema the database lacks.
    // "Assume that restoring a work counts as creating it."
    db.insert(semweb_foundations::model::triple(
        "art:Cellini",
        "art:restores",
        "art:Perseus",
    ));
    let premise_query = Query::with_premise(
        semweb_foundations::hom::pattern_graph([("?X", "art:creates", "?Y")]),
        semweb_foundations::hom::pattern_graph([("?X", "art:creates", "?Y")]),
        graph([("art:restores", rdfs::SP, "art:creates")]),
    )
    .expect("well-formed query");
    println!("\n-- creators, under the premise that restoring ⊑ creating --");
    for t in db.answer_union(&premise_query).iter() {
        println!("  {t}");
    }

    // Serialize the database for inspection.
    println!("\n-- first lines of the N-Triples serialization --");
    for line in db.to_ntriples().lines().take(5) {
        println!("  {line}");
    }
}
