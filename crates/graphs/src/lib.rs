//! # swdb-graphs — classical directed graphs
//!
//! Substrate crate providing the "standard graphs" `H = (V, E)` used by
//! *Foundations of Semantic Web Databases* in §2.4 and §3.2: graph
//! homomorphism and isomorphism, graph cores (Hell–Nešetřil), colourability
//! and clique detection (the NP-hard problems the paper reduces from), and
//! transitive closure/reduction (Aho–Garey–Ullman, behind Example 3.14 and
//! Theorem 3.16). Seeded random generators feed the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod digraph;
pub mod homomorphism;
pub mod random;
pub mod transitive;

pub use crate::core::{core, find_retraction, find_retraction_budgeted, is_core, is_core_of};
pub use digraph::DiGraph;
pub use homomorphism::{
    find_homomorphism, find_homomorphism_budgeted, find_isomorphism, has_clique, has_triangle,
    homomorphically_equivalent, is_homomorphic, is_k_colorable, isomorphic, verify_homomorphism,
};
pub use random::{gnp, planted_3_colorable, random_dag, undirected_gnp};
pub use transitive::{
    is_acyclic, reachable, topological_sort, transitive_closure, transitive_reduction,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::digraph::DiGraph;
    use crate::homomorphism::{is_homomorphic, verify_homomorphism};
    use crate::transitive::{is_acyclic, transitive_closure, transitive_reduction};

    fn arb_edges(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
        proptest::collection::vec((0..max_nodes, 0..max_nodes), 0..=max_edges)
    }

    proptest! {
        #[test]
        fn homomorphism_witnesses_verify(edges in arb_edges(5, 8)) {
            let g = DiGraph::from_edges(edges);
            let k3 = DiGraph::complete(3);
            if let Some(h) = crate::homomorphism::find_homomorphism(&g, &k3) {
                prop_assert!(verify_homomorphism(&g, &k3, &h));
            }
        }

        #[test]
        fn every_graph_maps_into_itself(edges in arb_edges(6, 10)) {
            let g = DiGraph::from_edges(edges);
            prop_assert!(is_homomorphic(&g, &g));
        }

        #[test]
        fn transitive_closure_is_idempotent(edges in arb_edges(6, 10)) {
            let g = DiGraph::from_edges(edges);
            let c = transitive_closure(&g);
            prop_assert_eq!(transitive_closure(&c), c);
        }

        #[test]
        fn reduction_preserves_closure_on_dags(edges in arb_edges(7, 12)) {
            // Force acyclicity by orienting edges upward.
            let dag = DiGraph::from_edges(
                edges.into_iter().filter(|(u, v)| u < v),
            );
            prop_assert!(is_acyclic(&dag));
            let r = transitive_reduction(&dag);
            prop_assert_eq!(transitive_closure(&r), transitive_closure(&dag));
            prop_assert!(r.edge_count() <= dag.edge_count());
        }

        #[test]
        fn core_is_homomorphically_equivalent_to_input(edges in arb_edges(5, 7)) {
            let g = DiGraph::from_edges(edges);
            let c = crate::core::core(&g);
            prop_assert!(is_homomorphic(&g, &c));
            prop_assert!(is_homomorphic(&c, &g));
            prop_assert!(crate::core::is_core(&c));
        }
    }
}
