//! End-to-end degraded-mode tests: adversarial blank structure from
//! `swdb_workloads::hard` pushed through the full facade under a core
//! budget, with wall-clock ceilings where an unbudgeted engine would stall.
//!
//! The soundness contract under test (module docs of `swdb_normal::id_core`):
//! a budget never changes *what is entailed* — the published evaluation
//! graph is always a superset of the true core and equivalent to it — it
//! only costs minimality, and that loss is flagged (`non_minimal`,
//! `is_degraded`, the `degraded` metrics block) and recoverable
//! (`refresh_degraded` under a lifted budget).

use std::time::{Duration, Instant};

use proptest::prelude::*;
use swdb_core::{
    CoreBudget, CoreBudgetMode, EntailmentRegime, MetricsLevel, SemanticWebDatabase, Semantics,
};
use swdb_model::{Graph, Term, Triple};
use swdb_query::query;

fn all_triples_query() -> swdb_query::Query {
    query([("?S", "?P", "?O")], [("?S", "?P", "?O")])
}

/// The acceptance scenario: a blank clique whose leanness proof is an
/// NP-hard search an unbudgeted engine would sit in for minutes
/// (`enc(K_11)`; see `blank_clique`'s docs), refreshed under a wall-clock
/// budget. The refresh must finish promptly, report exhaustion, and still
/// publish every triple — `enc(K_n)` *is* lean, so the sound superset is
/// exactly the input and only the proof is missing.
#[test]
fn blank_clique_refresh_is_bounded_by_the_budget() {
    let clique = swdb_workloads::blank_clique(11);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_metrics_level(MetricsLevel::Counters);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::millis(500)));
    db.insert_graph(&clique);
    let t0 = Instant::now();
    let (answers, non_minimal) = db.answer_with_status(&all_triples_query(), Semantics::Union);
    let elapsed = t0.elapsed();
    // The cold build cores the component at most twice (dirty pass +
    // progressive pass), each under its own 500 ms slice; anything beyond
    // a few slices means the budget was not honoured.
    assert!(
        elapsed < Duration::from_millis(2_500),
        "budgeted refresh took {elapsed:?}"
    );
    assert!(non_minimal, "the abandoned proof must be reported");
    assert!(db.is_degraded());
    assert_eq!(db.uncored_components(), 1);
    assert_eq!(db.uncored_triples(), clique.len());
    assert_eq!(
        answers.len(),
        clique.len(),
        "K11's encoding is lean: nothing may be dropped"
    );
    let snap = db.metrics().snapshot();
    assert!(snap.degraded.core_budget_exhausted > 0);
    assert!(snap.degraded.active());
}

/// The hidden-fold family: the component *can* be cored away (onto the
/// ground triangle) but the search is the hidden-colouring search. Under a
/// tiny step budget the published graph is a flagged, equivalent superset;
/// lifting the budget and retrying recovers the true core exactly.
#[test]
fn hidden_fold_degrades_soundly_and_recovers_when_lifted() {
    let instance = swdb_workloads::hidden_fold_instance(10, 0.5, 7);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(20)));
    db.insert_graph(&instance);
    let q = all_triples_query();
    let (answers, non_minimal) = db.answer_with_status(&q, Semantics::Union);
    let spec = db.answer_recomputed(&q, Semantics::Union);
    assert!(
        spec.is_subgraph_of(&answers),
        "degradation may only add redundancy, never drop answers"
    );
    assert!(swdb_entailment::simple_equivalent(&answers, &spec));
    if non_minimal {
        assert!(db.is_degraded());
    }
    // Quiet moment: lift the budget and retry every uncored component.
    db.set_core_budget(CoreBudgetMode::Unlimited);
    assert!(db.refresh_degraded());
    assert!(!db.is_degraded());
    let (recovered, non_minimal) = db.answer_with_status(&q, Semantics::Union);
    assert!(!non_minimal);
    assert!(swdb_model::isomorphic(&recovered, &spec));
    assert!(
        recovered.is_ground(),
        "every blank folded onto the triangle"
    );
}

/// The wide-fan family: budget slicing across many tiny components, and
/// the retry loop's behaviour when the retry budget is itself too small.
#[test]
fn wide_fan_slices_per_component_and_retries_monotonically() {
    let fan = swdb_workloads::wide_blank_fan(32);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(1)));
    db.insert_graph(&fan);
    let q = all_triples_query();
    let (answers, non_minimal) = db.answer_with_status(&q, Semantics::Union);
    assert!(non_minimal);
    assert_eq!(
        db.uncored_components(),
        32,
        "one slice per spoke, all too small"
    );
    assert_eq!(answers.len(), 33);
    // A retry under the same starved budget makes no progress — and says so.
    assert!(!db.refresh_degraded());
    assert!(db.is_degraded());
    // Under a lifted budget the retry recovers every component.
    db.set_core_budget(CoreBudgetMode::Unlimited);
    assert!(db.refresh_degraded());
    assert!(!db.is_degraded());
    let (recovered, non_minimal) = db.answer_with_status(&q, Semantics::Union);
    assert!(!non_minimal);
    assert_eq!(recovered.len(), 1, "the fan cores to its ground absorber");
}

/// The deep-chain family: a large but benign component must *not* degrade
/// under a realistic budget — the chain is its own core and the per-blank
/// searches are cheap.
#[test]
fn deep_chains_complete_within_a_realistic_budget() {
    let chain = swdb_workloads::deep_blank_chain(24);
    let mut db = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
    db.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget {
        steps: Some(50_000_000),
        millis: Some(30_000),
    }));
    db.insert_graph(&chain);
    let (answers, non_minimal) = db.answer_with_status(&all_triples_query(), Semantics::Union);
    assert!(!non_minimal, "a benign deep chain must not trip the budget");
    assert!(!db.is_degraded());
    assert_eq!(answers.len(), chain.len());
}

// ----- satellite: the budget-soundness property -----

fn arb_graph(max_triples: usize) -> impl Strategy<Value = Graph> {
    let node = prop_oneof![
        (0u8..4).prop_map(|i| Term::iri(format!("ex:n{i}"))),
        (0u8..3).prop_map(|i| Term::blank(format!("B{i}"))),
    ];
    let triple = (node.clone(), 0u8..2, node)
        .prop_map(|(s, p, o)| Triple::new(s, swdb_model::Iri::new(format!("ex:p{p}")), o));
    proptest::collection::vec(triple, 0..=max_triples).prop_map(Graph::from_triples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every graph and every (possibly starving) step budget: the
    /// budgeted evaluation graph is a superset of the unbudgeted one,
    /// equivalent to it, and flagged iff it differs; and once the budget is
    /// lifted and the uncored components re-cored, the two evaluation
    /// graphs are isomorphic.
    #[test]
    fn budget_exhausted_refresh_is_sound_and_recoverable(
        g in arb_graph(8),
        steps in 1u64..200,
    ) {
        let mut budgeted = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        budgeted.set_core_budget(CoreBudgetMode::Budgeted(CoreBudget::steps(steps)));
        budgeted.insert_graph(&g);
        let mut exact = SemanticWebDatabase::with_regime(EntailmentRegime::Simple);
        exact.set_core_budget(CoreBudgetMode::Unlimited);
        exact.insert_graph(&g);

        let degraded_eval = budgeted.evaluation_graph();
        let exact_eval = exact.evaluation_graph();
        prop_assert!(exact_eval.is_subgraph_of(&degraded_eval));
        prop_assert!(swdb_entailment::simple_equivalent(&degraded_eval, &exact_eval));
        if degraded_eval.len() > exact_eval.len() {
            prop_assert!(budgeted.is_degraded(), "extra triples must be flagged");
        }

        // Certain (ground) answers agree even while degraded: redundancy
        // only ever adds blank-mentioning matches.
        let q = query([("?S", "?P", "?O")], [("?S", "?P", "?O")]);
        let from_degraded = budgeted.answer(&q, Semantics::Union);
        let from_exact = exact.answer(&q, Semantics::Union);
        for t in from_exact.iter().filter(|t| t.is_ground()) {
            prop_assert!(from_degraded.contains(t));
        }

        // Lifting the budget recovers the true core exactly.
        budgeted.set_core_budget(CoreBudgetMode::Unlimited);
        prop_assert!(budgeted.refresh_degraded());
        prop_assert!(!budgeted.is_degraded());
        prop_assert!(swdb_model::isomorphic(
            &budgeted.evaluation_graph(),
            &exact_eval
        ));
    }
}
