//! Skolemization of RDF graphs.
//!
//! §3.1 of the paper uses the classical idea of Skolemization to give a
//! robust semantic definition of closure: given an RDF graph `G`, the graph
//! `G*` is obtained by replacing each blank node `X` of `G` by a *fresh*
//! constant `c_X`; conversely `H_*` replaces each such constant `c_X` back by
//! the blank `X` and deletes triples having blanks in predicate position
//! (which would not be well-formed RDF triples).

use std::collections::BTreeMap;

use crate::graph::Graph;
use crate::term::{BlankNode, Iri, Term};
use crate::triple::Triple;

/// Prefix used for Skolem constants. It is chosen so that it cannot clash
/// with ordinary vocabulary produced by the workload generators and parsers
/// in this workspace (they never emit the `skolem:` scheme).
pub const SKOLEM_PREFIX: &str = "skolem:";

/// Computes `G*`: every blank node `X` is replaced by the fresh constant
/// `c_X` (here, the URI `skolem:X`).
pub fn skolemize(g: &Graph) -> Graph {
    g.iter()
        .map(|t| {
            Triple::new(
                skolemize_term(t.subject()),
                t.predicate().clone(),
                skolemize_term(t.object()),
            )
        })
        .collect()
}

/// Computes `H_*`: every Skolem constant `c_X` is replaced back by the blank
/// node `X`, and triples whose predicate is a Skolem constant are deleted
/// (they would have a blank in predicate position, which is not a
/// well-formed RDF triple).
pub fn unskolemize(h: &Graph) -> Graph {
    h.iter()
        .filter(|t| !is_skolem_iri(t.predicate()))
        .map(|t| {
            Triple::new(
                unskolemize_term(t.subject()),
                t.predicate().clone(),
                unskolemize_term(t.object()),
            )
        })
        .collect()
}

/// Returns `true` if the term is a Skolem constant produced by
/// [`skolemize`].
pub fn is_skolem_term(term: &Term) -> bool {
    match term {
        Term::Iri(iri) => is_skolem_iri(iri),
        Term::Blank(_) => false,
    }
}

fn is_skolem_iri(iri: &Iri) -> bool {
    iri.as_str().starts_with(SKOLEM_PREFIX)
}

fn skolemize_term(term: &Term) -> Term {
    match term {
        Term::Blank(b) => Term::iri(format!("{SKOLEM_PREFIX}{}", b.as_str())),
        other => other.clone(),
    }
}

fn unskolemize_term(term: &Term) -> Term {
    match term {
        Term::Iri(iri) => match iri.as_str().strip_prefix(SKOLEM_PREFIX) {
            Some(label) => Term::Blank(BlankNode::new(label)),
            None => term.clone(),
        },
        other => other.clone(),
    }
}

/// Returns the correspondence between blank nodes of `g` and the Skolem
/// constants they are sent to. Useful for tests and for explaining proofs.
pub fn skolem_table(g: &Graph) -> BTreeMap<BlankNode, Iri> {
    g.blank_nodes()
        .into_iter()
        .map(|b| {
            let iri = Iri::new(format!("{SKOLEM_PREFIX}{}", b.as_str()));
            (b, iri)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::graph;
    use crate::triple::triple;

    #[test]
    fn skolemization_grounds_the_graph() {
        let g = graph([("_:X", "ex:p", "_:Y"), ("ex:a", "ex:q", "_:X")]);
        let s = skolemize(&g);
        assert!(s.is_ground());
        assert_eq!(s.len(), g.len());
        assert!(s.contains(&triple("skolem:X", "ex:p", "skolem:Y")));
        assert!(s.contains(&triple("ex:a", "ex:q", "skolem:X")));
    }

    #[test]
    fn round_trip_is_identity_on_well_formed_graphs() {
        let g = graph([
            ("_:X", "ex:p", "_:Y"),
            ("ex:a", "ex:q", "_:X"),
            ("ex:a", "ex:q", "ex:b"),
        ]);
        assert_eq!(unskolemize(&skolemize(&g)), g);
    }

    #[test]
    fn unskolemize_drops_blank_predicates() {
        // If a closure step produced a triple whose predicate is a Skolem
        // constant, the (·)_* operation must delete it.
        let h = graph([("ex:a", "skolem:X", "ex:b"), ("skolem:X", "ex:p", "ex:c")]);
        let g = unskolemize(&h);
        assert_eq!(g.len(), 1);
        assert!(g.contains(&triple("_:X", "ex:p", "ex:c")));
    }

    #[test]
    fn skolem_terms_are_detected() {
        assert!(is_skolem_term(&Term::iri("skolem:X")));
        assert!(!is_skolem_term(&Term::iri("ex:a")));
        assert!(!is_skolem_term(&Term::blank("X")));
    }

    #[test]
    fn skolem_table_lists_all_blanks() {
        let g = graph([("_:X", "ex:p", "_:Y")]);
        let table = skolem_table(&g);
        assert_eq!(table.len(), 2);
        assert_eq!(table[&BlankNode::new("X")].as_str(), "skolem:X");
        assert_eq!(table[&BlankNode::new("Y")].as_str(), "skolem:Y");
    }

    #[test]
    fn ground_graphs_are_fixed_points() {
        let g = graph([("ex:a", "ex:p", "ex:b")]);
        assert_eq!(skolemize(&g), g);
        assert_eq!(unskolemize(&g), g);
    }
}
