//! The incremental closure engine.
//!
//! [`DeltaClosure`] maintains `RDFS-cl(G)` (Definition 2.7) for a mutating
//! graph of id-triples, without ever recomputing the fixpoint from scratch:
//!
//! * **Insert** is semi-naive: a new triple is unified against exactly the
//!   `(rule, hypothesis)` paths its predicate wakes (see
//!   [`RuleSystem::paths_for_predicate`]), the remaining hypotheses are
//!   joined against the current closure with indexed scans, and only *fresh*
//!   conclusions are queued. Existing triples are never re-derived.
//! * **Delete** is DRed (delete-and-rederive): first *overdelete* everything
//!   transitively derivable from the deleted triple, then *rederive* the
//!   overdeleted triples that are still asserted or still one-step derivable
//!   from the surviving closure, and finally propagate the rederived set as
//!   ordinary inserts. DRed is chosen over per-triple derivation counting
//!   because the RDFS rules feed into themselves (rule (3) with `B = A`
//!   derives a triple from itself through `(A, sp, A)`), and cyclic
//!   self-support makes counting schemes unsound — counts stay positive
//!   after the last external support disappears. DRed's
//!   overdelete/rederive pair is insensitive to derivation cycles.
//!
//! Both mutations have **two interchangeable execution schedules** selected
//! by [`DeltaClosure::set_threads`]:
//!
//! * `threads == 1` (the default) — the original sequential schedule:
//!   depth-first, triple-at-a-time propagation and push-time-memoised DRed
//!   cascades. This code path is preserved exactly.
//! * `threads > 1` — the round-based sharded schedule of [`crate::parallel`]:
//!   each round partitions the frontier by the `(rule, hypothesis)` paths
//!   its predicates wake, runs the independent joins on scoped worker
//!   threads against an immutable snapshot of the closure index, then
//!   merges/dedupes the conclusions single-threadedly and commits them as
//!   the next frontier. Because the rules are monotone and the closure is a
//!   set, both schedules reach the identical fixpoint — the differential
//!   tests in `crates/reason/tests/` sweep thread counts and pin the
//!   closure, the delta logs (as sets) and the downstream evaluation index
//!   against the sequential run.
//!
//! The five axiomatic triples of rule (9) are seeded at construction and are
//! never deleted — they hold in every closure, including the closure of the
//! empty graph.

use std::collections::BTreeSet;

use swdb_hom::{IdTarget, Overlay};
use swdb_model::Term;
use swdb_obs::{Counter, Hist, Metrics, MetricsLevel, RULE_SLOTS};
use swdb_store::{Dictionary, IdPattern, IdTriple, TermId, TripleStore};

use crate::pattern::{Binding, TriplePattern, EMPTY_BINDING};
use crate::rules::{RuleSystem, Vocabulary};
use swdb_store::IdIndex;

/// Splits off the most selective remaining hypothesis under the current
/// binding — the one whose scan has the most bound positions. Joining
/// bound-first matters: after a data-triple delta binds rule (6)'s third
/// hypothesis, the `(C, sp, A)` probe (predicate + subject bound) must run
/// before the fully-unbound `(A, dom, B)` enumeration, turning the join
/// from "all domain declarations" into "this predicate's superproperties".
fn split_most_bound<'a>(
    hypotheses: &[&'a TriplePattern],
    binding: &Binding,
) -> (&'a TriplePattern, Vec<&'a TriplePattern>) {
    let bound_count = |hyp: &TriplePattern| {
        let (s, p, o) = hyp.to_scan(binding);
        [s, p, o].iter().filter(|pos| pos.is_some()).count()
    };
    let best = hypotheses
        .iter()
        .enumerate()
        .max_by_key(|(_, hyp)| bound_count(hyp))
        .map(|(i, _)| i)
        .expect("non-empty hypothesis list");
    let mut rest = hypotheses.to_vec();
    (rest.swap_remove(best), rest)
}

/// Joins `hypotheses` (most selective first) against `closure`, starting
/// from `binding`, appending every complete binding to `out`. Generic over
/// the scan target so the same join runs against the maintained closure
/// index and against the layered closure-plus-overlay view of a transient
/// premise preview.
pub(crate) fn join_all<V: IdTarget>(
    closure: &V,
    hypotheses: &[&TriplePattern],
    binding: Binding,
    out: &mut Vec<Binding>,
) {
    if hypotheses.is_empty() {
        out.push(binding);
        return;
    }
    let (hyp, rest) = split_most_bound(hypotheses, &binding);
    closure.scan_while(hyp.to_scan(&binding), |t| {
        let mut extended = binding;
        if hyp.unify(t, &mut extended) {
            join_all(closure, &rest, extended, out);
        }
        true
    });
}

/// Like [`join_all`] but only tests for the existence of a complete binding,
/// stopping at the first one.
fn join_exists<V: IdTarget>(closure: &V, hypotheses: &[&TriplePattern], binding: Binding) -> bool {
    if hypotheses.is_empty() {
        return true;
    }
    let (hyp, rest) = split_most_bound(hypotheses, &binding);
    let mut found = false;
    closure.scan_while(hyp.to_scan(&binding), |t| {
        let mut extended = binding;
        if hyp.unify(t, &mut extended) && join_exists(closure, &rest, extended) {
            found = true;
            return false;
        }
        true
    });
    found
}

/// Existence of a complete binding joining against the *asserted* store
/// only. Used to prune overdeletion: a derivation whose premises are all
/// still-asserted facts survives any cascade.
fn join_exists_base(base: &TripleStore, hypotheses: &[&TriplePattern], binding: Binding) -> bool {
    if hypotheses.is_empty() {
        return true;
    }
    let (hyp, rest) = split_most_bound(hypotheses, &binding);
    let mut found = false;
    base.scan_ids_while(hyp.to_scan(&binding), |t| {
        let mut extended = binding;
        if hyp.unify(t, &mut extended) && join_exists_base(base, &rest, extended) {
            found = true;
            return false;
        }
        true
    });
    found
}

/// The instantiation condition: every guarded variable must be bound to a
/// URI id. Shared between the engine methods and the parallel workers,
/// which only hold the `is_iri` slice, not the engine.
pub(crate) fn guards_pass(
    is_iri: &[bool],
    guards: &[crate::pattern::VarId],
    binding: &Binding,
) -> bool {
    guards.iter().all(|&v| {
        binding[v as usize].is_some_and(|id| is_iri.get(id as usize).copied().unwrap_or(false))
    })
}

/// Flushes a locally accumulated per-rule firing batch into the shared
/// counters: one level check, then one atomic add per non-zero slot. Hot
/// loops accumulate into the plain array so the off path never touches an
/// atomic per conclusion.
pub(crate) fn flush_firings(metrics: &Metrics, fired: &[u64; RULE_SLOTS]) {
    if !metrics.on(MetricsLevel::Counters) {
        return;
    }
    let mut total = 0u64;
    for (slot, &n) in fired.iter().enumerate() {
        metrics.count_rule(slot, n);
        total += n;
    }
    metrics.count(Counter::ReasonRuleFirings, total);
}

/// Is `t` the conclusion of some rule instance whose hypotheses are all
/// *asserted* (present in the base store)? Such support is independent of
/// any closure cascade. Free-standing so the parallel DRed prune probes can
/// run it from worker threads over shared snapshots.
fn one_step_from_base(
    rules: &RuleSystem,
    is_iri: &[bool],
    base: &TripleStore,
    t: IdTriple,
) -> bool {
    for rule in rules.rules() {
        for conclusion in &rule.conclusions {
            let mut binding = EMPTY_BINDING;
            if !conclusion.unify(t, &mut binding) {
                continue;
            }
            if !guards_pass(is_iri, &rule.iri_guards, &binding) {
                continue;
            }
            let hypotheses: Vec<&TriplePattern> = rule.hypotheses.iter().collect();
            if join_exists_base(base, &hypotheses, binding) {
                return true;
            }
        }
    }
    false
}

/// Is `t` the conclusion of some rule instance whose hypotheses all hold in
/// `closure`? Free-standing for the parallel rederivation probes.
fn one_step_from_closure(
    rules: &RuleSystem,
    is_iri: &[bool],
    closure: &IdIndex,
    t: IdTriple,
) -> bool {
    for rule in rules.rules() {
        for conclusion in &rule.conclusions {
            let mut binding = EMPTY_BINDING;
            if !conclusion.unify(t, &mut binding) {
                continue;
            }
            // The only guarded variable (rule (3)'s conclusion predicate)
            // is bound by the conclusion unification, so guards can be
            // checked before the join.
            if !guards_pass(is_iri, &rule.iri_guards, &binding) {
                continue;
            }
            let hypotheses: Vec<&TriplePattern> = rule.hypotheses.iter().collect();
            if join_exists(closure, &hypotheses, binding) {
                return true;
            }
        }
    }
    false
}

/// An incrementally maintained RDFS closure over id-triples.
#[derive(Clone, Debug)]
pub struct DeltaClosure {
    rules: RuleSystem,
    closure: IdIndex,
    axioms: BTreeSet<IdTriple>,
    /// `is_iri[id]` — whether the interned term is a URI (blank nodes may
    /// never instantiate a conclusion's predicate position).
    is_iri: Vec<bool>,
    /// Worker threads for propagation and DRed cascades. `1` selects the
    /// original sequential depth-first schedule; `> 1` the round-based
    /// sharded schedule of [`crate::parallel`].
    threads: usize,
    /// Instrumentation handle (a disabled default unless wired by the
    /// owner). Clones of the engine share the same counters.
    metrics: Metrics,
}

impl DeltaClosure {
    /// Creates the closure of the empty graph over the given vocabulary:
    /// exactly the five axiomatic triples of rule (9).
    pub fn new(vocab: Vocabulary) -> Self {
        let rules = RuleSystem::new(vocab);
        let mut closure = IdIndex::new();
        let mut axioms = BTreeSet::new();
        for axiom in rules.axioms() {
            closure.insert(axiom);
            axioms.insert(axiom);
        }
        DeltaClosure {
            rules,
            closure,
            axioms,
            is_iri: Vec::new(),
            threads: 1,
            metrics: Metrics::default(),
        }
    }

    /// Wires an instrumentation handle into the engine and registers the
    /// rule table's labels for the per-rule firing slots. The handle is
    /// shared (its clones report into the same counters); passing a
    /// default-constructed [`Metrics`] disables recording again.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        metrics.set_rule_labels(
            self.rules
                .rules()
                .iter()
                .map(|r| format!("r{:02}_{}", r.paper_number, r.name.replace(' ', "_")))
                .collect(),
        );
        self.metrics = metrics;
    }

    /// The engine's instrumentation handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Sets the worker-thread count for propagation and DRed cascades
    /// (clamped to at least 1). `1` — the default — runs the original
    /// sequential schedule; any higher count runs the round-based sharded
    /// schedule, which reaches the identical fixpoint (see the module
    /// docs). The count is a ceiling: small rounds run inline regardless.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread ceiling.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Extends the IRI-ness cache to cover every id interned so far. Must be
    /// called after interning new terms and before propagating deltas that
    /// mention them.
    pub fn sync_terms(&mut self, dictionary: &Dictionary) {
        for id in self.is_iri.len()..dictionary.len() {
            let iri = matches!(dictionary.term_of(id as TermId), Some(Term::Iri(_)));
            self.is_iri.push(iri);
        }
    }

    fn guards_ok(&self, guards: &[crate::pattern::VarId], binding: &Binding) -> bool {
        guards_pass(&self.is_iri, guards, binding)
    }

    /// Number of triples in the maintained closure.
    pub fn len(&self) -> usize {
        self.closure.len()
    }

    /// The closure is never empty (the axioms are always present).
    pub fn is_empty(&self) -> bool {
        self.closure.is_empty()
    }

    /// Closure membership.
    pub fn contains(&self, t: IdTriple) -> bool {
        self.closure.contains(t)
    }

    /// Iterates the closure in `(s, p, o)` order.
    pub fn iter(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.closure.iter()
    }

    /// Pattern scan over the closure.
    pub fn scan(&self, pattern: IdPattern) -> Vec<IdTriple> {
        self.closure.scan(pattern)
    }

    /// Counts the closure triples matching a pattern without materializing
    /// them (see [`IdIndex::candidate_count`]).
    pub fn candidate_count(&self, pattern: IdPattern) -> usize {
        self.closure.candidate_count(pattern)
    }

    /// Read access to the maintained closure's SPO/POS/OSP index, for
    /// id-space consumers that join against the closure directly.
    pub fn index(&self) -> &IdIndex {
        &self.closure
    }

    /// The vocabulary ids the engine reasons over.
    pub fn vocabulary(&self) -> Vocabulary {
        self.rules.vocabulary()
    }

    /// Adopts a previously maintained closure verbatim: the triples go into
    /// the closure index **without any rule propagation**. This is the
    /// durability-recovery path — a snapshot carries the exact closure the
    /// engine maintained when it was written, so reloading it is pure
    /// deserialization; re-deriving it would pay the cold fixpoint the
    /// incremental machinery exists to avoid. The caller is responsible for
    /// the set actually being `RDFS-cl` of the base it restores alongside
    /// (the durability layer checksums the pair together) and for having
    /// called [`DeltaClosure::sync_terms`] first.
    pub fn adopt_closure(&mut self, triples: impl IntoIterator<Item = IdTriple>) {
        for t in triples {
            self.closure.insert(t);
        }
    }

    /// Applies an inserted base triple; returns `true` if the closure grew.
    ///
    /// The triple's ids must already be interned and covered by
    /// [`DeltaClosure::sync_terms`].
    pub fn insert(&mut self, t: IdTriple) -> bool {
        self.insert_batch([t]) == 1
    }

    /// Applies a batch of inserted base triples in one frontier-batched
    /// semi-naive round; returns how many of them were new to the closure.
    ///
    /// All deltas enter the closure before any rule fires, then a single
    /// [`DeltaClosure::propagate`] fixpoint runs with the whole batch as the
    /// initial frontier. Compared to one propagation round per triple this
    /// amortizes the index probes: a conclusion reachable from several
    /// deltas is derived (and joined against) once, and every rule join
    /// already sees the complete batch instead of rediscovering later
    /// batch members as fresh conclusions. The resulting closure is
    /// identical — the property tests pin bulk loads against
    /// `rdfs_closure`.
    pub fn insert_batch(&mut self, deltas: impl IntoIterator<Item = IdTriple>) -> usize {
        let mut added = Vec::new();
        self.insert_batch_logged(deltas, &mut added)
    }

    /// Like [`DeltaClosure::insert_batch`], but appends every triple that
    /// *entered the closure* (the batch's fresh members plus all fresh
    /// conclusions) to `added` — the delta a downstream incremental consumer
    /// (the evaluation-index core engine) needs to stay in step.
    pub fn insert_batch_logged(
        &mut self,
        deltas: impl IntoIterator<Item = IdTriple>,
        added: &mut Vec<IdTriple>,
    ) -> usize {
        // Manual span: the RAII guard would borrow `self.metrics` across
        // the `&mut self` propagation below.
        let t0 = self
            .metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let logged_before = added.len();
        let mut frontier = Vec::new();
        for t in deltas {
            if self.closure.insert(t) {
                frontier.push(t);
            }
        }
        let fresh = frontier.len();
        if fresh > 0 {
            added.extend(frontier.iter().copied());
            self.propagate_logged(frontier, added);
        }
        self.metrics.count(
            Counter::ReasonClosureAdded,
            (added.len() - logged_before) as u64,
        );
        if let Some(t0) = t0 {
            self.metrics
                .record(Hist::SpanReasonInsertNs, t0.elapsed().as_nanos() as u64);
        }
        fresh
    }

    /// Semi-naive frontier propagation: every queued triple is new to the
    /// closure and is joined only against rules its predicate wakes. Every
    /// fresh conclusion is appended to `added` (the queue itself is not
    /// logged — callers know their own frontier). Dispatches between the
    /// sequential depth-first schedule (`threads == 1`, the original code
    /// path) and the round-based sharded schedule; both compute the same
    /// fixpoint and log the same `added` *set*.
    fn propagate_logged(&mut self, queue: Vec<IdTriple>, added: &mut Vec<IdTriple>) {
        if self.threads <= 1 {
            self.propagate_depth_first(queue, added);
        } else {
            self.propagate_rounds(queue, added);
        }
    }

    /// Round-based sharded propagation (see [`crate::parallel`]): each
    /// round joins the whole frontier against an immutable snapshot of the
    /// closure on worker threads, then commits the merged conclusions
    /// single-threadedly as the next frontier. The per-round sort makes the
    /// schedule — and the `added` log — deterministic across thread counts.
    fn propagate_rounds(&mut self, mut frontier: Vec<IdTriple>, added: &mut Vec<IdTriple>) {
        let mut rounds = 0u64;
        while !frontier.is_empty() {
            rounds += 1;
            self.metrics
                .record(Hist::FrontierSize, frontier.len() as u64);
            let fresh = crate::parallel::round_conclusions(
                &self.rules,
                &self.closure,
                &self.is_iri,
                &frontier,
                self.threads,
                &|t| !self.closure.contains(t),
                &self.metrics,
            );
            frontier.clear();
            for t in fresh {
                if self.closure.insert(t) {
                    frontier.push(t);
                    added.push(t);
                }
            }
        }
        self.metrics.count(Counter::ReasonRounds, rounds);
    }

    /// The original sequential schedule: depth-first, triple-at-a-time.
    /// Rule firings are batched into a local array and flushed once — the
    /// off path pays a plain register increment per firing, no atomics.
    fn propagate_depth_first(&mut self, mut queue: Vec<IdTriple>, added: &mut Vec<IdTriple>) {
        let mut fired = [0u64; RULE_SLOTS];
        while let Some(delta) = queue.pop() {
            let paths: Vec<_> = self.rules.paths_for_predicate(delta.1).collect();
            for (rule_idx, hyp_idx) in paths {
                let rule = &self.rules.rules()[rule_idx];
                let mut seed = EMPTY_BINDING;
                if !rule.hypotheses[hyp_idx].unify(delta, &mut seed) {
                    continue;
                }
                let remaining: Vec<&TriplePattern> = rule
                    .hypotheses
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != hyp_idx)
                    .map(|(_, h)| h)
                    .collect();
                let mut bindings = Vec::new();
                join_all(&self.closure, &remaining, seed, &mut bindings);
                for binding in bindings {
                    if !self.guards_ok(&rule.iri_guards, &binding) {
                        continue;
                    }
                    for conclusion in &rule.conclusions {
                        let derived = conclusion.instantiate(&binding);
                        if self.closure.insert(derived) {
                            fired[rule_idx % RULE_SLOTS] += 1;
                            queue.push(derived);
                            added.push(derived);
                        }
                    }
                }
            }
        }
        flush_firings(&self.metrics, &fired);
    }

    /// Computes `RDFS-cl(G ∪ Δ) − RDFS-cl(G)` — the closure growth a
    /// transient batch insert would cause — **without mutating** the
    /// maintained closure. The same frontier-batched semi-naive round as
    /// [`DeltaClosure::insert_batch_logged`] runs, but fresh conclusions
    /// accumulate in a private overlay and every rule join probes the
    /// layered view `closure ∪ overlay` ([`swdb_hom::Overlay`]), so the
    /// cost scales with the delta's consequences, never with `|cl(G)|`.
    ///
    /// This is the reasoning half of transient premise evaluation: the
    /// returned triples (the premise's fresh members plus everything they
    /// newly derive) overlay the evaluation index for the duration of one
    /// query and are then dropped — the durable engine is untouched.
    ///
    /// The ids must be interned and covered by [`DeltaClosure::sync_terms`].
    pub fn preview_insert_batch(
        &self,
        deltas: impl IntoIterator<Item = IdTriple>,
    ) -> Vec<IdTriple> {
        self.metrics.count(Counter::ReasonPreviews, 1);
        let mut extra = IdIndex::new();
        let mut added: Vec<IdTriple> = Vec::new();
        let mut queue: Vec<IdTriple> = Vec::new();
        for t in deltas {
            if !self.closure.contains(t) && extra.insert(t) {
                queue.push(t);
                added.push(t);
            }
        }
        while let Some(delta) = queue.pop() {
            let mut fresh: Vec<IdTriple> = Vec::new();
            {
                let view = Overlay::new(&self.closure, &extra);
                let paths: Vec<_> = self.rules.paths_for_predicate(delta.1).collect();
                for (rule_idx, hyp_idx) in paths {
                    let rule = &self.rules.rules()[rule_idx];
                    let mut seed = EMPTY_BINDING;
                    if !rule.hypotheses[hyp_idx].unify(delta, &mut seed) {
                        continue;
                    }
                    let remaining: Vec<&TriplePattern> = rule
                        .hypotheses
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != hyp_idx)
                        .map(|(_, h)| h)
                        .collect();
                    let mut bindings = Vec::new();
                    join_all(&view, &remaining, seed, &mut bindings);
                    for binding in bindings {
                        if !self.guards_ok(&rule.iri_guards, &binding) {
                            continue;
                        }
                        for conclusion in &rule.conclusions {
                            let derived = conclusion.instantiate(&binding);
                            if !view.contains(derived) {
                                fresh.push(derived);
                            }
                        }
                    }
                }
            }
            for t in fresh {
                if extra.insert(t) {
                    queue.push(t);
                    added.push(t);
                }
            }
        }
        added
    }

    /// Applies a deleted base triple (already removed from `base`); returns
    /// `true` if the triple left the closure, `false` when it is still
    /// derivable (or axiomatic) and therefore survives.
    pub fn delete(&mut self, t: IdTriple, base: &TripleStore) -> bool {
        let mut removed = Vec::new();
        self.delete_logged(t, base, &mut removed)
    }

    /// Like [`DeltaClosure::delete`], but appends every triple that *left
    /// the closure* for good (overdeleted and neither rederived nor
    /// recovered by the propagation of the rederived set) to `removed`.
    pub fn delete_logged(
        &mut self,
        t: IdTriple,
        base: &TripleStore,
        removed: &mut Vec<IdTriple>,
    ) -> bool {
        if !self.closure.contains(t) || self.axioms.contains(&t) {
            return false;
        }
        let t0 = self
            .metrics
            .on(MetricsLevel::Debug)
            .then(std::time::Instant::now);
        let logged_before = removed.len();
        let deleted = if self.threads <= 1 {
            self.delete_sequential(t, base, removed)
        } else {
            self.delete_parallel(t, base, removed)
        };
        self.metrics.count(
            Counter::ReasonClosureRemoved,
            (removed.len() - logged_before) as u64,
        );
        if let Some(t0) = t0 {
            self.metrics
                .record(Hist::SpanReasonDeleteNs, t0.elapsed().as_nanos() as u64);
        }
        deleted
    }

    /// DRed with the round-based sharded schedule: the overdeletion cascade
    /// runs as parallel join rounds (the same shape as insert propagation,
    /// with a "currently in the closure" filter), the per-candidate prune
    /// and rederivation probes are independent reads parallelized by
    /// [`crate::parallel::parallel_mask`], and phase 3 is ordinary
    /// (round-based) insert propagation.
    ///
    /// One scheduling difference from the sequential path is deliberate and
    /// harmless: sequential rederivation inserts candidates while iterating,
    /// so a candidate can be rederived *through* an earlier rederived triple
    /// already back in the closure. Here all probes run against the
    /// post-overdeletion snapshot; a candidate that misses its one-step
    /// support this way is recovered by phase 3 instead — the rederived set
    /// propagates as ordinary inserts, and anything one-step derivable from
    /// it (transitively) is re-added and struck from `gone`. The final
    /// closure and the `removed` set are identical; the differential tests
    /// sweep thread counts to pin this.
    fn delete_parallel(
        &mut self,
        t: IdTriple,
        base: &TripleStore,
        removed: &mut Vec<IdTriple>,
    ) -> bool {
        // Phase 1 — overdelete, round by round. Workers emit conclusions
        // still present in the closure (never axioms); the merge dedupes
        // against previous rounds, then the prune probes — still-asserted,
        // or one-step derivable from still-asserted premises alone — run in
        // parallel over the fresh candidates, once each (the memoisation
        // the sequential path does at push time).
        let mut over: BTreeSet<IdTriple> = BTreeSet::new();
        let mut spared: BTreeSet<IdTriple> = BTreeSet::new();
        over.insert(t);
        let mut frontier = vec![t];
        while !frontier.is_empty() {
            let candidates = crate::parallel::round_conclusions(
                &self.rules,
                &self.closure,
                &self.is_iri,
                &frontier,
                self.threads,
                &|d| self.closure.contains(d) && !self.axioms.contains(&d),
                Metrics::disabled(),
            );
            let fresh: Vec<IdTriple> = candidates
                .into_iter()
                .filter(|d| !over.contains(d) && !spared.contains(d))
                .collect();
            let survives = crate::parallel::parallel_mask(&fresh, self.threads, &|&d| {
                base.contains_id_triple(d) || one_step_from_base(&self.rules, &self.is_iri, base, d)
            });
            frontier.clear();
            for (d, survives) in fresh.into_iter().zip(survives) {
                if survives {
                    spared.insert(d);
                } else {
                    over.insert(d);
                    frontier.push(d);
                }
            }
        }

        for &doomed in &over {
            self.closure.remove(doomed);
        }

        // Phase 2 — rederive: probe every overdeleted triple against the
        // surviving closure snapshot in parallel, then re-insert the
        // survivors in one batch.
        let candidates: Vec<IdTriple> = over.iter().copied().collect();
        let back = crate::parallel::parallel_mask(&candidates, self.threads, &|&c| {
            base.contains_id_triple(c)
                || one_step_from_closure(&self.rules, &self.is_iri, &self.closure, c)
        });
        let rederived: Vec<IdTriple> = candidates
            .into_iter()
            .zip(back)
            .filter_map(|(c, back)| back.then_some(c))
            .collect();
        for &r in &rederived {
            self.closure.insert(r);
        }
        self.metrics
            .count(Counter::ReasonOverdeleted, over.len() as u64);
        self.metrics
            .count(Counter::ReasonRederived, rederived.len() as u64);

        // Phase 3 — propagate the rederived triples; anything they still
        // support (including chains the snapshot probes of phase 2 could
        // not see) is recovered exactly like an ordinary insert.
        let mut gone = over;
        for r in &rederived {
            gone.remove(r);
        }
        let mut recovered = Vec::new();
        self.propagate_logged(rederived, &mut recovered);
        for r in &recovered {
            gone.remove(r);
        }
        let deleted = gone.contains(&t);
        debug_assert_eq!(deleted, !self.closure.contains(t));
        removed.extend(gone);
        deleted
    }

    /// DRed with the original sequential schedule.
    fn delete_sequential(
        &mut self,
        t: IdTriple,
        base: &TripleStore,
        removed: &mut Vec<IdTriple>,
    ) -> bool {
        // Phase 1 — overdelete: everything with a derivation path from `t`,
        // computed against the still-intact closure (the standard DRed
        // overapproximation), with two sound prunes that keep cascades
        // local. A candidate is *not* overdeleted when
        //
        // * it is still asserted in the base store — assertion is support
        //   that no cascade can take away, or
        // * it has a one-step derivation from still-asserted premises alone
        //   — those premises survive by the same argument, so the
        //   derivation does too.
        //
        // Pruned facts stay in the closure, and — because they genuinely
        // keep their membership — everything derived from them keeps its
        // support, so not traversing them loses nothing. Without these
        // prunes every deletion of a data triple drags the reflexive core
        // (`(p, sp, p)`, `(c, sc, c)`) into the overdeletion set, and those
        // facts support a large fraction of the closure.
        //
        // Both the membership dedup and the (expensive) prune probes run at
        // *push* time, memoised per candidate: `over` holds the doomed,
        // `spared` the candidates a probe already saved, so a triple
        // reachable through many derivation edges pays for its checks once.
        let mut over: BTreeSet<IdTriple> = BTreeSet::new();
        let mut spared: BTreeSet<IdTriple> = BTreeSet::new();
        let mut queue = vec![t];
        over.insert(t);
        while let Some(doomed) = queue.pop() {
            let paths: Vec<_> = self.rules.paths_for_predicate(doomed.1).collect();
            for (rule_idx, hyp_idx) in paths {
                let rule = &self.rules.rules()[rule_idx];
                let mut seed = EMPTY_BINDING;
                if !rule.hypotheses[hyp_idx].unify(doomed, &mut seed) {
                    continue;
                }
                let remaining: Vec<&TriplePattern> = rule
                    .hypotheses
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != hyp_idx)
                    .map(|(_, h)| h)
                    .collect();
                let mut bindings = Vec::new();
                join_all(&self.closure, &remaining, seed, &mut bindings);
                for binding in bindings {
                    if !self.guards_ok(&rule.iri_guards, &binding) {
                        continue;
                    }
                    for conclusion in &rule.conclusions {
                        let derived = conclusion.instantiate(&binding);
                        if !self.closure.contains(derived)
                            || self.axioms.contains(&derived)
                            || over.contains(&derived)
                            || spared.contains(&derived)
                        {
                            continue;
                        }
                        if base.contains_id_triple(derived)
                            || self.one_step_derivable_from_base(derived, base)
                        {
                            spared.insert(derived);
                        } else {
                            over.insert(derived);
                            queue.push(derived);
                        }
                    }
                }
            }
        }

        for &doomed in &over {
            self.closure.remove(doomed);
        }

        // Phase 2 — rederive: an overdeleted triple survives if it is still
        // asserted or still follows in one step from the surviving closure.
        let mut rederived = Vec::new();
        for &candidate in &over {
            if base.contains_id_triple(candidate) || self.one_step_derivable(candidate) {
                self.closure.insert(candidate);
                rederived.push(candidate);
            }
        }
        self.metrics
            .count(Counter::ReasonOverdeleted, over.len() as u64);
        self.metrics
            .count(Counter::ReasonRederived, rederived.len() as u64);

        // Phase 3 — propagate the rederived triples; anything they still
        // support is recovered exactly like an ordinary insert.
        let mut gone = over;
        for r in &rederived {
            gone.remove(r);
        }
        let mut recovered = Vec::new();
        self.propagate_logged(rederived, &mut recovered);
        for r in &recovered {
            gone.remove(r);
        }
        let deleted = gone.contains(&t);
        debug_assert_eq!(deleted, !self.closure.contains(t));
        removed.extend(gone);
        deleted
    }

    /// Is `t` the conclusion of some rule instance whose hypotheses are all
    /// *asserted* (present in the base store)? Such support is independent
    /// of any closure cascade.
    fn one_step_derivable_from_base(&self, t: IdTriple, base: &TripleStore) -> bool {
        one_step_from_base(&self.rules, &self.is_iri, base, t)
    }

    /// Is `t` the conclusion of some rule instance whose hypotheses all hold
    /// in the current closure?
    fn one_step_derivable(&self, t: IdTriple) -> bool {
        one_step_from_closure(&self.rules, &self.is_iri, &self.closure, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::rdfs;

    /// A store plus engine wired by hand (MaterializedStore packages this).
    fn setup() -> (TripleStore, DeltaClosure) {
        let mut store = TripleStore::new();
        let vocab = Vocabulary {
            sp: store.intern(&Term::iri(rdfs::SP)),
            sc: store.intern(&Term::iri(rdfs::SC)),
            ty: store.intern(&Term::iri(rdfs::TYPE)),
            dom: store.intern(&Term::iri(rdfs::DOM)),
            range: store.intern(&Term::iri(rdfs::RANGE)),
        };
        let mut engine = DeltaClosure::new(vocab);
        engine.sync_terms(store.dictionary());
        (store, engine)
    }

    fn put(store: &mut TripleStore, engine: &mut DeltaClosure, t: &swdb_model::Triple) {
        let (ids, added) = store.insert_with_ids(t);
        engine.sync_terms(store.dictionary());
        if added {
            engine.insert(ids);
        }
    }

    fn del(store: &mut TripleStore, engine: &mut DeltaClosure, t: &swdb_model::Triple) {
        if let Some(ids) = store.remove_with_ids(t) {
            engine.delete(ids, store);
        }
    }

    fn has(store: &TripleStore, engine: &DeltaClosure, t: &swdb_model::Triple) -> bool {
        let ids = (
            store.id_of(t.subject()),
            store.id_of(&Term::Iri(t.predicate().clone())),
            store.id_of(t.object()),
        );
        match ids {
            (Some(s), Some(p), Some(o)) => engine.contains((s, p, o)),
            _ => false,
        }
    }

    #[test]
    fn the_empty_closure_is_the_axioms() {
        let (_, engine) = setup();
        assert_eq!(engine.len(), 5);
    }

    #[test]
    fn subclass_chain_lifts_types_incrementally() {
        use swdb_model::triple;
        let (mut store, mut engine) = setup();
        put(
            &mut store,
            &mut engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist"),
        );
        put(
            &mut store,
            &mut engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        );
        assert!(has(
            &store,
            &engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Artist")
        ));
        // Extending the chain after the fact still reaches the new top.
        put(
            &mut store,
            &mut engine,
            &triple("ex:Artist", rdfs::SC, "ex:Person"),
        );
        assert!(has(
            &store,
            &engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Person")
        ));
        assert!(has(
            &store,
            &engine,
            &triple("ex:Painter", rdfs::SC, "ex:Person")
        ));
    }

    #[test]
    fn deletion_retracts_exactly_the_unsupported_consequences() {
        use swdb_model::triple;
        let (mut store, mut engine) = setup();
        put(
            &mut store,
            &mut engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist"),
        );
        put(
            &mut store,
            &mut engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Painter"),
        );
        put(
            &mut store,
            &mut engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Artist"),
        );
        // The lifted type is ALSO asserted, so deleting the subclass edge
        // must keep it; deleting the assertion afterwards must still keep it
        // if the subclass edge is back.
        del(
            &mut store,
            &mut engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist"),
        );
        assert!(has(
            &store,
            &engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Artist")
        ));
        assert!(!has(
            &store,
            &engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist")
        ));
        put(
            &mut store,
            &mut engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist"),
        );
        del(
            &mut store,
            &mut engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Artist"),
        );
        assert!(
            has(
                &store,
                &engine,
                &triple("ex:Picasso", rdfs::TYPE, "ex:Artist")
            ),
            "still derivable through the subclass edge"
        );
        // Removing the remaining support retracts it.
        del(
            &mut store,
            &mut engine,
            &triple("ex:Painter", rdfs::SC, "ex:Artist"),
        );
        assert!(!has(
            &store,
            &engine,
            &triple("ex:Picasso", rdfs::TYPE, "ex:Artist")
        ));
    }

    #[test]
    fn cyclic_subproperty_support_does_not_survive_deletion() {
        use swdb_model::triple;
        // (a, sp, b) and (b, sp, a) support each other's consequences in a
        // cycle — the case where derivation counting over-retains.
        let (mut store, mut engine) = setup();
        put(&mut store, &mut engine, &triple("ex:a", rdfs::SP, "ex:b"));
        put(&mut store, &mut engine, &triple("ex:b", rdfs::SP, "ex:a"));
        put(&mut store, &mut engine, &triple("ex:x", "ex:a", "ex:y"));
        assert!(has(&store, &engine, &triple("ex:x", "ex:b", "ex:y")));
        del(&mut store, &mut engine, &triple("ex:a", rdfs::SP, "ex:b"));
        assert!(
            !has(&store, &engine, &triple("ex:x", "ex:b", "ex:y")),
            "the only path from a to b is gone"
        );
        assert!(has(&store, &engine, &triple("ex:x", "ex:a", "ex:y")));
    }

    #[test]
    fn feedback_through_sp_of_sc_is_handled() {
        use swdb_model::triple;
        // (p, sp, sc) turns p-triples into sc-triples, which must then be
        // transitively closed and used for type lifting — the pathological
        // family of Theorem 3.16.
        let (mut store, mut engine) = setup();
        put(&mut store, &mut engine, &triple("ex:p", rdfs::SP, rdfs::SC));
        put(&mut store, &mut engine, &triple("ex:A", "ex:p", "ex:B"));
        put(&mut store, &mut engine, &triple("ex:B", rdfs::SC, "ex:C"));
        put(&mut store, &mut engine, &triple("ex:x", rdfs::TYPE, "ex:A"));
        assert!(has(&store, &engine, &triple("ex:A", rdfs::SC, "ex:B")));
        assert!(has(&store, &engine, &triple("ex:A", rdfs::SC, "ex:C")));
        assert!(has(&store, &engine, &triple("ex:x", rdfs::TYPE, "ex:C")));
        // Retracting the re-routing edge must unwind the whole cascade.
        del(&mut store, &mut engine, &triple("ex:p", rdfs::SP, rdfs::SC));
        assert!(!has(&store, &engine, &triple("ex:A", rdfs::SC, "ex:B")));
        assert!(!has(&store, &engine, &triple("ex:A", rdfs::SC, "ex:C")));
        assert!(!has(&store, &engine, &triple("ex:x", rdfs::TYPE, "ex:C")));
        assert!(has(&store, &engine, &triple("ex:B", rdfs::SC, "ex:C")));
    }

    #[test]
    fn axioms_survive_any_deletion() {
        use swdb_model::triple;
        let (mut store, mut engine) = setup();
        let axiom = triple(rdfs::SP, rdfs::SP, rdfs::SP);
        put(&mut store, &mut engine, &axiom);
        del(&mut store, &mut engine, &axiom);
        assert!(
            has(&store, &engine, &axiom),
            "rule (9) axioms are permanent"
        );
        assert_eq!(engine.len(), 5);
    }
}
