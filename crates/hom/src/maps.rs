//! Searching for maps between RDF graphs.
//!
//! The paper overloads "map" to mean `μ : G1 → G2` whenever `μ(G1) ⊆ G2`
//! (§2.1). Deciding whether such a map exists is the central decision
//! problem: it characterises simple entailment (Theorem 2.8(2)), entailment
//! with RDFS vocabulary via the closure (Theorem 2.8(1)), leanness
//! (Definition 3.7) and, through the `enc(·)` encoding, graph homomorphism —
//! hence NP-completeness (Theorem 2.9).
//!
//! The implementation translates the source graph into a conjunctive pattern
//! (`Q_{G1}` of §2.4: blanks become variables, URIs stay constants) and runs
//! the backtracking matcher against the target. When the source has no
//! blank-induced cycles the acyclic fast path is used, matching the paper's
//! polynomial special case.

use std::ops::ControlFlow;

use swdb_model::{Graph, TermMap};

use crate::acyclic::{acyclic_exists, has_blank_induced_cycle};
use crate::index::GraphIndex;
use crate::pattern::{Binding, PatternGraph};
use crate::solve::Solver;

/// Searches for a map `μ : from → into` (i.e. `μ(from) ⊆ into`).
pub fn find_map(from: &Graph, into: &Graph) -> Option<TermMap> {
    let index = GraphIndex::new(into);
    find_map_indexed(from, &index)
}

/// Like [`find_map`] but against a prebuilt index of the target graph.
pub fn find_map_indexed(from: &Graph, index: &GraphIndex) -> Option<TermMap> {
    let pattern = PatternGraph::from_graph_blanks_as_vars(from);
    let solver = Solver::new(&pattern, index);
    solver
        .first_solution()
        .map(|b| PatternGraph::binding_to_term_map(&b))
}

/// Returns `true` if a map `from → into` exists.
///
/// Routes acyclic sources through the polynomial semijoin evaluation
/// (experiment E04); falls back to backtracking otherwise.
pub fn exists_map(from: &Graph, into: &Graph) -> bool {
    let index = GraphIndex::new(into);
    exists_map_indexed(from, &index)
}

/// Like [`exists_map`] but against a prebuilt index.
pub fn exists_map_indexed(from: &Graph, index: &GraphIndex) -> bool {
    let pattern = PatternGraph::from_graph_blanks_as_vars(from);
    if !has_blank_induced_cycle(from) {
        if let Some(answer) = acyclic_exists(&pattern, index) {
            return answer;
        }
    }
    Solver::new(&pattern, index).exists()
}

/// Enumerates maps `from → into`, calling `visit` on each; the visitor can
/// stop the enumeration early.
pub fn for_each_map<B>(
    from: &Graph,
    into: &Graph,
    mut visit: impl FnMut(&TermMap) -> ControlFlow<B>,
) -> Option<B> {
    let index = GraphIndex::new(into);
    let pattern = PatternGraph::from_graph_blanks_as_vars(from);
    let solver = Solver::new(&pattern, &index);
    solver.for_each_solution(&mut |b: &Binding| {
        let map = PatternGraph::binding_to_term_map(b);
        visit(&map)
    })
}

/// Collects up to `limit` maps `from → into`.
pub fn all_maps(from: &Graph, into: &Graph, limit: usize) -> Vec<TermMap> {
    let mut out = Vec::new();
    for_each_map(from, into, |map| {
        out.push(map.clone());
        if out.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::<()>::Continue(())
        }
    });
    out
}

/// Searches for an *endomorphism avoiding a triple*: a map `μ : g → g` with
/// `μ(g) ⊆ g − {t}` for the given triple `t`. The existence of such a map
/// for some `t ∈ g` is exactly the failure of leanness (Definition 3.7); the
/// `swdb-normal` crate drives this per-triple search.
pub fn find_map_avoiding(g: &Graph, avoid: &swdb_model::Triple) -> Option<TermMap> {
    let mut target = g.clone();
    target.remove(avoid);
    find_map(g, &target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::{graph, triple, Term};

    #[test]
    fn map_exists_into_superset() {
        let g1 = graph([("_:X", "ex:p", "ex:a")]);
        let g2 = graph([("ex:b", "ex:p", "ex:a"), ("ex:c", "ex:q", "ex:d")]);
        let map = find_map(&g1, &g2).expect("map must exist");
        assert!(map.is_map_between(&g1, &g2));
        assert!(exists_map(&g1, &g2));
    }

    #[test]
    fn no_map_when_predicate_missing() {
        let g1 = graph([("_:X", "ex:r", "ex:a")]);
        let g2 = graph([("ex:b", "ex:p", "ex:a")]);
        assert!(find_map(&g1, &g2).is_none());
        assert!(!exists_map(&g1, &g2));
    }

    #[test]
    fn ground_source_requires_literal_containment() {
        let g1 = graph([("ex:a", "ex:p", "ex:b")]);
        let g2 = graph([("ex:a", "ex:p", "ex:b"), ("ex:c", "ex:p", "ex:d")]);
        assert!(exists_map(&g1, &g2));
        let g3 = graph([("ex:c", "ex:p", "ex:d")]);
        assert!(!exists_map(&g1, &g3));
    }

    #[test]
    fn blanks_can_map_to_blanks() {
        let g1 = graph([("_:X", "ex:p", "_:Y")]);
        let g2 = graph([("_:A", "ex:p", "_:B")]);
        let map = find_map(&g1, &g2).unwrap();
        assert_eq!(map.apply_graph(&g1), g2);
    }

    #[test]
    fn collapsing_maps_are_found() {
        // G1 has two blanks that must both map onto the single node of G2.
        let g1 = graph([("_:X", "ex:p", "_:Y"), ("_:Y", "ex:p", "_:X")]);
        let g2 = graph([("ex:a", "ex:p", "ex:a")]);
        let map = find_map(&g1, &g2).unwrap();
        assert_eq!(map.apply_term(&Term::blank("X")), Term::iri("ex:a"));
        assert_eq!(map.apply_term(&Term::blank("Y")), Term::iri("ex:a"));
    }

    #[test]
    fn odd_blank_cycle_does_not_map_into_even_one() {
        // Encodes the classical "C5 is not 2-colourable" via blank cycles.
        let c5 = graph([
            ("_:1", "ex:e", "_:2"),
            ("_:2", "ex:e", "_:3"),
            ("_:3", "ex:e", "_:4"),
            ("_:4", "ex:e", "_:5"),
            ("_:5", "ex:e", "_:1"),
            ("_:2", "ex:e", "_:1"),
            ("_:3", "ex:e", "_:2"),
            ("_:4", "ex:e", "_:3"),
            ("_:5", "ex:e", "_:4"),
            ("_:1", "ex:e", "_:5"),
        ]);
        let k2 = graph([("_:a", "ex:e", "_:b"), ("_:b", "ex:e", "_:a")]);
        assert!(!exists_map(&c5, &k2));
        let k3 = graph([
            ("_:a", "ex:e", "_:b"),
            ("_:b", "ex:e", "_:a"),
            ("_:b", "ex:e", "_:c"),
            ("_:c", "ex:e", "_:b"),
            ("_:a", "ex:e", "_:c"),
            ("_:c", "ex:e", "_:a"),
        ]);
        assert!(exists_map(&c5, &k3));
    }

    #[test]
    fn acyclic_fast_path_agrees_with_backtracking() {
        let chain = graph([
            ("_:X", "ex:p", "_:Y"),
            ("_:Y", "ex:q", "_:Z"),
            ("_:Z", "ex:r", "ex:end"),
        ]);
        let data_yes = graph([
            ("ex:1", "ex:p", "ex:2"),
            ("ex:2", "ex:q", "ex:3"),
            ("ex:3", "ex:r", "ex:end"),
        ]);
        let data_no = graph([
            ("ex:1", "ex:p", "ex:2"),
            ("ex:2", "ex:q", "ex:3"),
            ("ex:3", "ex:r", "ex:elsewhere"),
        ]);
        assert!(exists_map(&chain, &data_yes));
        assert!(find_map(&chain, &data_yes).is_some());
        assert!(!exists_map(&chain, &data_no));
        assert!(find_map(&chain, &data_no).is_none());
    }

    #[test]
    fn all_maps_enumerates_distinct_images() {
        let g1 = graph([("_:X", "ex:p", "ex:a")]);
        let g2 = graph([("ex:b", "ex:p", "ex:a"), ("ex:c", "ex:p", "ex:a")]);
        let maps = all_maps(&g1, &g2, 10);
        assert_eq!(maps.len(), 2);
    }

    #[test]
    fn map_avoiding_a_triple_detects_redundancy() {
        // Example 3.8 (G1): (a, p, X), (a, p, Y) — Y's triple is redundant.
        let g1 = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let redundant = triple("ex:a", "ex:p", "_:Y");
        let map = find_map_avoiding(&g1, &redundant).expect("redundant triple can be avoided");
        assert!(map.apply_graph(&g1).is_proper_subgraph_of(&g1));
        // But the lean graph G2 of Example 3.8 has no such map.
        let g2 = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "ex:b"),
            ("_:Y", "ex:r", "ex:b"),
        ]);
        for t in g2.iter() {
            assert!(
                find_map_avoiding(&g2, t).is_none(),
                "G2 is lean, no triple is redundant"
            );
        }
    }

    #[test]
    fn empty_graph_maps_into_anything() {
        let empty = Graph::new();
        let g = graph([("ex:a", "ex:p", "ex:b")]);
        assert!(exists_map(&empty, &g));
        assert!(exists_map(&empty, &empty));
        assert!(!exists_map(&g, &empty));
    }
}
