//! # swdb-server — a fault-hardened, std-only HTTP/1.1 front end
//!
//! Serves a [`SemanticWebDatabase`] over a wire: `TcpListener` + a bounded
//! worker pool, hand-rolled HTTP/1.1 — **no crates.io dependencies**. The
//! concurrency contract comes from `swdb-core`'s publication layer: one
//! writer side owns the facade behind a mutex, and every read request is
//! answered from a pinned, immutable [`PublishedSnapshot`] — so a reader
//! never blocks (or is blocked by) `insert`/`remove`. Only
//! overlay-mechanism premise queries and the write endpoints touch the
//! facade lock.
//!
//! ## Endpoints
//!
//! | Method + path | Body | Response |
//! |---|---|---|
//! | `GET /health` | — | JSON: epoch, triples, degraded/durability flags |
//! | `GET /metrics` | — | the facade's [`metrics_snapshot`] JSON |
//! | `POST /ingest` | N-Triples | JSON: inserted count + new epoch |
//! | `POST /remove` | N-Triples | JSON: removed count + new epoch |
//! | `POST /query[?semantics=merge]` | query syntax | answer graph as N-Triples |
//! | `POST /answer[?semantics=merge]` | query syntax | JSON: epoch, flags, answer |
//!
//! Every response carries `X-Swdb-Epoch` (the snapshot epoch it was
//! computed against) and `X-Swdb-Degraded` (`non_minimal` of that
//! substrate).
//!
//! ## Robustness discipline
//!
//! - **Deadlines**: per-request read and write deadlines enforced between
//!   short poll-timeouts — a slow-loris client is cut off at the read
//!   deadline (`408`), not at a per-syscall timeout it can reset forever.
//! - **Size limits**: request head and body are capped (`431`/`413`);
//!   chunked transfer encoding is declined (`501`).
//! - **Bounded queue + load shedding**: accepted connections enter a
//!   bounded work queue; when it is full the connection is *shed* with
//!   `503` + `Retry-After` instead of queuing unbounded latency.
//! - **Panic isolation**: each connection is served under
//!   `catch_unwind`; a panicking handler closes that connection, counts
//!   `server_panics`, and the worker keeps serving.
//! - **Degraded serving**: when the store's durability layer fail-stops,
//!   writes return `503` + `Retry-After` (they would not be durable);
//!   reads keep serving from snapshots with `200`.
//! - **Graceful shutdown**: [`ServerHandle::shutdown`] stops accepting,
//!   lets in-flight requests drain under their deadlines, joins every
//!   worker, then takes a final [`snapshot_now`] (WAL rotation) and
//!   returns the database.
//!
//! ```no_run
//! use swdb_core::SemanticWebDatabase;
//! use swdb_server::{Server, ServerConfig};
//!
//! let db = SemanticWebDatabase::new();
//! let handle = Server::start(db, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", handle.addr());
//! let _db = handle.shutdown(); // drains, rotates, hands the store back
//! ```
//!
//! [`SemanticWebDatabase`]: swdb_core::SemanticWebDatabase
//! [`PublishedSnapshot`]: swdb_core::PublishedSnapshot
//! [`metrics_snapshot`]: swdb_core::SemanticWebDatabase::metrics_snapshot
//! [`snapshot_now`]: swdb_core::SemanticWebDatabase::snapshot_now

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod handlers;
mod http;
mod pool;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use swdb_core::{SemanticWebDatabase, SnapshotReader};
use swdb_obs::{Counter, Metrics};

use pool::WorkQueue;

/// Tuning knobs of a [`Server`]. `Default` is sized for tests and small
/// deployments: loopback, ephemeral port, 4 workers, tight deadlines.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral loopback port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded work-queue depth; a connection arriving when the queue is
    /// full is shed with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Deadline for reading one complete request (head + body). A client
    /// trickling bytes — slow-loris — is cut off here with `408`.
    pub read_timeout: Duration,
    /// Deadline for writing one complete response.
    pub write_timeout: Duration,
    /// Maximum request body size in bytes (`413` beyond).
    pub max_request_bytes: usize,
    /// Maximum request head (request line + headers) size (`431` beyond).
    pub max_head_bytes: usize,
    /// Requests served per connection before it is closed (keep-alive
    /// recycling bound).
    pub max_requests_per_connection: usize,
    /// `Retry-After` seconds advertised on `503` responses.
    pub retry_after_secs: u64,
    /// Expose `POST /panic` (deliberate handler panic) for the
    /// panic-isolation tests. Never enable in production.
    pub enable_test_endpoints: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_request_bytes: 1 << 20,
            max_head_bytes: 8 << 10,
            max_requests_per_connection: 128,
            retry_after_secs: 1,
            enable_test_endpoints: false,
        }
    }
}

/// State shared by the accept loop and every worker.
pub(crate) struct Shared {
    pub(crate) db: Mutex<SemanticWebDatabase>,
    pub(crate) reader: SnapshotReader,
    pub(crate) metrics: Metrics,
    pub(crate) config: ServerConfig,
    pub(crate) queue: WorkQueue,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    /// Locks the facade, recovering from poisoning: handlers run under
    /// `catch_unwind`, and every facade method leaves the database in a
    /// consistent state or panics *before* mutating shared structure, so
    /// continuing with the inner value is sound — and a poisoned lock
    /// must never take the whole server down.
    pub(crate) fn lock_db(&self) -> MutexGuard<'_, SemanticWebDatabase> {
        self.db.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The server entry point; see the crate docs for the contract.
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns the
    /// running server's handle. The database's [`SnapshotReader`] is taken
    /// before the facade goes behind the serving mutex, so read requests
    /// pin snapshots without touching the lock.
    pub fn start(mut db: SemanticWebDatabase, config: ServerConfig) -> io::Result<ServerHandle> {
        let metrics = db.metrics().clone();
        let reader = db.reader();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            db: Mutex::new(db),
            reader,
            metrics: metrics.clone(),
            queue: WorkQueue::new(config.queue_depth.max(1), metrics.clone()),
            config,
            shutdown: AtomicBool::new(false),
        });
        let worker_threads: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("swdb-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<_>>()?;
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("swdb-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(ServerHandle {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }
}

/// A running server: the bound address plus the threads to join on
/// shutdown. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads serving detached (the
/// process exit reaps them); call `shutdown` to drain and recover the
/// database.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` bindings).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics handle the server records into (shared with the
    /// database).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, wake the accept loop, drain the
    /// work queue (every in-flight and queued request finishes under its
    /// deadlines; keep-alive connections are closed after their current
    /// request), join every thread, then take a final
    /// [`snapshot_now`](swdb_core::SemanticWebDatabase::snapshot_now) —
    /// the WAL-rotating durable handoff — and return the database. A
    /// failed final rotation follows the facade's fail-stop discipline
    /// (recorded in `durability_error`, the store still recovers).
    pub fn shutdown(mut self) -> SemanticWebDatabase {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag after every
        // accept, so one throwaway connection gets it to its break.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.shared.queue.close();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| unreachable!("all thread clones joined above"));
        let mut db = shared.db.into_inner().unwrap_or_else(|p| p.into_inner());
        let _ = db.snapshot_now();
        db
    }
}

/// Accepts until shutdown; full queue sheds with `503` + `Retry-After`.
fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutting_down() {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.count(Counter::ServerAccepted, 1);
        if let Err(stream) = shared.queue.push(stream) {
            shared.metrics.count(Counter::ServerShed, 1);
            http::shed(
                stream,
                shared.config.retry_after_secs,
                shared.config.write_timeout,
            );
        }
    }
}

/// One worker: pop connections until the queue closes; serve each under
/// panic isolation, so a handler panic costs one connection, never the
/// worker.
fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            http::serve_connection(shared, stream);
        }));
        if outcome.is_err() {
            shared.metrics.count(Counter::ServerPanics, 1);
        }
    }
}
