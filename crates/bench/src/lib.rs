//! Shared configuration and reporting helpers for the experiment benchmarks.
//!
//! Every bench target (E01–E16, see `EXPERIMENTS.md`) uses [`quick`] so that
//! `cargo bench --workspace` completes in minutes rather than hours while
//! still producing statistically usable medians. Where an experiment is
//! about *sizes* rather than times (e.g. the quadratic closure growth of
//! Theorem 3.6), the bench prints the measured quantities through
//! [`report_row`] so the numbers land in the bench output next to the
//! timings.

use std::time::Duration;

use criterion::Criterion;

/// A Criterion configuration tuned for the experiment harness: small sample
/// counts, short measurement windows, no plots.
pub fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
        .without_plots()
}

/// Prints one row of an experiment report. The label identifies the
/// experiment and parameter point, the columns are `name=value` pairs.
pub fn report_row(experiment: &str, label: &str, columns: &[(&str, String)]) {
    let cols: Vec<String> = columns.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("[{experiment}] {label}: {}", cols.join(", "));
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_configuration_constructs() {
        let _ = super::quick();
        super::report_row("E00", "smoke", &[("ok", "true".to_owned())]);
    }
}
