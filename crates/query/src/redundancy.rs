//! Redundancy elimination in answers (§6.2, Theorems 6.2 and 6.3).
//!
//! Answers to RDF queries usually contain redundancies (non-lean graphs),
//! even when the database is lean and the query heads/bodies are lean.
//! Deciding whether `ans∪(q, D)` is lean is coNP-complete in the size of the
//! database (Theorem 6.2), whereas for merge semantics the special structure
//! of the answer — single answers never share blank nodes — makes the check
//! polynomial (Theorem 6.3).

use swdb_model::{Graph, TermMap};

use crate::answer::{pre_answers, Semantics};
use crate::query::Query;

/// Checks whether the answer of the query under the given semantics is lean,
/// using the generic (worst-case exponential) leanness test.
pub fn answer_is_lean(query: &Query, database: &Graph, semantics: Semantics) -> bool {
    let answer = crate::answer::answer(query, database, semantics);
    swdb_normal::is_lean(&answer)
}

/// Removes redundancy from an answer graph: returns its core, which is the
/// lean graph equivalent to it (the "naive approach" the paper describes
/// before Theorem 6.2: compute the answer, then compute a lean equivalent).
pub fn eliminate_redundancy(answer: &Graph) -> Graph {
    swdb_normal::core(answer)
}

/// A non-leanness witness for a merge-semantics answer, found by the
/// polynomial procedure of Theorem 6.3.
#[derive(Clone, Debug, PartialEq)]
pub struct MergeRedundancy {
    /// Index (into the pre-answer list) of the single answer that can be
    /// folded into the rest of the answer.
    pub single_answer_index: usize,
    /// The map realising the folding.
    pub map: TermMap,
}

/// Decides leanness of `ans+(q, D)` in polynomial time (in the size of the
/// database, for a fixed query), following the proof of Theorem 6.3: because
/// single answers do not share blank nodes under merge semantics, any map
/// `μ : A → A` is a union of independent single maps `μ_j : G_j → A`, so `A`
/// fails to be lean exactly when some single answer `G_j` has a map into
/// `A − {t}` for one of its own non-ground triples `t` (all other single
/// answers can stay where they are via the identity).
pub fn merge_answer_redundancy(query: &Query, database: &Graph) -> Option<MergeRedundancy> {
    let singles = pre_answers(query, database);
    // Reconstruct the merge with stable per-single renaming so we know which
    // triples belong to which single answer.
    let mut merged = Graph::new();
    let mut renamed_singles: Vec<Graph> = Vec::with_capacity(singles.len());
    for (j, single) in singles.iter().enumerate() {
        let renamed = rename_blanks(single, j);
        merged = merged.union(&renamed);
        renamed_singles.push(renamed);
    }
    for (j, single) in renamed_singles.iter().enumerate() {
        for t in single.iter() {
            if t.is_ground() {
                continue;
            }
            // Does this triple also appear in another single answer? Then
            // avoiding it here does not make the image proper. (It cannot,
            // since blanks are namespaced per single answer, but ground
            // triples were skipped above already.)
            let mut target = merged.clone();
            target.remove(t);
            if let Some(map) = swdb_hom::find_map(single, &target) {
                return Some(MergeRedundancy {
                    single_answer_index: j,
                    map,
                });
            }
        }
    }
    None
}

/// Decides leanness of the merge-semantics answer via
/// [`merge_answer_redundancy`].
pub fn merge_answer_is_lean(query: &Query, database: &Graph) -> bool {
    merge_answer_redundancy(query, database).is_none()
}

fn rename_blanks(g: &Graph, namespace: usize) -> Graph {
    let mapping: std::collections::BTreeMap<swdb_model::BlankNode, swdb_model::Term> = g
        .blank_nodes()
        .into_iter()
        .map(|b| {
            let fresh = swdb_model::Term::blank(format!("m{namespace}~{}", b.as_str()));
            (b, fresh)
        })
        .collect();
    TermMap::from_bindings(mapping).apply_graph(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::query;
    use swdb_model::graph;

    #[test]
    fn lean_database_can_still_yield_non_lean_union_answers() {
        // §6.2: take the lean graph G2 of Example 3.8 and the query
        // (?Z, p, ?U) ← (?Z, p, ?U): the answer is G1, which is not lean.
        let g2 = graph([
            ("ex:a", "ex:p", "_:X"),
            ("ex:a", "ex:p", "_:Y"),
            ("_:X", "ex:q", "ex:b"),
            ("_:Y", "ex:r", "ex:b"),
        ]);
        assert!(swdb_normal::is_lean(&g2), "the database is lean");
        let q = query([("?Z", "ex:p", "?U")], [("?Z", "ex:p", "?U")]);
        assert!(
            !answer_is_lean(&q, &g2, Semantics::Union),
            "the union answer {{(a,p,X),(a,p,Y)}} is not lean"
        );
        let answer = crate::answer::answer_union(&q, &g2);
        let reduced = eliminate_redundancy(&answer);
        assert_eq!(reduced.len(), 1);
    }

    #[test]
    fn merge_answer_leanness_agrees_with_generic_check() {
        let cases = [
            graph([
                ("ex:a", "ex:p", "_:X"),
                ("ex:a", "ex:p", "_:Y"),
                ("_:X", "ex:q", "ex:b"),
                ("_:Y", "ex:r", "ex:b"),
            ]),
            graph([("ex:a", "ex:p", "ex:b"), ("ex:c", "ex:p", "ex:d")]),
            graph([("ex:a", "ex:p", "_:X"), ("_:X", "ex:q", "ex:b")]),
        ];
        let queries = [
            query([("?Z", "ex:p", "?U")], [("?Z", "ex:p", "?U")]),
            query([("?Z", "ex:related", "_:W")], [("?Z", "ex:p", "?U")]),
            query(
                [("?X", "ex:p", "?Y")],
                [("?X", "ex:p", "?Y"), ("?Y", "ex:q", "?Z")],
            ),
        ];
        for d in &cases {
            for q in &queries {
                let fast = merge_answer_is_lean(q, d);
                let slow = answer_is_lean(q, d, Semantics::Merge);
                assert_eq!(fast, slow, "disagreement for query {q} on {d}");
            }
        }
    }

    #[test]
    fn merge_redundancy_witness_is_reported() {
        // Two single answers, one strictly more specific than the other: the
        // blank one can fold onto the ground one.
        let d = graph([
            ("ex:a", "ex:p", "ex:b"),
            ("ex:a", "ex:p", "_:N"),
            ("_:N", "ex:q", "ex:c"),
        ]);
        let q = query([("ex:a", "ex:p", "?U")], [("ex:a", "ex:p", "?U")]);
        // Under merge semantics the answers are (a, p, b) and (a, p, _:N'):
        // the latter maps onto the former.
        let redundancy = merge_answer_redundancy(&q, &d);
        assert!(redundancy.is_some());
        assert!(!merge_answer_is_lean(&q, &d));
    }

    #[test]
    fn ground_answers_are_always_lean() {
        let d = graph([("ex:a", "ex:p", "ex:b"), ("ex:c", "ex:p", "ex:d")]);
        let q = query([("?X", "ex:p", "?Y")], [("?X", "ex:p", "?Y")]);
        assert!(answer_is_lean(&q, &d, Semantics::Union));
        assert!(answer_is_lean(&q, &d, Semantics::Merge));
        assert!(merge_answer_is_lean(&q, &d));
    }

    #[test]
    fn redundancy_elimination_preserves_equivalence() {
        let d = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
        let q = query([("?Z", "ex:p", "?U")], [("?Z", "ex:p", "?U")]);
        let answer = crate::answer::answer_union(&q, &d);
        let reduced = eliminate_redundancy(&answer);
        assert!(swdb_entailment::equivalent(&answer, &reduced));
        assert!(swdb_normal::is_lean(&reduced));
    }
}
