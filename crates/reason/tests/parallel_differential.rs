//! Differential property tests for the round-based sharded (parallel)
//! closure schedule.
//!
//! The claim the parallel engine rests on — monotone rules over a set
//! cannot be reordered into a different fixpoint — is made executable
//! here: for randomized batch inserts, interleaved edit scripts and DRed
//! delete cascades, the engine is run at every thread count in
//! [`THREAD_SWEEP`] and pinned, after **every** mutation, against
//!
//! * the sequential engine (`threads == 1`, the original depth-first code
//!   path) — the maintained closure *index* must be bit-identical, and the
//!   `added`/`removed` delta logs that feed the downstream `IdCoreEngine`
//!   must be equal **as sets** (the schedules discover the same triples in
//!   different orders);
//! * the executable specification `swdb_entailment::rdfs_closure`, so the
//!   sweep cannot agree on a wrong answer.
//!
//! All engines replay the same operations in the same order, so the shared
//! dictionaries assign identical ids and id-level comparison is exact.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swdb_entailment::rdfs_closure;
use swdb_model::{rdfs, Graph, Iri, Term, Triple};
use swdb_reason::MaterializedStore;
use swdb_store::IdTriple;

/// Thread counts the differential sweep covers: the preserved sequential
/// path, the smallest parallel schedule, and an oversubscribed one (more
/// workers than this machine has cores — the schedule must not care).
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn as_set(log: &[IdTriple]) -> BTreeSet<IdTriple> {
    log.iter().copied().collect()
}

/// Random graphs mixing plain data with RDFS vocabulary triples, blank
/// nodes, and reserved terms in node positions (the feedback shapes of
/// Theorem 3.16) — the same distribution the in-crate spec proptests use.
fn arb_rdfs_graph(max_triples: usize) -> impl Strategy<Value = Graph> {
    let node = prop_oneof![
        5 => (0u8..5).prop_map(|i| Term::iri(format!("ex:n{i}"))),
        2 => (0u8..3).prop_map(|i| Term::blank(format!("B{i}"))),
        1 => (0u8..5).prop_map(|i| {
            Term::Iri(match i {
                0 => rdfs::sp(),
                1 => rdfs::sc(),
                2 => rdfs::type_(),
                3 => rdfs::dom(),
                _ => rdfs::range(),
            })
        }),
    ];
    let pred = prop_oneof![
        3 => (0u8..3).prop_map(|i| Iri::new(format!("ex:p{i}"))),
        2 => (0u8..5).prop_map(|i| match i {
            0 => rdfs::sp(),
            1 => rdfs::sc(),
            2 => rdfs::type_(),
            3 => rdfs::dom(),
            _ => rdfs::range(),
        }),
    ];
    let triple = (node.clone(), pred, node).prop_map(|(s, p, o)| Triple::new(s, p, o));
    proptest::collection::vec(triple, 0..=max_triples).prop_map(Graph::from_triples)
}

/// A seeded pool of candidate triples for edit scripts (the stress-test
/// distribution: small vocabulary, heavy collision rate, so scripts
/// genuinely re-insert, re-derive and cascade).
fn pool(seed: u64) -> Vec<Triple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = |rng: &mut StdRng| -> Iri {
        match rng.gen_range(0..5) {
            0 => rdfs::sp(),
            1 => rdfs::sc(),
            2 => rdfs::type_(),
            3 => rdfs::dom(),
            _ => rdfs::range(),
        }
    };
    let node = |rng: &mut StdRng| -> Term {
        match rng.gen_range(0..10) {
            0..=5 => Term::iri(format!("ex:n{}", rng.gen_range(0..6))),
            6 | 7 => Term::blank(format!("B{}", rng.gen_range(0..3))),
            8 => Term::iri(format!("ex:C{}", rng.gen_range(0..4))),
            _ => Term::Iri(vocab(rng)),
        }
    };
    let size = rng.gen_range(12..32);
    (0..size)
        .map(|_| {
            let p = match rng.gen_range(0..10) {
                0..=3 => Iri::new(format!("ex:p{}", rng.gen_range(0..3))),
                _ => vocab(&mut rng),
            };
            Triple::new(node(&mut rng), p, node(&mut rng))
        })
        .collect()
}

/// Asserts that every engine in the sweep holds a bit-identical closure
/// index (ids are comparable because all engines replayed the same ops).
fn assert_lockstep(engines: &[MaterializedStore], context: &str) -> Result<(), String> {
    let reference = engines[0].closure_index();
    for (engine, &threads) in engines.iter().zip(&THREAD_SWEEP).skip(1) {
        prop_assert_eq!(
            engine.closure_index(),
            reference,
            "closure diverged at threads={} ({})",
            threads,
            context
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// One frontier-batched bulk load: closure index bit-identical across
    /// the sweep, `added` log identical as a set, and the agreed closure is
    /// the specification's.
    #[test]
    fn parallel_bulk_load_matches_sequential_and_spec(g in arb_rdfs_graph(18)) {
        let mut sequential = MaterializedStore::with_threads(1);
        let seq = sequential.insert_graph_with_delta(&g);
        for &threads in &THREAD_SWEEP[1..] {
            let mut parallel = MaterializedStore::with_threads(threads);
            let delta = parallel.insert_graph_with_delta(&g);
            prop_assert_eq!(
                parallel.closure_index(),
                sequential.closure_index(),
                "bulk-load closure diverged at threads={}",
                threads
            );
            prop_assert_eq!(
                as_set(&delta.added),
                as_set(&seq.added),
                "added log diverged at threads={}",
                threads
            );
            prop_assert_eq!(&delta.base, &seq.base, "asserted base diverged");
        }
        prop_assert_eq!(sequential.closure_graph(), rdfs_closure(&g));
    }

    /// Interleaved single inserts, batch inserts and DRed deletes: after
    /// every operation the whole sweep is in lockstep, and both per-op
    /// delta logs agree as sets with the sequential engine's.
    #[test]
    fn interleaved_edits_stay_in_lockstep_across_thread_counts(
        seed in 0u64..512,
        ops in proptest::collection::vec((0u8..4, 0u8..32u8), 1..14),
    ) {
        let pool = pool(seed);
        let mut engines: Vec<MaterializedStore> =
            THREAD_SWEEP.iter().map(|&n| MaterializedStore::with_threads(n)).collect();
        let mut shadow = Graph::new();
        for (step, &(kind, at)) in ops.iter().enumerate() {
            let at = at as usize % pool.len();
            let deltas: Vec<swdb_reason::ClosureDelta> = match kind {
                // Batch insert: a contiguous slice of the pool.
                0 => {
                    let batch: Graph = pool[at..(at + 5).min(pool.len())].iter().cloned().collect();
                    for t in batch.iter() {
                        shadow.insert(t.clone());
                    }
                    engines.iter_mut().map(|e| e.insert_graph_with_delta(&batch)).collect()
                }
                // Single insert.
                1 | 2 => {
                    shadow.insert(pool[at].clone());
                    engines.iter_mut().map(|e| e.insert_with_delta(&pool[at])).collect()
                }
                // DRed delete.
                _ => {
                    shadow.remove(&pool[at]);
                    engines.iter_mut().map(|e| e.remove_with_delta(&pool[at])).collect()
                }
            };
            for (delta, &threads) in deltas.iter().zip(&THREAD_SWEEP).skip(1) {
                prop_assert_eq!(&delta.base, &deltas[0].base, "base diverged (step {})", step);
                prop_assert_eq!(
                    as_set(&delta.added),
                    as_set(&deltas[0].added),
                    "added log diverged at threads={} (step {}, op {})",
                    threads, step, kind
                );
                prop_assert_eq!(
                    as_set(&delta.removed),
                    as_set(&deltas[0].removed),
                    "removed log diverged at threads={} (step {}, op {})",
                    threads, step, kind
                );
            }
            assert_lockstep(&engines, &format!("step {step}, op {kind}"))?;
        }
        prop_assert_eq!(engines[0].closure_graph(), rdfs_closure(&shadow));
    }

    /// Fill-then-drain: the DRed cascades at every thread count retract to
    /// the same intermediate closures and end on exactly the five axioms.
    #[test]
    fn draining_cascades_agree_at_every_thread_count(seed in 0u64..256) {
        let pool = pool(seed ^ 0xD00D);
        let mut engines: Vec<MaterializedStore> =
            THREAD_SWEEP.iter().map(|&n| MaterializedStore::with_threads(n)).collect();
        for engine in &mut engines {
            let batch: Graph = pool.iter().cloned().collect();
            engine.insert_graph(&batch);
        }
        assert_lockstep(&engines, "after fill")?;
        for (i, t) in pool.iter().enumerate() {
            let removed: Vec<BTreeSet<IdTriple>> = engines
                .iter_mut()
                .map(|e| as_set(&e.remove_with_delta(t).removed))
                .collect();
            for (log, &threads) in removed.iter().zip(&THREAD_SWEEP).skip(1) {
                prop_assert_eq!(
                    log,
                    &removed[0],
                    "removed log diverged at threads={} deleting triple {}",
                    threads,
                    i
                );
            }
            assert_lockstep(&engines, &format!("after delete {i}"))?;
        }
        for (engine, &threads) in engines.iter().zip(&THREAD_SWEEP) {
            prop_assert!(engine.is_empty(), "threads={} retained assertions", threads);
            prop_assert_eq!(
                engine.closure_len(), 5,
                "threads={} left residue beyond the axioms", threads
            );
        }
    }
}
