//! The snapshot segment: a versioned, checksummed binary image of the full
//! database state at one generation.
//!
//! A snapshot carries everything needed to reopen **without recomputation**:
//! the term dictionary in id order, the base triples, the RDFS closure, and
//! the exported state of both incremental core engines (the evaluation
//! engine and the asserted-core engine), including per-component `uncored`
//! flags so degraded mode survives a restart exactly. Loading a snapshot is
//! pure deserialization — no fixpoint, no core search; only the WAL suffix
//! after the snapshot replays through the incremental delta paths.
//!
//! File layout: `[magic 8][version u32][generation u64][len u32]
//! [crc u32][payload]`, where the checksum covers
//! `version ∥ generation ∥ payload` — a flipped bit anywhere except the
//! (structurally validated) magic and length is caught. Snapshots are
//! written whole to a temp file, fsynced, then renamed into place — a
//! reader never observes a partially written segment under its final name,
//! and a corrupted one fails its checksum and is ignored in favour of the
//! previous generation.

use swdb_model::Term;
use swdb_normal::{ComponentState, CoreEngineState};
use swdb_store::IdTriple;

use crate::codec::{DecodeError, Reader, Writer};
use crate::crc::crc32;

/// Magic prefix of every snapshot segment.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SWDBSNAP";

/// Current segment format version. Bump on any layout change; readers
/// reject versions they do not understand rather than misparse them.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The complete durable image of a database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SnapshotPayload {
    /// Entailment regime (0 = Simple, 1 = RDFS).
    pub regime: u8,
    /// Core budget mode (0 = Unlimited, 1 = Budgeted, 2 = Auto).
    pub budget_mode: u8,
    /// Budget step limit; [`u64::MAX`] encodes "no limit".
    pub budget_steps: u64,
    /// Budget wall-clock limit in milliseconds; [`u64::MAX`] = "no limit".
    pub budget_millis: u64,
    /// Every interned term, in id order — replaying these through a fresh
    /// dictionary reproduces the exact id assignment.
    pub terms: Vec<Term>,
    /// The asserted (base) triples.
    pub base: Vec<IdTriple>,
    /// The materialized RDFS closure (empty under Simple entailment).
    pub closure: Vec<IdTriple>,
    /// Exported state of the evaluation-graph core engine, if built.
    pub evaluation: Vec<CoreEngineState>,
    /// Exported state of the asserted-core engine, if built.
    pub asserted_core: Vec<CoreEngineState>,
}

/// A snapshot decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing/unrecognized magic or header too short.
    BadHeader,
    /// A format version this reader does not understand.
    UnsupportedVersion(u32),
    /// The payload checksum did not match — torn or corrupted segment.
    ChecksumMismatch,
    /// The payload parsed wrongly (structure damage past the checksum, or
    /// an id referencing a term beyond the dictionary).
    Malformed(DecodeError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHeader => write!(f, "snapshot header missing or unrecognized"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} is not supported")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Malformed(e) => write!(f, "snapshot payload malformed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The segment checksum: covers version, generation, and payload so a
/// flipped bit in any of them is detected.
fn stamped_crc(version: u32, generation: u64, payload: &[u8]) -> u32 {
    let mut stamped = Vec::with_capacity(12 + payload.len());
    stamped.extend_from_slice(&version.to_le_bytes());
    stamped.extend_from_slice(&generation.to_le_bytes());
    stamped.extend_from_slice(payload);
    crc32(&stamped)
}

fn encode_engine_state(w: &mut Writer, state: &CoreEngineState) {
    w.vec(&state.ground, |w, &t| w.id_triple(t));
    w.vec(&state.components, |w, c| {
        w.vec(&c.full, |w, &t| w.id_triple(t));
        w.vec(&c.survivors, |w, &t| w.id_triple(t));
        w.vec(&c.support, |w, &t| w.id_triple(t));
        w.u8(c.uncored as u8);
    });
}

fn decode_engine_state(r: &mut Reader<'_>) -> Result<CoreEngineState, DecodeError> {
    let ground = r.vec(12, |r| r.id_triple())?;
    let components = r.vec(13, |r| {
        Ok(ComponentState {
            full: r.vec(12, |r| r.id_triple())?,
            survivors: r.vec(12, |r| r.id_triple())?,
            support: r.vec(12, |r| r.id_triple())?,
            uncored: r.u8()? != 0,
        })
    })?;
    Ok(CoreEngineState { ground, components })
}

impl SnapshotPayload {
    /// Encodes the full segment (header + checksummed payload) for
    /// `generation`.
    pub fn encode(&self, generation: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.regime);
        w.u8(self.budget_mode);
        w.u64(self.budget_steps);
        w.u64(self.budget_millis);
        w.vec(&self.terms, |w, t| w.term(t));
        w.vec(&self.base, |w, &t| w.id_triple(t));
        w.vec(&self.closure, |w, &t| w.id_triple(t));
        w.vec(&self.evaluation, encode_engine_state);
        w.vec(&self.asserted_core, encode_engine_state);
        let payload = w.into_bytes();

        let mut out = SNAPSHOT_MAGIC.to_vec();
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&generation.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&stamped_crc(SNAPSHOT_VERSION, generation, &payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a segment, returning the payload and its stamped generation.
    pub fn decode(bytes: &[u8]) -> Result<(SnapshotPayload, u64), SnapshotError> {
        let header_len = SNAPSHOT_MAGIC.len() + 4 + 8 + 4 + 4;
        if bytes.len() < header_len || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadHeader);
        }
        let mut pos = SNAPSHOT_MAGIC.len();
        let version = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        pos += 4;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let generation = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        let crc = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        pos += 4;
        if bytes.len() - pos != len {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let payload = &bytes[pos..];
        if stamped_crc(version, generation, payload) != crc {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = Reader::new(payload);
        let decoded = (|| -> Result<SnapshotPayload, DecodeError> {
            let snapshot = SnapshotPayload {
                regime: r.u8()?,
                budget_mode: r.u8()?,
                budget_steps: r.u64()?,
                budget_millis: r.u64()?,
                terms: r.vec(5, |r| r.term())?,
                base: r.vec(12, |r| r.id_triple())?,
                closure: r.vec(12, |r| r.id_triple())?,
                evaluation: r.vec(8, decode_engine_state)?,
                asserted_core: r.vec(8, decode_engine_state)?,
            };
            r.finish()?;
            Ok(snapshot)
        })()
        .map_err(SnapshotError::Malformed)?;

        decoded.validate_ids()?;
        Ok((decoded, generation))
    }

    /// Semantic validation past the structural decode: every triple id
    /// must reference an interned term.
    fn validate_ids(&self) -> Result<(), SnapshotError> {
        let bound = self.terms.len() as u64;
        let check = |triples: &[IdTriple]| -> bool {
            triples
                .iter()
                .all(|&(s, p, o)| (s as u64) < bound && (p as u64) < bound && (o as u64) < bound)
        };
        let engine_ok = |states: &[CoreEngineState]| -> bool {
            states.iter().all(|st| {
                check(&st.ground)
                    && st
                        .components
                        .iter()
                        .all(|c| check(&c.full) && check(&c.survivors) && check(&c.support))
            })
        };
        if check(&self.base)
            && check(&self.closure)
            && engine_ok(&self.evaluation)
            && engine_ok(&self.asserted_core)
        {
            Ok(())
        } else {
            Err(SnapshotError::Malformed(DecodeError {
                offset: 0,
                expected: "triple ids within dictionary bounds",
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotPayload {
        SnapshotPayload {
            regime: 1,
            budget_mode: 1,
            budget_steps: 100,
            budget_millis: u64::MAX,
            terms: vec![
                Term::iri("ex:s"),
                Term::iri("ex:p"),
                Term::iri("ex:o"),
                Term::blank("b0"),
            ],
            base: vec![(0, 1, 2), (3, 1, 2)],
            closure: vec![(0, 1, 2), (3, 1, 2), (0, 1, 3)],
            evaluation: vec![CoreEngineState {
                ground: vec![(0, 1, 2)],
                components: vec![ComponentState {
                    full: vec![(3, 1, 2)],
                    survivors: vec![(3, 1, 2)],
                    support: vec![(0, 1, 2)],
                    uncored: true,
                }],
            }],
            asserted_core: vec![],
        }
    }

    #[test]
    fn segment_round_trips_bit_identical() {
        let payload = sample();
        let bytes = payload.encode(12);
        let (decoded, generation) = SnapshotPayload::decode(&bytes).unwrap();
        assert_eq!(generation, 12);
        assert_eq!(decoded, payload);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode(3);
        for byte in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[byte] ^= 0x01;
            if let Ok((decoded, generation)) = SnapshotPayload::decode(&damaged) {
                panic!(
                    "flip at byte {byte} went undetected (gen {generation}, \
                     {} terms)",
                    decoded.terms.len()
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode(3);
        for cut in 0..bytes.len() {
            assert!(
                SnapshotPayload::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn future_versions_are_rejected_not_misparsed() {
        let mut bytes = sample().encode(1);
        let pos = SNAPSHOT_MAGIC.len();
        bytes[pos..pos + 4].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotPayload::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn out_of_bounds_ids_fail_validation() {
        let mut payload = sample();
        payload.base.push((99, 0, 0));
        let bytes = payload.encode(1);
        assert!(matches!(
            SnapshotPayload::decode(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn empty_database_snapshots_cleanly() {
        let payload = SnapshotPayload {
            budget_steps: u64::MAX,
            budget_millis: u64::MAX,
            ..SnapshotPayload::default()
        };
        let bytes = payload.encode(0);
        let (decoded, generation) = SnapshotPayload::decode(&bytes).unwrap();
        assert_eq!(generation, 0);
        assert_eq!(decoded, payload);
    }
}
