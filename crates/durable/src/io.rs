//! The IO shim the durability layer writes through — and the fault
//! injector that drives the crash-point matrix.
//!
//! Every filesystem touch of the snapshot/WAL machinery goes through the
//! [`Io`] trait, one call per *fault site*: a write, a sync, a rename, a
//! delete, a truncate. Production uses [`StdIo`] (plain `std::fs` with real
//! `fsync`s). Tests wrap it in [`FaultIo`], which counts write-point
//! operations and injects a configured [`FaultKind`] at the k-th one —
//! failing it, tearing it mid-write, or acknowledging it while corrupting a
//! bit on disk. Iterating k over a run's whole operation count and
//! reopening after each injected fault is exactly the crash-point matrix
//! the recovery tests sweep.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// The filesystem surface of the durability layer. Each method is one
/// fault site; implementations must make the durability-relevant calls
/// (`write_new`, `sync`, `sync_dir`) actually reach stable storage.
pub trait Io: fmt::Debug + Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the file names (not paths) inside a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Creates a directory and its parents (idempotent).
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates (or truncates) a file with the given contents and fsyncs it.
    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends bytes to an existing file (no fsync — pair with [`Io::sync`]).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Fsyncs a file's contents.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory (making renames/creations inside it durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Truncates a file to `len` bytes and fsyncs it.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// The production [`Io`]: plain `std::fs` with real fsyncs.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdIo;

impl Io for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories as files; the rename itself is
        // metadata-journal-durable there. On unix this is the real thing.
        match File::open(dir) {
            Ok(f) => f.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }
}

/// What the injector does to the targeted operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails cleanly: an error, nothing reaches the disk.
    Fail,
    /// A data-carrying write lands only as a prefix, then errors — the torn
    /// write of a mid-operation crash. Non-data operations degrade to
    /// [`FaultKind::Fail`].
    Truncate,
    /// The operation is *acknowledged* but one bit of the written data is
    /// flipped on disk — the lying-disk case only checksums can catch.
    /// Non-data operations perform normally.
    Corrupt,
}

const FAULT_NONE: u64 = u64::MAX;

#[derive(Debug)]
struct FaultState {
    /// Write-point operations performed so far.
    ops: AtomicU64,
    /// Inject at this op index ([`FAULT_NONE`] = never).
    fault_at: AtomicU64,
    /// 0 = Fail, 1 = Truncate, 2 = Corrupt.
    kind: AtomicU8,
    /// Operations that were actually faulted.
    injected: AtomicU64,
}

/// A fault-injecting [`Io`] wrapping [`StdIo`]. Clones share the same
/// counters, so a test can keep a handle while the durability layer owns
/// another. Read-side operations (`read`, `list`, `create_dir_all`) are
/// never faulted — the crash model interrupts *writes*; recovery itself is
/// exercised against already-damaged files.
#[derive(Clone, Debug)]
pub struct FaultIo {
    inner: Arc<FaultState>,
}

impl Default for FaultIo {
    fn default() -> Self {
        FaultIo::new()
    }
}

impl FaultIo {
    /// An injector with no fault armed: a pure write-point counter.
    pub fn new() -> FaultIo {
        FaultIo {
            inner: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                fault_at: AtomicU64::new(FAULT_NONE),
                kind: AtomicU8::new(0),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Arms a fault: the `at`-th write-point operation (0-based, counted
    /// from now) suffers `kind`.
    pub fn arm(&self, at: u64, kind: FaultKind) {
        self.inner.ops.store(0, Ordering::SeqCst);
        self.inner.injected.store(0, Ordering::SeqCst);
        self.inner.kind.store(
            match kind {
                FaultKind::Fail => 0,
                FaultKind::Truncate => 1,
                FaultKind::Corrupt => 2,
            },
            Ordering::SeqCst,
        );
        self.inner.fault_at.store(at, Ordering::SeqCst);
    }

    /// Disarms any pending fault and resets the counter.
    pub fn disarm(&self) {
        self.inner.fault_at.store(FAULT_NONE, Ordering::SeqCst);
        self.inner.ops.store(0, Ordering::SeqCst);
        self.inner.injected.store(0, Ordering::SeqCst);
    }

    /// Write-point operations performed since the last arm/disarm — the
    /// size of the crash-point matrix for the run just performed.
    pub fn ops(&self) -> u64 {
        self.inner.ops.load(Ordering::SeqCst)
    }

    /// How many operations were actually faulted (0 or 1 per arm).
    pub fn injected(&self) -> u64 {
        self.inner.injected.load(Ordering::SeqCst)
    }

    /// Counts one write-point op; returns the fault to apply, if this is
    /// the armed one.
    fn tick(&self) -> Option<FaultKind> {
        let op = self.inner.ops.fetch_add(1, Ordering::SeqCst);
        if op == self.inner.fault_at.load(Ordering::SeqCst) {
            self.inner.injected.fetch_add(1, Ordering::SeqCst);
            Some(match self.inner.kind.load(Ordering::SeqCst) {
                0 => FaultKind::Fail,
                1 => FaultKind::Truncate,
                _ => FaultKind::Corrupt,
            })
        } else {
            None
        }
    }

    fn injected_err(what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    /// Applies a fault to a data-carrying write; returns the bytes that
    /// should actually reach the disk and whether the op still "succeeds".
    fn mangle(kind: FaultKind, bytes: &[u8]) -> (Vec<u8>, bool) {
        match kind {
            FaultKind::Fail => (Vec::new(), false),
            FaultKind::Truncate => (bytes[..bytes.len() / 2].to_vec(), false),
            FaultKind::Corrupt => {
                let mut out = bytes.to_vec();
                if !out.is_empty() {
                    let at = out.len() / 2;
                    out[at] ^= 0x40;
                }
                (out, true)
            }
        }
    }
}

impl Io for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        StdIo.read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        StdIo.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        StdIo.create_dir_all(dir)
    }

    fn write_new(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.tick() {
            None => StdIo.write_new(path, bytes),
            Some(kind) => {
                let (on_disk, ack) = Self::mangle(kind, bytes);
                if !on_disk.is_empty() || ack {
                    StdIo.write_new(path, &on_disk)?;
                }
                if ack {
                    Ok(())
                } else {
                    Err(Self::injected_err("write_new"))
                }
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.tick() {
            None => StdIo.append(path, bytes),
            Some(kind) => {
                let (on_disk, ack) = Self::mangle(kind, bytes);
                if !on_disk.is_empty() {
                    StdIo.append(path, &on_disk)?;
                }
                if ack {
                    Ok(())
                } else {
                    Err(Self::injected_err("append"))
                }
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.tick() {
            None => StdIo.sync(path),
            Some(FaultKind::Corrupt) => StdIo.sync(path),
            Some(_) => Err(Self::injected_err("sync")),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.tick() {
            None => StdIo.sync_dir(dir),
            Some(FaultKind::Corrupt) => StdIo.sync_dir(dir),
            Some(_) => Err(Self::injected_err("sync_dir")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.tick() {
            None => StdIo.rename(from, to),
            Some(FaultKind::Corrupt) => StdIo.rename(from, to),
            Some(_) => Err(Self::injected_err("rename")),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match self.tick() {
            None => StdIo.remove(path),
            Some(FaultKind::Corrupt) => StdIo.remove(path),
            Some(_) => Err(Self::injected_err("remove")),
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        match self.tick() {
            None => StdIo.truncate(path, len),
            Some(FaultKind::Corrupt) => StdIo.truncate(path, len),
            Some(_) => Err(Self::injected_err("truncate")),
        }
    }
}

/// A seek-free helper used by recovery tests: reads a file region.
pub fn read_region(path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swdb-durable-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_io_round_trips_and_appends() {
        let dir = tmp_dir("std");
        let f = dir.join("a.bin");
        StdIo.write_new(&f, b"hello").unwrap();
        StdIo.append(&f, b" world").unwrap();
        StdIo.sync(&f).unwrap();
        assert_eq!(StdIo.read(&f).unwrap(), b"hello world");
        StdIo.truncate(&f, 5).unwrap();
        assert_eq!(StdIo.read(&f).unwrap(), b"hello");
        assert_eq!(StdIo.list(&dir).unwrap(), vec!["a.bin".to_string()]);
        StdIo.remove(&f).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_io_counts_and_injects_each_kind() {
        let dir = tmp_dir("fault");
        let f = dir.join("w.bin");

        let io = FaultIo::new();
        io.write_new(&f, b"0123456789").unwrap();
        io.append(&f, b"ab").unwrap();
        io.sync(&f).unwrap();
        assert_eq!(io.ops(), 3);
        assert_eq!(io.injected(), 0);

        // Fail: nothing written.
        io.arm(0, FaultKind::Fail);
        assert!(io.write_new(&f, b"XXXX").is_err());
        assert_eq!(StdIo.read(&f).unwrap(), b"0123456789ab");
        assert_eq!(io.injected(), 1);

        // Truncate: half the bytes land, then an error.
        io.arm(0, FaultKind::Truncate);
        assert!(io.append(&f, b"PPPP").is_err());
        assert_eq!(StdIo.read(&f).unwrap(), b"0123456789abPP");

        // Corrupt: acknowledged, one bit flipped.
        io.arm(0, FaultKind::Corrupt);
        io.write_new(&f, b"QQQQ").unwrap();
        let on_disk = StdIo.read(&f).unwrap();
        assert_eq!(on_disk.len(), 4);
        assert_ne!(on_disk, b"QQQQ");
        assert_eq!(on_disk.iter().filter(|&&b| b != b'Q').count(), 1);

        // Later ops after the armed one run clean.
        io.arm(0, FaultKind::Fail);
        assert!(io.sync(&f).is_err());
        io.write_new(&f, b"clean").unwrap();
        assert_eq!(StdIo.read(&f).unwrap(), b"clean");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
