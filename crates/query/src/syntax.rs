//! A concrete text syntax for tableau queries.
//!
//! The paper writes queries in the logic-programming style
//!
//! ```text
//! (?A, creates, ?Y) <- (?A, type, Flemish), (?A, paints, ?Y), (?Y, exhibited, Uffizi)
//! ```
//!
//! This module parses and prints that notation, extended with the optional
//! clauses the paper's Definition 4.1 adds:
//!
//! ```text
//! (?X, relative, Peter) <- (?X, relative, Peter)
//!   WITH PREMISE { (son, sp, relative) . }
//!   WHERE BOUND ?X
//! ```
//!
//! * Terms follow the shorthand used throughout the workspace: `?X` is a
//!   variable, `_:b` a blank node, anything else a URI label. The reserved
//!   words `sp`, `sc`, `type`, `dom`, `range` abbreviate the RDFS
//!   vocabulary.
//! * The premise block uses the N-Triples-style syntax of `swdb-store`, with
//!   bare labels allowed as a convenience.
//! * `WHERE BOUND` lists the must-bind (constraint) variables.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use swdb_hom::{PatternGraph, PatternTerm, TriplePattern, Variable};
use swdb_model::{rdfs, Graph, Term, Triple};

use crate::query::{Query, QueryError};

/// An error produced while parsing the query syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntaxError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query syntax error: {}", self.message)
    }
}

impl std::error::Error for SyntaxError {}

impl From<QueryError> for SyntaxError {
    fn from(value: QueryError) -> Self {
        SyntaxError {
            message: value.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> SyntaxError {
    SyntaxError {
        message: message.into(),
    }
}

/// Parses a query from the textual notation.
pub fn parse_query(input: &str) -> Result<Query, SyntaxError> {
    let input = input.trim();
    // Split off the optional clauses first (they may contain "<-"-free text).
    let (main, constraints_part) = match split_keyword(input, "WHERE BOUND") {
        Some((before, after)) => (before, Some(after)),
        None => (input, None),
    };
    let (main, premise_part) = match split_keyword(main, "WITH PREMISE") {
        Some((before, after)) => (before, Some(after)),
        None => (main, None),
    };
    let Some((head_text, body_text)) = main.split_once("<-") else {
        return Err(err("missing '<-' between head and body"));
    };
    let head = parse_pattern_list(head_text)?;
    let body = parse_pattern_list(body_text)?;
    let premise = match premise_part {
        None => Graph::new(),
        Some(text) => parse_premise(text)?,
    };
    let constraints: BTreeSet<Variable> = match constraints_part {
        None => BTreeSet::new(),
        Some(text) => text
            .split([',', ' '])
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix('?') {
                    Ok(Variable::new(name))
                } else {
                    Err(err(format!("constraint '{s}' must be a ?variable")))
                }
            })
            .collect::<Result<_, _>>()?,
    };
    Query::with_all(head, body, premise, constraints).map_err(Into::into)
}

fn split_keyword<'a>(input: &'a str, keyword: &str) -> Option<(&'a str, &'a str)> {
    let position = input.find(keyword)?;
    let (before, after) = input.split_at(position);
    Some((before.trim(), after[keyword.len()..].trim()))
}

/// Parses a comma-separated list of `(s, p, o)` triple patterns.
fn parse_pattern_list(text: &str) -> Result<PatternGraph, SyntaxError> {
    let mut patterns = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let Some(open) = rest.find('(') else {
            if rest.trim_matches([',', ' ']).is_empty() {
                break;
            }
            return Err(err(format!("expected '(', found '{rest}'")));
        };
        let Some(close) = rest[open..].find(')') else {
            return Err(err("unterminated triple pattern (missing ')')"));
        };
        let inside = &rest[open + 1..open + close];
        let parts: Vec<&str> = inside.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(err(format!(
                "a triple pattern needs 3 components, got '{inside}'"
            )));
        }
        patterns.push(TriplePattern::new(
            parse_term(parts[0])?,
            parse_term(parts[1])?,
            parse_term(parts[2])?,
        ));
        rest = rest[open + close + 1..].trim_start_matches([',', ' ']);
    }
    Ok(PatternGraph::from_patterns(patterns))
}

/// Parses a single term of the query syntax.
fn parse_term(label: &str) -> Result<PatternTerm, SyntaxError> {
    if label.is_empty() {
        return Err(err("empty term"));
    }
    if let Some(name) = label.strip_prefix('?') {
        if name.is_empty() {
            return Err(err("'?' must be followed by a variable name"));
        }
        return Ok(PatternTerm::Var(Variable::new(name)));
    }
    Ok(PatternTerm::Const(named_term(label)))
}

/// Resolves the shorthand names of the RDFS vocabulary.
fn named_term(label: &str) -> Term {
    match label {
        "sp" => Term::Iri(rdfs::sp()),
        "sc" => Term::Iri(rdfs::sc()),
        "type" => Term::Iri(rdfs::type_()),
        "dom" => Term::Iri(rdfs::dom()),
        "range" => Term::Iri(rdfs::range()),
        other => swdb_model::parse_term(other),
    }
}

/// Parses the premise block: `{ (s, p, o) . (s, p, o) . }` or the
/// N-Triples-style `<s> <p> <o> .` lines of `swdb-store`.
fn parse_premise(text: &str) -> Result<Graph, SyntaxError> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or_else(|| err("premise must be enclosed in { … }"))?;
    let mut graph = Graph::new();
    for statement in body.split('.') {
        let statement = statement.trim();
        if statement.is_empty() {
            continue;
        }
        // Accept both "(s, p, o)" and "<s> <p> <o>" forms.
        if statement.starts_with('(') {
            let inside = statement
                .strip_prefix('(')
                .and_then(|t| t.strip_suffix(')'))
                .ok_or_else(|| err(format!("malformed premise triple '{statement}'")))?;
            let parts: Vec<&str> = inside.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(err(format!(
                    "premise triple needs 3 components: '{inside}'"
                )));
            }
            if let Some(var) = parts.iter().find(|p| p.starts_with('?')) {
                return Err(err(format!(
                    "premises are variable-free graphs (Definition 4.1), found '{var}'"
                )));
            }
            let subject = named_term(parts[0]);
            let Term::Iri(predicate) = named_term(parts[1]) else {
                return Err(err(format!(
                    "premise predicate '{}' must be a URI",
                    parts[1]
                )));
            };
            let object = named_term(parts[2]);
            graph.insert(Triple::new(subject, predicate, object));
        } else {
            let line = format!("{statement} .");
            let parsed = swdb_store::parse(&line).map_err(|e| err(e.to_string()))?;
            graph.extend(parsed);
        }
    }
    Ok(graph)
}

/// Prints a query back in the textual notation. `parse_query ∘ format_query`
/// is the identity on the query's components.
pub fn format_query(query: &Query) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{} <- {}",
        format_patterns(query.head()),
        format_patterns(query.body())
    );
    if !query.premise().is_empty() {
        let triples: Vec<String> = query
            .premise()
            .iter()
            .map(|t| format!("({}, {}, {})", t.subject(), t.predicate(), t.object()))
            .collect();
        let _ = write!(out, " WITH PREMISE {{ {} . }}", triples.join(" . "));
    }
    if !query.constraints().is_empty() {
        let vars: Vec<String> = query
            .constraints()
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = write!(out, " WHERE BOUND {}", vars.join(", "));
    }
    out
}

fn format_patterns(pg: &PatternGraph) -> String {
    let patterns: Vec<String> = pg
        .patterns()
        .iter()
        .map(|p| format!("({}, {}, {})", p.subject, p.predicate, p.object))
        .collect();
    patterns.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdb_model::graph;

    #[test]
    fn parses_the_flemish_example() {
        let q = parse_query(
            "(?A, creates, ?Y) <- (?A, type, Flemish), (?A, paints, ?Y), (?Y, exhibited, Uffizi)",
        )
        .unwrap();
        assert_eq!(q.head().len(), 1);
        assert_eq!(q.body().len(), 3);
        assert!(q.is_premise_free());
        // "type" expands to the RDFS vocabulary term.
        assert!(q
            .body()
            .patterns()
            .iter()
            .any(|p| p.predicate.as_const() == Some(&Term::Iri(rdfs::type_()))));
    }

    #[test]
    fn parses_premises_and_constraints() {
        let q = parse_query(
            "(?X, relative, Peter) <- (?X, relative, Peter) \
             WITH PREMISE { (son, sp, relative) . } \
             WHERE BOUND ?X",
        )
        .unwrap();
        assert_eq!(q.premise(), &graph([("son", rdfs::SP, "relative")]));
        assert_eq!(q.constraints().len(), 1);
        assert!(q.constraints().contains(&Variable::new("X")));
    }

    #[test]
    fn premise_accepts_ntriples_style_lines() {
        let q = parse_query(
            "(?X, p, ?Y) <- (?X, p, ?Y) WITH PREMISE { <ex:a> <ex:t> <ex:s> . _:B <ex:t> <ex:s> . }",
        )
        .unwrap();
        assert_eq!(q.premise().len(), 2);
        assert_eq!(q.premise().blank_nodes().len(), 1);
    }

    #[test]
    fn round_trips_through_format() {
        let original = parse_query(
            "(?X, creates, _:W) <- (?X, paints, ?Y), (?Y, exhibited, Uffizi) \
             WITH PREMISE { (restores, sp, creates) . } WHERE BOUND ?X",
        )
        .unwrap();
        let text = format_query(&original);
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(reparsed.head(), original.head());
        assert_eq!(reparsed.body(), original.body());
        assert_eq!(reparsed.premise(), original.premise());
        assert_eq!(reparsed.constraints(), original.constraints());
    }

    #[test]
    fn identity_query_round_trips() {
        let id = Query::identity();
        let reparsed = parse_query(&format_query(&id)).unwrap();
        assert_eq!(reparsed, id);
    }

    #[test]
    fn error_cases_are_reported() {
        assert!(parse_query("(?X, p, ?Y)").is_err(), "missing arrow");
        assert!(
            parse_query("(?X, p) <- (?X, p, ?Y)").is_err(),
            "two components"
        );
        assert!(
            parse_query("(?X, p, ?Y) <- (?X, p, ?Y").is_err(),
            "unterminated"
        );
        assert!(
            parse_query("(?X, p, ?Y) <- (?X, p, ?Y) WHERE BOUND X").is_err(),
            "constraint without ?"
        );
        assert!(
            parse_query("(?X, p, ?Z) <- (?X, p, ?Y)").is_err(),
            "free head variable is a query-level error"
        );
        assert!(
            parse_query("(?X, p, ?Y) <- (?X, p, ?Y) WITH PREMISE { (a, ?P, b) . }").is_err(),
            "variables are not allowed in premises"
        );
    }

    #[test]
    fn parsed_queries_evaluate() {
        let q = parse_query("(?X, creates, ?Y) <- (?X, creates, ?Y)").unwrap();
        let d = graph([
            ("paints", rdfs::SP, "creates"),
            ("Picasso", "paints", "Guernica"),
        ]);
        let answers = crate::answer::answer_union(&q, &d);
        assert!(answers.contains(&swdb_model::triple("Picasso", "creates", "Guernica")));
    }
}
