//! E06 — Theorem 3.6(3)/(4): closure size and membership.
//!
//! Reports `|cl(G)| / |G|²` for the worst-case `sp`-chain family (the ratio
//! should stay between constants, exhibiting the Θ(|G|²) growth) and
//! benchmarks closure materialisation against the membership test that
//! avoids it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swdb_bench::{quick, report_row};
use swdb_entailment::ClosureStats;
use swdb_model::{rdfs, triple};
use swdb_workloads::{sc_chain_with_instance, sp_chain};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_closure_size");
    for &n in &[16usize, 64, 256] {
        let chain = sp_chain(n);
        let stats = ClosureStats::for_graph(&chain);
        report_row(
            "E06",
            &format!("sp_chain n={n}"),
            &[
                ("input", stats.input_triples.to_string()),
                ("closure", stats.closure_triples.to_string()),
                ("ratio_to_n2", format!("{:.3}", stats.quadratic_ratio())),
            ],
        );
        group.bench_with_input(BenchmarkId::new("materialise_closure", n), &n, |b, _| {
            b.iter(|| swdb_entailment::rdfs_closure(&chain))
        });
        // Membership of the "long-range" derived triple, without
        // materialising.
        let needle = triple("ex:p0", rdfs::SP, &format!("ex:p{n}"));
        group.bench_with_input(BenchmarkId::new("membership_test", n), &n, |b, _| {
            b.iter(|| swdb_entailment::closure_contains(&chain, &needle))
        });
    }
    for &n in &[16usize, 64, 256] {
        let chain = sc_chain_with_instance(n);
        group.bench_with_input(BenchmarkId::new("sc_chain_closure", n), &n, |b, _| {
            b.iter(|| swdb_entailment::rdfs_closure(&chain))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
