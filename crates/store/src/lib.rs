//! # swdb-store — the database substrate
//!
//! A dictionary-encoded, triple-indexed store plus a concrete syntax and
//! descriptive statistics. The theory layers (`swdb-entailment`,
//! `swdb-normal`, `swdb-query`) operate on the abstract
//! [`swdb_model::Graph`]; this crate is what a downstream application uses to
//! hold data at rest and to move it in and out of files.
//!
//! * [`dictionary`] — term interning,
//! * [`id_index`] — the raw SPO/POS/OSP ordered index over id-triples,
//! * [`triple_store`] — dictionary + index with term-level pattern scans,
//! * [`ntriples`] — an N-Triples-style parser and serializer,
//! * [`stats`] — graph statistics used by the experiment reports,
//! * [`union_find`] — the disjoint-set forest behind every blank-component
//!   partition (statistics here, the core engine in `swdb-normal`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dictionary;
pub mod id_index;
pub mod ntriples;
pub mod stats;
pub mod triple_store;
pub mod union_find;

pub use dictionary::{Dictionary, TermId};
pub use id_index::IdIndex;
pub use ntriples::{parse, serialize, ParseError};
pub use stats::GraphStats;
pub use triple_store::{IdPattern, IdTriple, TripleStore};
pub use union_find::DisjointSets;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use swdb_model::{Graph, Term, Triple};

    use crate::ntriples::{parse, serialize};
    use crate::triple_store::TripleStore;

    fn arb_graph(max_triples: usize) -> impl Strategy<Value = Graph> {
        let term = prop_oneof![
            (0u8..6).prop_map(|i| Term::iri(format!("ex:n{i}"))),
            (0u8..4).prop_map(|i| Term::blank(format!("B{i}"))),
        ];
        let pred = (0u8..3).prop_map(|i| swdb_model::Iri::new(format!("ex:p{i}")));
        proptest::collection::vec((term.clone(), pred, term), 0..=max_triples).prop_map(|ts| {
            ts.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect()
        })
    }

    proptest! {
        #[test]
        fn store_round_trips_graphs(g in arb_graph(12)) {
            let store = TripleStore::from_graph(&g);
            prop_assert_eq!(store.to_graph(), g.clone());
            prop_assert_eq!(store.len(), g.len());
        }

        #[test]
        fn ntriples_round_trips_graphs(g in arb_graph(12)) {
            let text = serialize(&g);
            prop_assert_eq!(parse(&text).unwrap(), g);
        }

        #[test]
        fn scans_agree_with_graph_filters(g in arb_graph(12)) {
            let store = TripleStore::from_graph(&g);
            for t in g.iter() {
                let by_subject = store.scan(Some(t.subject()), None, None);
                prop_assert!(by_subject.contains(t));
                let by_pred = store.scan(None, Some(t.predicate()), None);
                prop_assert!(by_pred.contains(t));
                let by_object = store.scan(None, None, Some(t.object()));
                prop_assert!(by_object.contains(t));
            }
        }

        #[test]
        fn removing_everything_empties_the_store(g in arb_graph(10)) {
            let mut store = TripleStore::from_graph(&g);
            for t in g.iter() {
                prop_assert!(store.remove(t));
            }
            prop_assert!(store.is_empty());
            prop_assert_eq!(store.to_graph(), Graph::new());
        }
    }
}
