//! Representations of RDF graphs: lean graphs, cores, closures and normal
//! forms (§3 of the paper), demonstrated on the paper's own examples and on
//! a synthetic redundant graph.
//!
//! Run with `cargo run --example normal_forms`.

use semweb_foundations::model::{graph, isomorphic, rdfs};
use semweb_foundations::normal;
use semweb_foundations::workloads::{inject_blank_redundancy, simple_graph, SimpleGraphConfig};

fn main() {
    // --- Example 3.8: leanness -------------------------------------------
    let g1 = graph([("ex:a", "ex:p", "_:X"), ("ex:a", "ex:p", "_:Y")]);
    let g2 = graph([
        ("ex:a", "ex:p", "_:X"),
        ("ex:a", "ex:p", "_:Y"),
        ("_:X", "ex:q", "ex:b"),
        ("_:Y", "ex:r", "ex:b"),
    ]);
    println!("Example 3.8:");
    println!("  G1 = {g1}");
    println!(
        "  G1 lean? {}   core(G1) = {}",
        normal::is_lean(&g1),
        normal::core(&g1)
    );
    println!(
        "  G2 lean? {} (the two blanks are distinguishable)",
        normal::is_lean(&g2)
    );

    // --- Example 3.17: closure and core are not syntax independent --------
    let g = graph([
        ("ex:a", rdfs::SC, "ex:b"),
        ("ex:b", rdfs::SC, "_:N"),
        ("_:N", rdfs::SC, "ex:c"),
    ]);
    let h = graph([
        ("ex:a", rdfs::SC, "ex:b"),
        ("ex:b", rdfs::SC, "ex:c"),
        ("ex:a", rdfs::SC, "ex:c"),
    ]);
    println!("\nExample 3.17 (G routes b ⊑ c through a blank, H states it directly):");
    println!(
        "  G ≡ H?                       {}",
        swdb_entailment::equivalent(&g, &h)
    );
    println!(
        "  cl(G) ≅ cl(H)?               {}",
        isomorphic(&normal::closure(&g), &normal::closure(&h))
    );
    println!(
        "  core(G) ≅ core(H)?           {}",
        isomorphic(&normal::core(&g), &normal::core(&h))
    );
    println!(
        "  nf(G) ≅ nf(H)?               {}  (Theorem 3.19: the normal form is syntax independent)",
        isomorphic(&normal::normal_form(&g), &normal::normal_form(&h))
    );

    // --- Example 3.14: minimal representations need not be unique ---------
    let cyclic = graph([
        ("ex:b", rdfs::SP, "ex:a"),
        ("ex:c", rdfs::SP, "ex:a"),
        ("ex:b", rdfs::SP, "ex:c"),
        ("ex:c", rdfs::SP, "ex:b"),
    ]);
    let representations = normal::distinct_minimal_representations(&cyclic, 8);
    println!(
        "\nExample 3.14: the cyclic sp-graph has {} distinct minimal representations:",
        representations.len()
    );
    for r in &representations {
        println!("  {r}");
    }

    // --- Redundancy elimination on a synthetic graph ----------------------
    let base = simple_graph(
        &SimpleGraphConfig {
            triples: 30,
            blank_probability: 0.0,
            ..SimpleGraphConfig::default()
        },
        42,
    );
    let redundant = inject_blank_redundancy(&base, 20, 43);
    let core = normal::core(&redundant);
    println!("\nSynthetic redundancy elimination:");
    println!("  base graph:      {} triples", base.len());
    println!("  with redundancy: {} triples", redundant.len());
    println!("  core:            {} triples", core.len());
    println!(
        "  core ≡ redundant? {}",
        swdb_entailment::equivalent(&core, &redundant)
    );
}
