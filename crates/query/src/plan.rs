//! The cost-based planner and the compiled plan cache.
//!
//! Before this module, every query re-paid its whole front half per call:
//! [`crate::exec::compile_body`] rebuilt the id patterns, the join order was
//! re-derived greedily from live [`IdTarget::candidate_count`] probes at
//! *every backtrack node*, and the Proposition 5.9 expansion `Ω_q` —
//! worst-case exponential (Theorem 5.12) — was recomputed on every premise
//! query. This module pays those costs once per query *shape*:
//!
//! * **Planning** ([`plan_order`]): a static join order is derived up front
//!   by simulating the join left to right — per round, each remaining
//!   pattern is scored by its constants-only prefix count (an O(1)
//!   [`IdIndex`](swdb_store::IdIndex) range count), damped for every
//!   position an adornment-style bound/free analysis shows already bound by
//!   earlier patterns (a bound join variable narrows the scan; lacking
//!   per-value statistics the damping is a fixed factor). The shared
//!   [`swdb_hom::IdSolver`] then executes the plan with **zero** probes per
//!   backtrack node ([`swdb_hom::IdSolver::with_order`]).
//! * **Plan caching** ([`PlanCache`]): compiled plans are cached in a small
//!   LRU keyed by [`QueryShape`] — the head/body/constraint structure
//!   *modulo constant identity*, so `(?X, type, Student)` and
//!   `(?X, type, Course)` share one entry. The shape key doubles as the
//!   cached compiled form: its body/head templates *are* the compiled body
//!   and head/constraint projections with constants replaced by table
//!   indices, and a hit re-instantiates them against the live dictionary
//!   (per-call constant resolution — dictionary growth can never leave a
//!   stale [`TermId`] in a reused plan). A generation counter, bumped by
//!   the facade on mutation, regime switch, and dictionary growth,
//!   invalidates entries lazily.
//! * **Expansion caching**: `Ω_q` ([`crate::premise_free_expansion`]) is
//!   cached per premise query in the same LRU ([`expansion_members`]), so
//!   the exponential rewrite is paid once per repeated premise query.
//!
//! Answers are plan-invariant: a join order is a permutation of the body
//! patterns, so the planned and unplanned paths enumerate the same solution
//! set (property tests pin this across regimes and semantics). Disabling
//! the cache (`SWDB_PLAN_CACHE=0`, or [`PlanCache::new`] with `false`)
//! routes every entry point below to the classic per-call path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use swdb_hom::{IdTarget, PatternTerm, Variable};
use swdb_model::{Graph, Term};
use swdb_obs::{Counter, Metrics, MetricsLevel};
use swdb_store::{Dictionary, TermId};

use crate::answer::{combine, Semantics};
use crate::exec::{
    self, CompiledBody, ExecHooks, ExecStats, Explain, IdPatternTerm, IdTriplePattern,
    MeteredTarget,
};
use crate::premise::premise_free_expansion;
use crate::query::Query;

/// Maximum number of cached entries (plans + expansions) before the
/// least-recently-used one is evicted.
pub const PLAN_CACHE_CAPACITY: usize = 256;

/// One position of a shape template: a variable slot or an index into the
/// query's first-occurrence constant table. Variables are numbered by first
/// occurrence in the body (matching [`crate::exec::compile_body`]'s slot
/// numbering), constants by first occurrence across body then head.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ShapeTerm {
    Var(u32),
    Const(u32),
}

/// The structure of a query modulo constant identity: the cache key, and —
/// because the templates keep every position — the cached compiled form.
/// `body` is the compiled-body template, `head` the head projection
/// template, `constraints` the constrained variable slots; a hit
/// re-instantiates `body` against the live dictionary instead of walking
/// the query's pattern terms again.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueryShape {
    body: Vec<[ShapeTerm; 3]>,
    head: Vec<[ShapeTerm; 3]>,
    constraints: Vec<u32>,
}

/// A query's shape plus the per-call identity the shape abstracted away:
/// the constant table and the variable slot table (both in first-occurrence
/// order, borrowed from the query).
struct ShapeInfo<'q> {
    shape: QueryShape,
    consts: Vec<&'q Term>,
    vars: Vec<&'q Variable>,
}

fn encode_term<'q>(
    pos: &'q PatternTerm,
    vars: &mut Vec<&'q Variable>,
    consts: &mut Vec<&'q Term>,
) -> ShapeTerm {
    match pos {
        PatternTerm::Var(v) => {
            let slot = vars
                .iter()
                .position(|known| *known == v)
                .unwrap_or_else(|| {
                    vars.push(v);
                    vars.len() - 1
                });
            ShapeTerm::Var(slot as u32)
        }
        PatternTerm::Const(t) => {
            let index = consts
                .iter()
                .position(|known| *known == t)
                .unwrap_or_else(|| {
                    consts.push(t);
                    consts.len() - 1
                });
            ShapeTerm::Const(index as u32)
        }
    }
}

/// Extracts the shape of a query. The body is walked first, so the variable
/// numbering coincides with [`crate::exec::compile_body`]'s slot numbering;
/// head variables occur in the body (Note 4.2) and add no slots.
fn encode_pattern<'q>(
    p: &'q swdb_hom::TriplePattern,
    vars: &mut Vec<&'q Variable>,
    consts: &mut Vec<&'q Term>,
) -> [ShapeTerm; 3] {
    [
        encode_term(&p.subject, vars, consts),
        encode_term(&p.predicate, vars, consts),
        encode_term(&p.object, vars, consts),
    ]
}

fn shape_of(query: &Query) -> ShapeInfo<'_> {
    let mut vars: Vec<&Variable> = Vec::new();
    let mut consts: Vec<&Term> = Vec::new();
    let body: Vec<[ShapeTerm; 3]> = query
        .body()
        .patterns()
        .iter()
        .map(|p| encode_pattern(p, &mut vars, &mut consts))
        .collect();
    let head: Vec<[ShapeTerm; 3]> = query
        .head()
        .patterns()
        .iter()
        .map(|p| encode_pattern(p, &mut vars, &mut consts))
        .collect();
    let mut constraints: Vec<u32> = query
        .constraints()
        .iter()
        .map(|v| {
            vars.iter()
                .position(|known| *known == v)
                .expect("constraints mention head variables, which occur in the body")
                as u32
        })
        .collect();
    constraints.sort_unstable();
    ShapeInfo {
        shape: QueryShape {
            body,
            head,
            constraints,
        },
        consts,
        vars,
    }
}

/// A compiled plan: the static join order (original body-pattern indices)
/// and the planner's per-pattern cardinality estimates (original pattern
/// order, surfaced by `Explain::estimated_cardinalities`).
#[derive(Debug)]
pub struct PlanData {
    order: Vec<usize>,
    estimates: Vec<u64>,
}

#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum CacheKey {
    /// Keyed by shape alone: constants only steer the (correctness-neutral)
    /// join order, so structurally-equal queries share a plan.
    Plan(QueryShape),
    /// `Ω_q` depends on the exact constants and premise, so the expansion
    /// key carries both (the shape's constant table, instantiated).
    Expansion(QueryShape, Vec<Term>, Graph),
}

#[derive(Clone, Debug)]
enum CacheValue {
    Plan(Arc<PlanData>),
    Expansion(Arc<Vec<Query>>),
}

#[derive(Debug)]
struct CacheEntry {
    generation: u64,
    last_used: u64,
    value: CacheValue,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: std::collections::BTreeMap<CacheKey, CacheEntry>,
    tick: u64,
}

/// The compiled plan + expansion cache: a small LRU with lazy generational
/// invalidation. Owners bump [`PlanCache::bump_generation`] whenever the
/// substrate a plan was costed against changes — the facade does so on
/// mutation, regime switch, and dictionary growth; a published snapshot is
/// immutable, so its cache never invalidates. Interior mutability is a
/// plain mutex: the lock is held for a `BTreeMap` probe, orders of
/// magnitude shorter than the planning or execution it saves.
#[derive(Debug)]
pub struct PlanCache {
    enabled: bool,
    generation: AtomicU64,
    state: Mutex<CacheState>,
}

impl PlanCache {
    /// An empty cache, enabled or disabled. Disabled caches make every
    /// planned entry point fall back to the classic per-call path.
    pub fn new(enabled: bool) -> Self {
        PlanCache {
            enabled,
            generation: AtomicU64::new(0),
            state: Mutex::new(CacheState::default()),
        }
    }

    /// An empty cache, enabled unless `SWDB_PLAN_CACHE` is set to `0`,
    /// `off`, `false`, or `no`.
    pub fn from_env() -> Self {
        let disabled = std::env::var("SWDB_PLAN_CACHE")
            .map(|v| {
                matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "off" | "false" | "no"
                )
            })
            .unwrap_or(false);
        PlanCache::new(!disabled)
    }

    /// Whether planned entry points use the cache at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Invalidates every cached entry (lazily: entries stamped with an
    /// older generation are discarded on their next lookup).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Cached entries, including ones an older generation has already
    /// doomed (they are discarded on lookup).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("plan cache poisoned")
            .entries
            .len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &CacheKey, metrics: &Metrics) -> Option<CacheValue> {
        let generation = self.generation();
        let mut state = self.state.lock().expect("plan cache poisoned");
        match state.entries.get_mut(key) {
            Some(entry) if entry.generation == generation => {
                state.tick += 1;
                let tick = state.tick;
                let entry = state.entries.get_mut(key).expect("probed above");
                entry.last_used = tick;
                metrics.count(Counter::PlanCacheHits, 1);
                Some(entry.value.clone())
            }
            Some(_) => {
                state.entries.remove(key);
                metrics.count(Counter::PlanCacheEvictions, 1);
                metrics.count(Counter::PlanCacheMisses, 1);
                None
            }
            None => {
                metrics.count(Counter::PlanCacheMisses, 1);
                None
            }
        }
    }

    fn store(&self, key: CacheKey, value: CacheValue, metrics: &Metrics) {
        let generation = self.generation();
        let mut state = self.state.lock().expect("plan cache poisoned");
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(
            key,
            CacheEntry {
                generation,
                last_used: tick,
                value,
            },
        );
        if state.entries.len() > PLAN_CACHE_CAPACITY {
            let coldest = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            state.entries.remove(&coldest);
            metrics.count(Counter::PlanCacheEvictions, 1);
        }
    }
}

/// Damping factor applied to a pattern's constants-only count for each
/// position the bound/free analysis shows bound by earlier patterns: a
/// bound join variable turns a wildcard into an exact-match position, which
/// typically narrows the scan substantially. With no per-value statistics
/// the factor is a fixed heuristic; what matters for the greedy order is
/// that boundness is rewarded monotonically.
const BOUND_POSITION_DAMPING: u64 = 4;

/// Estimates the cardinality of one pattern given which variable slots the
/// plan has already bound. The base is the constants-only prefix count (the
/// exact number of candidates an unadorned scan would visit); each bound
/// variable position divides it by [`BOUND_POSITION_DAMPING`].
fn estimate_pattern<T: IdTarget>(
    pattern: &IdTriplePattern,
    bound: &[bool],
    no_binding: &[Option<TermId>],
    target: &T,
) -> u64 {
    let mut estimate = target.candidate_count(pattern.to_scan(no_binding)) as u64;
    for position in [pattern.subject, pattern.predicate, pattern.object] {
        if let IdPatternTerm::Var(slot) = position {
            if bound[slot] && estimate > 1 {
                estimate = (estimate / BOUND_POSITION_DAMPING).max(1);
            }
        }
    }
    estimate
}

/// Plans a static join order by greedy simulation: per round, pick the
/// remaining pattern with the smallest [`estimate_pattern`] (first wins on
/// ties, zero short-circuits — the same rules as the dynamic
/// [`swdb_hom::most_constrained`] selection, so on a body whose first
/// choice decides everything the plan matches the dynamic order), then mark
/// its variable slots bound. Returns the order (original pattern indices)
/// and the estimate each pattern had when it was selected (original pattern
/// order). Spends `O(n²)` probes once, instead of `O(n)` probes per
/// backtrack node on every call.
fn plan_order<T: IdTarget>(
    patterns: &[IdTriplePattern],
    slots: usize,
    target: &T,
) -> (Vec<usize>, Vec<u64>) {
    let no_binding: Vec<Option<TermId>> = vec![None; slots];
    let mut bound = vec![false; slots];
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    let mut estimates = vec![0u64; patterns.len()];
    while !remaining.is_empty() {
        let mut best: Option<(usize, u64)> = None;
        for (position, &index) in remaining.iter().enumerate() {
            let estimate = estimate_pattern(&patterns[index], &bound, &no_binding, target);
            if best.is_none_or(|(_, best_estimate)| estimate < best_estimate) {
                best = Some((position, estimate));
            }
            if estimate == 0 {
                break;
            }
        }
        let (position, estimate) = best.expect("remaining not empty");
        let index = remaining.remove(position);
        estimates[index] = estimate;
        order.push(index);
        for pos in [
            patterns[index].subject,
            patterns[index].predicate,
            patterns[index].object,
        ] {
            if let IdPatternTerm::Var(slot) = pos {
                bound[slot] = true;
            }
        }
    }
    (order, estimates)
}

/// A query prepared for planned execution: the re-instantiated compiled
/// body, the (possibly cached) plan, whether the plan came from cache, and
/// the candidate probes planning itself paid (zero on a hit).
struct Prepared {
    compiled: CompiledBody,
    plan: Arc<PlanData>,
    hit: bool,
    plan_probes: u64,
}

/// Re-instantiates a shape's body template against the live dictionary.
/// Returns `None` when a body constant was never interned (the
/// unknown-constant fast path: zero matchings without touching the index).
fn instantiate_body(info: &ShapeInfo<'_>, dictionary: &Dictionary) -> Option<Vec<IdTriplePattern>> {
    let mut const_ids: Vec<Option<TermId>> = vec![None; info.consts.len()];
    let mut resolve = |term: ShapeTerm| -> Option<IdPatternTerm> {
        match term {
            ShapeTerm::Var(slot) => Some(IdPatternTerm::Var(slot as usize)),
            ShapeTerm::Const(index) => {
                let id = match const_ids[index as usize] {
                    Some(id) => id,
                    None => {
                        let id = dictionary.id_of(info.consts[index as usize])?;
                        const_ids[index as usize] = Some(id);
                        id
                    }
                };
                Some(IdPatternTerm::Const(id))
            }
        }
    };
    info.shape
        .body
        .iter()
        .map(|[s, p, o]| {
            Some(IdTriplePattern {
                subject: resolve(*s)?,
                predicate: resolve(*p)?,
                object: resolve(*o)?,
            })
        })
        .collect()
}

/// Shape-keys the query, re-instantiates its compiled body, and fetches (or
/// builds and caches) its plan. `None` means a body constant was never
/// interned — the caller returns the empty result without executing.
fn prepare<T: IdTarget>(
    cache: &PlanCache,
    query: &Query,
    dictionary: &Dictionary,
    target: &T,
    metrics: &Metrics,
) -> Option<Prepared> {
    let info = shape_of(query);
    let patterns = instantiate_body(&info, dictionary)?;
    metrics.count(Counter::QueryPatternsCompiled, patterns.len() as u64);
    let vars: Vec<Variable> = info.vars.iter().map(|v| (*v).clone()).collect();
    let slots = vars.len();
    let key = CacheKey::Plan(info.shape);
    let (plan, hit, plan_probes) = match cache.lookup(&key, metrics) {
        Some(CacheValue::Plan(plan)) => (plan, true, 0),
        _ => {
            let metered = MeteredTarget::new(target);
            let (order, estimates) = plan_order(&patterns, slots, &metered);
            let plan_probes = metered.probes();
            metered.flush(metrics);
            let plan = Arc::new(PlanData { order, estimates });
            cache.store(key, CacheValue::Plan(plan.clone()), metrics);
            (plan, false, plan_probes)
        }
    };
    Some(Prepared {
        compiled: CompiledBody::from_parts(patterns, vars),
        plan,
        hit,
        plan_probes,
    })
}

/// The planned counterpart of [`exec::id_answer_metered`]: fetches or
/// builds the plan for the query's shape, then executes the static join
/// order (zero per-node probes). Falls back to the classic per-call path
/// when the cache is disabled. Answers are identical either way.
pub fn planned_answer<T: IdTarget>(
    cache: &PlanCache,
    query: &Query,
    dictionary: &Dictionary,
    target: &T,
    semantics: Semantics,
    metrics: &Metrics,
) -> Graph {
    if !cache.enabled() {
        return exec::id_answer_metered(query, dictionary, target, semantics, metrics);
    }
    let Some(prepared) = prepare(cache, query, dictionary, target, metrics) else {
        return Graph::new();
    };
    let hooks = ExecHooks {
        order: Some(&prepared.plan.order),
        recorder: None,
        compiled: Some(&prepared.compiled),
    };
    let mut stats = ExecStats::default();
    if metrics.on(MetricsLevel::Counters) {
        metrics.count(Counter::QueryCompiled, 1);
        let answer = exec::id_answer_core(
            query, dictionary, target, semantics, metrics, hooks, &mut stats,
        );
        metrics.count(Counter::QueryAnswers, answer.len() as u64);
        return answer;
    }
    exec::id_answer_core(
        query, dictionary, target, semantics, metrics, hooks, &mut stats,
    )
}

/// The planned counterpart of [`exec::id_pre_answers_metered`].
pub fn planned_pre_answers<T: IdTarget>(
    cache: &PlanCache,
    query: &Query,
    dictionary: &Dictionary,
    target: &T,
    metrics: &Metrics,
) -> Vec<Graph> {
    if !cache.enabled() {
        return exec::id_pre_answers_metered(query, dictionary, target, metrics);
    }
    let Some(prepared) = prepare(cache, query, dictionary, target, metrics) else {
        return Vec::new();
    };
    let hooks = ExecHooks {
        order: Some(&prepared.plan.order),
        recorder: None,
        compiled: Some(&prepared.compiled),
    };
    let mut stats = ExecStats::default();
    if metrics.on(MetricsLevel::Counters) {
        metrics.count(Counter::QueryCompiled, 1);
        let singles =
            exec::id_pre_answers_core(query, dictionary, target, metrics, hooks, &mut stats);
        metrics.count(Counter::QueryAnswers, singles.len() as u64);
        return singles;
    }
    exec::id_pre_answers_core(query, dictionary, target, metrics, hooks, &mut stats)
}

/// The planned counterpart of [`exec::id_answer_is_empty_metered`].
pub fn planned_answer_is_empty<T: IdTarget>(
    cache: &PlanCache,
    query: &Query,
    dictionary: &Dictionary,
    target: &T,
    metrics: &Metrics,
) -> bool {
    if !cache.enabled() {
        return exec::id_answer_is_empty_metered(query, dictionary, target, metrics);
    }
    let Some(prepared) = prepare(cache, query, dictionary, target, metrics) else {
        // An unknown body constant matches nothing: genuinely empty.
        return true;
    };
    let hooks = ExecHooks {
        order: Some(&prepared.plan.order),
        recorder: None,
        compiled: Some(&prepared.compiled),
    };
    let mut stats = ExecStats::default();
    if metrics.on(MetricsLevel::Counters) {
        metrics.count(Counter::QueryCompiled, 1);
        return exec::id_answer_is_empty_core(
            query, dictionary, target, metrics, hooks, &mut stats,
        );
    }
    exec::id_answer_is_empty_core(query, dictionary, target, metrics, hooks, &mut stats)
}

/// The planned counterpart of [`exec::explain_premise_free`]: one pass of
/// the real pipeline under the (possibly cached) plan, reporting the
/// plan-cache outcome and the planner's estimated vs the store's actual
/// per-pattern cardinalities.
pub fn planned_explain<T: IdTarget>(
    cache: &PlanCache,
    query: &Query,
    dictionary: &Dictionary,
    target: &T,
    semantics: Semantics,
    metrics: &Metrics,
) -> Explain {
    if !cache.enabled() {
        // `Explain::empty` defaults `plan_cache` to "off".
        return exec::explain_premise_free(query, dictionary, target, semantics);
    }
    let mut explain = Explain::empty("premise_free", semantics);
    let Some(prepared) = prepare(cache, query, dictionary, target, metrics) else {
        // Unknown body constant: the fast negative path runs no joins (and
        // consults no plan).
        return explain;
    };
    explain.plan_cache = if prepared.hit { "hit" } else { "miss" };
    explain.estimated_cardinalities = prepared.plan.estimates.clone();
    explain.probes = prepared.plan_probes;
    let hooks = ExecHooks {
        order: Some(&prepared.plan.order),
        recorder: None,
        compiled: Some(&prepared.compiled),
    };
    exec::explain_exec(query, dictionary, target, semantics, hooks, explain)
}

/// The premise-free expansion `Ω_q` of a premise query, cached per exact
/// query (shape + constants + premise) — the worst-case-exponential rewrite
/// of Proposition 5.9 is paid once per repeated premise query. The `bool`
/// reports whether the lookup was a hit (always `false` when the cache is
/// disabled).
pub fn expansion_members(
    cache: &PlanCache,
    query: &Query,
    metrics: &Metrics,
) -> (Arc<Vec<Query>>, bool) {
    if !cache.enabled() {
        return (Arc::new(premise_free_expansion(query)), false);
    }
    let info = shape_of(query);
    let key = CacheKey::Expansion(
        info.shape.clone(),
        info.consts.iter().map(|t| (*t).clone()).collect(),
        query.premise().clone(),
    );
    if let Some(CacheValue::Expansion(members)) = cache.lookup(&key, metrics) {
        return (members, true);
    }
    let members = Arc::new(premise_free_expansion(query));
    cache.store(key, CacheValue::Expansion(members.clone()), metrics);
    (members, false)
}

/// Evaluates a union of premise-free member queries through the plan cache:
/// each member gets its own (cached) plan, single answers are deduplicated
/// across members exactly as [`crate::id_pre_answers_of_queries`] does.
pub fn planned_pre_answers_union<T: IdTarget>(
    cache: &PlanCache,
    members: &[Query],
    dictionary: &Dictionary,
    target: &T,
    metrics: &Metrics,
) -> Vec<Graph> {
    let mut seen = std::collections::BTreeSet::new();
    let mut singles: Vec<Graph> = Vec::new();
    for member in members {
        for single in planned_pre_answers(cache, member, dictionary, target, metrics) {
            if seen.insert(single.clone()) {
                singles.push(single);
            }
        }
    }
    singles
}

/// The planned counterpart of [`crate::id_answer_union_of_queries`].
pub fn planned_answer_union<T: IdTarget>(
    cache: &PlanCache,
    members: &[Query],
    dictionary: &Dictionary,
    target: &T,
    semantics: Semantics,
    metrics: &Metrics,
) -> Graph {
    combine(
        planned_pre_answers_union(cache, members, dictionary, target, metrics),
        semantics,
    )
}

/// The planned counterpart of [`crate::id_union_answer_is_empty`].
pub fn planned_union_is_empty<T: IdTarget>(
    cache: &PlanCache,
    members: &[Query],
    dictionary: &Dictionary,
    target: &T,
    metrics: &Metrics,
) -> bool {
    members
        .iter()
        .all(|member| planned_answer_is_empty(cache, member, dictionary, target, metrics))
}

/// Merges per-member explains for the expansion mechanism, mirroring the
/// facade's historical convention: `patterns`/`join_order` (and the
/// cardinality columns) describe the first member, `probes`/`bindings`/
/// `answers` sum over all of them. `plan_cache` reports the Ω_q expansion
/// lookup (`expansion_hit`), the headline cache for premise queries.
pub fn planned_explain_union<T: IdTarget>(
    cache: &PlanCache,
    members: &[Query],
    dictionary: &Dictionary,
    target: &T,
    semantics: Semantics,
    metrics: &Metrics,
    expansion_hit: bool,
) -> Explain {
    let mut merged: Option<Explain> = None;
    for member in members {
        let e = planned_explain(cache, member, dictionary, target, semantics, metrics);
        match merged.as_mut() {
            None => merged = Some(e),
            Some(m) => {
                m.probes += e.probes;
                m.bindings += e.bindings;
                m.answers += e.answers;
                m.truncated |= e.truncated;
            }
        }
    }
    let mut explain = merged.unwrap_or_else(|| Explain::empty("expansion", semantics));
    explain.mechanism = "expansion";
    explain.members = members.len();
    if cache.enabled() {
        explain.plan_cache = if expansion_hit { "hit" } else { "miss" };
    }
    explain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::query;
    use swdb_model::graph;
    use swdb_store::TripleStore;

    fn store() -> TripleStore {
        TripleStore::from_graph(&graph([
            ("ex:dept", "ex:offers", "ex:DB"),
            ("ex:dept", "ex:offers", "ex:AI"),
            ("ex:alice", "ex:takes", "ex:DB"),
            ("ex:bob", "ex:takes", "ex:AI"),
            ("ex:carol", "ex:takes", "ex:DB"),
        ]))
    }

    #[test]
    fn shapes_identify_structure_modulo_constants() {
        let a = query([("?X", "ex:p", "ex:a")], [("?X", "ex:q", "ex:a")]);
        let b = query([("?Y", "ex:r", "ex:b")], [("?Y", "ex:s", "ex:b")]);
        assert_eq!(shape_of(&a).shape, shape_of(&b).shape);
        // Repeating a constant is structural: a query reusing one constant
        // twice differs from one using two distinct constants.
        let c = query([("?X", "ex:p", "ex:a")], [("?X", "ex:a", "ex:a")]);
        assert_ne!(shape_of(&a).shape, shape_of(&c).shape);
        // Repeated variables are structural too.
        let d = query([("?X", "ex:p", "ex:a")], [("?X", "ex:q", "?X")]);
        assert_ne!(shape_of(&a).shape, shape_of(&d).shape);
    }

    #[test]
    fn planner_prefers_the_selective_pattern_first() {
        let s = store();
        // Pattern 0 scans 5 triples constants-only; pattern 1 scans 2.
        let q = query(
            [("?S", "ex:studies", "?C")],
            [("?S", "ex:takes", "?C"), ("ex:dept", "ex:offers", "?C")],
        );
        let compiled = exec::compile_body(q.body(), s.dictionary()).unwrap();
        let (order, estimates) = plan_order(
            compiled.patterns(),
            compiled.variables().len(),
            s.id_index(),
        );
        assert_eq!(order[0], 1, "the constant-bound pattern goes first");
        assert_eq!(estimates[1], 2, "selected at its constants-only count");
        assert!(
            estimates[0] < 3,
            "the second selection is damped for its bound ?C: {}",
            estimates[0]
        );
    }

    #[test]
    fn planned_answers_equal_unplanned_answers() {
        let s = store();
        let cache = PlanCache::new(true);
        let metrics = Metrics::disabled();
        for q in [
            query([("?X", "ex:takes", "?C")], [("?X", "ex:takes", "?C")]),
            query(
                [("?S", "ex:studies", "?C")],
                [("ex:dept", "ex:offers", "?C"), ("?S", "ex:takes", "?C")],
            ),
            query([("?X", "?P", "?Y")], [("?X", "?P", "?Y")]),
        ] {
            for semantics in [Semantics::Union, Semantics::Merge] {
                // Twice: a cold (miss) and a warm (hit) execution.
                for _ in 0..2 {
                    let planned = planned_answer(
                        &cache,
                        &q,
                        s.dictionary(),
                        s.id_index(),
                        semantics,
                        metrics,
                    );
                    let unplanned = exec::id_answer(&q, s.dictionary(), s.id_index(), semantics);
                    assert_eq!(planned, unplanned, "query {q:?} under {semantics:?}");
                }
            }
        }
    }

    #[test]
    fn generation_bump_invalidates_cached_plans() {
        let s = store();
        let cache = PlanCache::new(true);
        let metrics = Metrics::disabled();
        let q = query([("?X", "ex:takes", "?C")], [("?X", "ex:takes", "?C")]);
        let miss = prepare(&cache, &q, s.dictionary(), s.id_index(), metrics).unwrap();
        assert!(!miss.hit);
        let hit = prepare(&cache, &q, s.dictionary(), s.id_index(), metrics).unwrap();
        assert!(hit.hit);
        cache.bump_generation();
        let after = prepare(&cache, &q, s.dictionary(), s.id_index(), metrics).unwrap();
        assert!(!after.hit, "a bumped generation dooms the cached plan");
    }

    #[test]
    fn lru_eviction_keeps_the_cache_bounded() {
        let s = store();
        let cache = PlanCache::new(true);
        let metrics = Metrics::disabled();
        for i in 0..PLAN_CACHE_CAPACITY + 10 {
            // Distinct shapes: i+1 copies of the pattern with fresh
            // variables each — shape length differs per i.
            let body: Vec<(String, String, String)> = (0..=i)
                .map(|j| (format!("?X{j}"), "ex:takes".to_string(), format!("?C{j}")))
                .collect();
            let body_ref: Vec<(&str, &str, &str)> = body
                .iter()
                .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
                .collect();
            let q = query(
                [(body_ref[0].0, "ex:studies", body_ref[0].2)],
                body_ref.clone(),
            );
            prepare(&cache, &q, s.dictionary(), s.id_index(), metrics).unwrap();
            assert!(cache.len() <= PLAN_CACHE_CAPACITY);
        }
    }

    #[test]
    fn disabled_cache_stays_empty_and_falls_back() {
        let s = store();
        let cache = PlanCache::new(false);
        let metrics = Metrics::disabled();
        let q = query([("?X", "ex:takes", "?C")], [("?X", "ex:takes", "?C")]);
        let planned = planned_answer(
            &cache,
            &q,
            s.dictionary(),
            s.id_index(),
            Semantics::Union,
            metrics,
        );
        assert_eq!(
            planned,
            exec::id_answer(&q, s.dictionary(), s.id_index(), Semantics::Union)
        );
        assert!(cache.is_empty());
        let explain = planned_explain(
            &cache,
            &q,
            s.dictionary(),
            s.id_index(),
            Semantics::Union,
            metrics,
        );
        assert_eq!(explain.plan_cache, "off");
    }

    #[test]
    fn planned_explain_reports_cache_state_and_cardinalities() {
        let s = store();
        let cache = PlanCache::new(true);
        let metrics = Metrics::disabled();
        let q = query(
            [("?S", "ex:studies", "?C")],
            [("?S", "ex:takes", "?C"), ("ex:dept", "ex:offers", "?C")],
        );
        let first = planned_explain(
            &cache,
            &q,
            s.dictionary(),
            s.id_index(),
            Semantics::Union,
            metrics,
        );
        assert_eq!(first.plan_cache, "miss");
        let second = planned_explain(
            &cache,
            &q,
            s.dictionary(),
            s.id_index(),
            Semantics::Union,
            metrics,
        );
        assert_eq!(second.plan_cache, "hit");
        assert_eq!(first.join_order, second.join_order);
        assert_eq!(first.join_order, vec![1, 0]);
        assert_eq!(first.estimated_cardinalities.len(), 2);
        assert_eq!(first.actual_cardinalities, vec![3, 2]);
        assert_eq!(first.answers, second.answers);
        // The warm run re-probes nothing at plan time.
        assert!(second.probes <= first.probes);
        let rendered = second.to_json();
        assert!(rendered.contains("\"plan_cache\": \"hit\""));
        assert!(rendered.contains("\"estimated_cardinalities\": "));
    }

    #[test]
    fn expansion_members_are_cached_per_premise_query() {
        let q = Query::with_premise(
            swdb_hom::pattern_graph([("?X", "ex:p", "?Y")]),
            swdb_hom::pattern_graph([("?X", "ex:q", "?Y"), ("?Y", "ex:t", "ex:s")]),
            graph([("ex:a", "ex:t", "ex:s")]),
        )
        .unwrap();
        let cache = PlanCache::new(true);
        let metrics = Metrics::disabled();
        let (first, first_hit) = expansion_members(&cache, &q, metrics);
        let (second, second_hit) = expansion_members(&cache, &q, metrics);
        assert!(!first_hit);
        assert!(second_hit);
        assert!(
            Arc::ptr_eq(&first, &second),
            "the second call is a cache hit"
        );
        assert_eq!(*first, premise_free_expansion(&q));
        // A different premise is a different key.
        let other = q.replacing_premise(graph([("ex:b", "ex:t", "ex:s")]));
        let (third, third_hit) = expansion_members(&cache, &other, metrics);
        assert!(!third_hit);
        assert!(!Arc::ptr_eq(&first, &third));
    }
}
