//! # swdb-obs — zero-cost-when-off instrumentation for the swdb stack
//!
//! Every engine in the workspace (closure maintenance, id-space joins, the
//! incremental core, the facade's overlay cache) reports through one shared
//! [`Metrics`] handle: a cheaply clonable `Arc` of lock-free atomic state.
//! The handle has three levels:
//!
//! * [`MetricsLevel::Off`] — the default. Every recording call is a single
//!   relaxed atomic load and a predictable branch; no counter is touched,
//!   no clock is read, no allocation happens. Engines additionally batch
//!   their hot-loop counts into plain locals and flush once per operation,
//!   so the off path costs a handful of loads per *operation*, not per
//!   *triple*.
//! * [`MetricsLevel::Counters`] — lock-free monotonic counters, per-rule
//!   firing slots and gauges are live. Suitable for production traffic.
//! * [`MetricsLevel::Debug`] — additionally records log₂-bucketed size and
//!   latency histograms, and [`Metrics::span`] RAII timers read the clock.
//!
//! [`Metrics::snapshot`] freezes everything into a [`MetricsSnapshot`]
//! whose maps are `BTreeMap`s, so [`MetricsSnapshot::to_json`] emits a
//! deterministically-keyed report using the workspace's hand-rolled JSON
//! conventions (no external serializer).
//!
//! The crate is std-only and dependency-free so every layer of the stack
//! can depend on it, including `swdb-reason` at the bottom.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How much the stack records. Ordered: each level includes the previous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum MetricsLevel {
    /// Record nothing; every instrumentation call is a load and a branch.
    #[default]
    Off = 0,
    /// Lock-free counters, per-rule firing slots and gauges.
    Counters = 1,
    /// Counters plus histograms and RAII span timers (clock reads).
    Debug = 2,
}

impl MetricsLevel {
    /// Parses the `SWDB_METRICS` convention: `off`/`0`, `counters`/`on`/`1`,
    /// `debug`/`2` (case-insensitive). Unknown values mean [`Off`].
    ///
    /// [`Off`]: MetricsLevel::Off
    pub fn parse(s: &str) -> MetricsLevel {
        match s.trim().to_ascii_lowercase().as_str() {
            "counters" | "on" | "1" => MetricsLevel::Counters,
            "debug" | "2" => MetricsLevel::Debug,
            _ => MetricsLevel::Off,
        }
    }

    /// Reads the level from the `SWDB_METRICS` environment variable
    /// ([`Off`] when unset).
    ///
    /// [`Off`]: MetricsLevel::Off
    pub fn from_env() -> MetricsLevel {
        std::env::var("SWDB_METRICS")
            .map(|v| MetricsLevel::parse(&v))
            .unwrap_or(MetricsLevel::Off)
    }

    /// The snapshot/JSON name of the level.
    pub fn name(self) -> &'static str {
        match self {
            MetricsLevel::Off => "off",
            MetricsLevel::Counters => "counters",
            MetricsLevel::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> MetricsLevel {
        match v {
            1 => MetricsLevel::Counters,
            2 => MetricsLevel::Debug,
            _ => MetricsLevel::Off,
        }
    }
}

macro_rules! keyed_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $key:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration order (the storage order).
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The stable snake_case snapshot/JSON key of the variant.
            pub fn key(self) -> &'static str {
                match self {
                    $($name::$variant => $key,)+
                }
            }
        }
    };
}

keyed_enum! {
    /// The monotonic counters of the stack, one slot each.
    Counter {
        /// Semi-naive propagation rounds committed (round-based schedule).
        ReasonRounds => "reason_rounds",
        /// Rounds that actually ran on scoped worker threads.
        ReasonParallelRounds => "reason_parallel_rounds",
        /// `(rule, hypothesis)` shards evaluated across all rounds.
        ReasonShards => "reason_shards",
        /// Rule conclusions kept at evaluation time (all rules; the
        /// per-rule split lives in the rule-firing slots). Schedule-
        /// dependent: the depth-first and round-based schedules evaluate
        /// different numbers of instances on the way to the same fixpoint.
        ReasonRuleFirings => "reason_rule_firings",
        /// Triples added to the maintained closure (schedule-invariant).
        ReasonClosureAdded => "reason_closure_added",
        /// Triples removed from the maintained closure (schedule-invariant).
        ReasonClosureRemoved => "reason_closure_removed",
        /// Triples overdeleted by the DRed cascade before rederivation.
        ReasonOverdeleted => "reason_overdeleted",
        /// Overdeleted triples rederived (put back) by the DRed check.
        ReasonRederived => "reason_rederived",
        /// Non-committing closure previews run for premise overlays.
        ReasonPreviews => "reason_previews",
        /// Queries compiled to id patterns.
        QueryCompiled => "query_compiled",
        /// Body triple patterns compiled to id patterns.
        QueryPatternsCompiled => "query_patterns_compiled",
        /// `candidate_count` selectivity probes issued by the join planner.
        QueryJoinProbes => "query_join_probes",
        /// Bindings (complete pattern matchings) enumerated by the solver.
        QueryBindings => "query_bindings",
        /// Answers materialized into result graphs.
        QueryAnswers => "query_answers",
        /// Enumerations cut off at the solution limit: the produced answer
        /// set (or emptiness verdict) may be incomplete. The query-side
        /// analogue of the degraded-core warning — surfaced in
        /// `Explain::truncated` and the snapshot warnings.
        QueryTruncations => "query_truncations",
        /// Planned executions that reused a cached compiled plan.
        PlanCacheHits => "plan_cache_hits",
        /// Planned executions that compiled, probed, and planned from
        /// scratch (then cached the plan).
        PlanCacheMisses => "plan_cache_misses",
        /// Plan-cache entries evicted — least-recently-used on capacity,
        /// or found stale under a newer generation.
        PlanCacheEvictions => "plan_cache_evictions",
        /// Blank components re-cored by the incremental core engine.
        CoreComponentsRecored => "core_components_recored",
        /// Successful folds applied by the retraction searches.
        CoreFoldSteps => "core_fold_steps",
        /// Fold maps replayed onto component support sets.
        CoreSupportReplays => "core_support_replays",
        /// Retraction searches attempted (one per fold candidate probe).
        CoreRetractionSearches => "core_retraction_searches",
        /// Early warnings: largest blank component exceeded the threshold.
        CoreBlankWarnings => "core_blank_warnings",
        /// Premise overlay cache hits in the facade.
        OverlayCacheHits => "overlay_cache_hits",
        /// Premise overlay cache misses (overlay built from scratch).
        OverlayCacheMisses => "overlay_cache_misses",
        /// Premise overlay cache evictions (capacity reached).
        OverlayCacheEvictions => "overlay_cache_evictions",
        /// Core budget slices exhausted: a retraction search ran out of
        /// fold steps or wall time and its component (or overlay) was
        /// published uncored — sound, but non-minimal.
        CoreBudgetExhausted => "core_budget_exhausted",
        /// WAL records appended (one per logged mutation record, before
        /// group-commit batching).
        WalRecordsAppended => "wal_records_appended",
        /// Bytes appended to the WAL (payload + framing).
        WalBytes => "wal_bytes",
        /// Snapshots written (full rotations: snapshot + WAL truncation).
        SnapshotsWritten => "snapshots_written",
        /// WAL records replayed through the incremental delta paths during
        /// recovery (`open`): zero on a clean snapshot boot.
        RecoveryReplayedDeltas => "recovery_replayed_deltas",
        /// Recoveries that found and discarded a torn (incomplete or
        /// CRC-failing) final WAL record — the expected crash signature.
        RecoveryTornTails => "recovery_torn_tails",
        /// Orphaned files (`*.tmp` segments and stale generations) removed
        /// by `open`'s cleanup sweep — the debris of a crash mid-rotation.
        RecoveryOrphansRemoved => "recovery_orphans_removed",
        /// Fail-stop durability detaches: an IO error dropped the
        /// snapshot/WAL layer and the database continued in memory only.
        DurabilityDetached => "durability_detached",
        /// Immutable evaluation snapshots published for lock-free readers.
        SnapshotsPublished => "snapshots_published",
        /// Connections accepted by the HTTP front end.
        ServerAccepted => "server_accepted",
        /// Requests fully served (any status) by the HTTP front end.
        ServerRequests => "server_requests",
        /// Connections shed with `503 Retry-After` because the bounded
        /// accept/work queue was full.
        ServerShed => "server_shed",
        /// Connections dropped by a read/write deadline (slow peers,
        /// slow-loris requests).
        ServerTimeouts => "server_timeouts",
        /// Requests rejected as malformed or over the size limits
        /// (4xx responses).
        ServerBadRequests => "server_bad_requests",
        /// Handler panics isolated by a worker (the worker survives).
        ServerPanics => "server_panics",
    }
}

keyed_enum! {
    /// The gauges (last-observed values, not monotonic).
    Gauge {
        /// Size in triples of the largest blank co-occurrence component in
        /// the evaluation graph — the driver of the worst-case (NP-hard,
        /// Thm 3.12) local core search.
        LargestBlankComponent => "largest_blank_component",
        /// The configured early-warning threshold for the above.
        BlankWarnThreshold => "blank_warn_threshold",
        /// Blank components currently published uncored after budget
        /// exhaustion (0 when the evaluation graph is fully minimized).
        UncoredComponents => "uncored_components",
        /// Total triples across the currently-uncored components.
        UncoredTriples => "uncored_triples",
        /// Live records in the current WAL generation (resets on rotation).
        WalLiveRecords => "wal_live_records",
        /// The configured WAL compaction threshold in records (0 when no
        /// durability layer is attached).
        WalCompactThreshold => "wal_compact_threshold",
        /// Epoch of the currently published evaluation snapshot (0 before
        /// the first publication).
        PublishedEpoch => "published_epoch",
        /// Connections waiting in the server's bounded work queue.
        ServerQueueDepth => "server_queue_depth",
    }
}

keyed_enum! {
    /// The log₂-bucketed histograms (recorded at [`MetricsLevel::Debug`]).
    Hist {
        /// Frontier size per propagation round, in triples.
        FrontierSize => "frontier_size",
        /// Shard size per parallel round, in `(delta, path)` join tasks.
        ShardSize => "shard_size",
        /// Per-round worker utilization in percent:
        /// `total load / (workers × busiest worker load)`.
        RoundUtilizationPct => "round_utilization_pct",
        /// Wall time of one closure insert propagation, nanoseconds.
        SpanReasonInsertNs => "span_reason_insert_ns",
        /// Wall time of one DRed delete, nanoseconds.
        SpanReasonDeleteNs => "span_reason_delete_ns",
        /// Wall time of one core-engine delta refresh, nanoseconds.
        SpanCoreRefreshNs => "span_core_refresh_ns",
        /// Wall time of one facade query answer, nanoseconds.
        SpanQueryAnswerNs => "span_query_answer_ns",
        /// Wall time of one premise overlay build, nanoseconds.
        SpanOverlayBuildNs => "span_overlay_build_ns",
        /// Wall time of one snapshot rotation (write + fsync + rename + WAL
        /// truncation), nanoseconds.
        SpanSnapshotWriteNs => "span_snapshot_write_ns",
        /// Wall time of one recovery (`open`: snapshot load + WAL replay),
        /// nanoseconds.
        SpanRecoveryNs => "span_recovery_ns",
        /// Wall time of one snapshot publication (cloning the evaluation
        /// index + dictionary into an immutable published view), nanoseconds.
        SpanSnapshotPublishNs => "span_snapshot_publish_ns",
        /// Wall time of one served HTTP request (parse to last byte
        /// written), nanoseconds.
        SpanServerRequestNs => "span_server_request_ns",
    }
}

/// Number of per-rule firing slots (the rule system has 14 rules).
pub const RULE_SLOTS: usize = 16;

/// Default early-warning threshold (triples in one blank component) when
/// `SWDB_BLANK_WARN` is unset.
pub const DEFAULT_BLANK_WARN_THRESHOLD: u64 = 1_000;

/// 64 log₂ buckets plus the zero bucket.
const HIST_BUCKETS: usize = 65;

struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log₂ v) + 1`.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Lower bound of a bucket (inclusive): 0 for the zero bucket, else
/// `2^(b-1)`.
fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

struct Inner {
    level: AtomicU8,
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    rule_firings: [AtomicU64; RULE_SLOTS],
    histograms: [Histogram; Hist::ALL.len()],
    blank_warn_threshold: AtomicU64,
    /// Cold-path registry mapping rule slots to human-readable labels
    /// (e.g. `r04_sc-transitivity`); written once by the rule system.
    rule_labels: Mutex<Vec<String>>,
}

/// The shared instrumentation handle. Clones share the same atomic state
/// (an `Arc`), so an engine and the facade that owns it report into one
/// set of counters; [`Metrics::default`] is a fresh, disabled handle.
#[derive(Clone)]
pub struct Metrics {
    inner: Arc<Inner>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new(MetricsLevel::Off)
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("level", &self.level())
            .finish_non_exhaustive()
    }
}

impl Metrics {
    /// A fresh handle at the given level.
    pub fn new(level: MetricsLevel) -> Metrics {
        let threshold = std::env::var("SWDB_BLANK_WARN")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_BLANK_WARN_THRESHOLD);
        Metrics {
            inner: Arc::new(Inner {
                level: AtomicU8::new(level as u8),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
                rule_firings: std::array::from_fn(|_| AtomicU64::new(0)),
                histograms: std::array::from_fn(|_| Histogram::new()),
                blank_warn_threshold: AtomicU64::new(threshold),
                rule_labels: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A fresh handle at the level named by the `SWDB_METRICS` environment
    /// variable ([`MetricsLevel::Off`] when unset).
    pub fn from_env() -> Metrics {
        Metrics::new(MetricsLevel::from_env())
    }

    /// A process-wide permanently-disabled handle for uninstrumented entry
    /// points: no allocation per call site.
    pub fn disabled() -> &'static Metrics {
        static OFF: OnceLock<Metrics> = OnceLock::new();
        OFF.get_or_init(|| Metrics::new(MetricsLevel::Off))
    }

    /// The current recording level.
    pub fn level(&self) -> MetricsLevel {
        MetricsLevel::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Changes the recording level; already-recorded state is kept.
    pub fn set_level(&self, level: MetricsLevel) {
        self.inner.level.store(level as u8, Ordering::Relaxed);
    }

    /// `true` when the handle records at least at `at` — one relaxed load.
    /// Engines use this to batch hot-loop counts into locals and skip the
    /// flush entirely when off.
    #[inline]
    pub fn on(&self, at: MetricsLevel) -> bool {
        self.inner.level.load(Ordering::Relaxed) >= at as u8
    }

    /// Adds `n` to a counter (no-op below [`MetricsLevel::Counters`] or
    /// when `n == 0`).
    #[inline]
    pub fn count(&self, counter: Counter, n: u64) {
        if n != 0 && self.on(MetricsLevel::Counters) {
            self.inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds `n` firings to rule slot `slot` (modulo [`RULE_SLOTS`]).
    #[inline]
    pub fn count_rule(&self, slot: usize, n: u64) {
        if n != 0 && self.on(MetricsLevel::Counters) {
            self.inner.rule_firings[slot % RULE_SLOTS].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sets a gauge to its latest observed value.
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        if self.on(MetricsLevel::Counters) {
            self.inner.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Records a histogram sample (no-op below [`MetricsLevel::Debug`]).
    #[inline]
    pub fn record(&self, hist: Hist, value: u64) {
        if self.on(MetricsLevel::Debug) {
            self.inner.histograms[hist as usize].record(value);
        }
    }

    /// Starts an RAII span timer recording its wall time into `hist` when
    /// dropped. Below [`MetricsLevel::Debug`] the clock is never read.
    #[inline]
    pub fn span(&self, hist: Hist) -> Span<'_> {
        Span {
            metrics: self,
            hist,
            start: if self.on(MetricsLevel::Debug) {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// The configured largest-blank-component early-warning threshold.
    pub fn blank_warn_threshold(&self) -> u64 {
        self.inner.blank_warn_threshold.load(Ordering::Relaxed)
    }

    /// Reconfigures the early-warning threshold.
    pub fn set_blank_warn_threshold(&self, threshold: u64) {
        self.inner
            .blank_warn_threshold
            .store(threshold, Ordering::Relaxed);
    }

    /// Reports the current largest blank-component size: updates the gauge
    /// and counts an early warning whenever the size exceeds the
    /// configured threshold (the first concrete hook of the NP-hard-tail
    /// budgeting item — Thm 3.12 makes one giant component the worst case
    /// of the core refresh).
    pub fn observe_largest_blank_component(&self, size: u64) {
        if !self.on(MetricsLevel::Counters) {
            return;
        }
        self.gauge_set(Gauge::LargestBlankComponent, size);
        self.gauge_set(Gauge::BlankWarnThreshold, self.blank_warn_threshold());
        if size > self.blank_warn_threshold() {
            self.count(Counter::CoreBlankWarnings, 1);
        }
    }

    /// Registers human-readable labels for the rule-firing slots (slot `i`
    /// gets `labels[i]`). Cold path; called once by the rule system.
    pub fn set_rule_labels(&self, labels: Vec<String>) {
        *self.inner.rule_labels.lock().expect("rule label registry") = labels;
    }

    /// Resets all counters, gauges, rule slots and histograms to zero
    /// (level and labels are kept). Used by tests and by benches that
    /// report per-phase snapshots.
    pub fn reset(&self) {
        for c in &self.inner.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.inner.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for r in &self.inner.rule_firings {
            r.store(0, Ordering::Relaxed);
        }
        for h in &self.inner.histograms {
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Freezes the current state into a deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| {
                (
                    c.key(),
                    self.inner.counters[c as usize].load(Ordering::Relaxed),
                )
            })
            .collect();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| {
                (
                    g.key(),
                    self.inner.gauges[g as usize].load(Ordering::Relaxed),
                )
            })
            .collect();
        let labels = self.inner.rule_labels.lock().expect("rule label registry");
        let mut rule_firings = BTreeMap::new();
        for (slot, counter) in self.inner.rule_firings.iter().enumerate() {
            let fired = counter.load(Ordering::Relaxed);
            if fired == 0 {
                continue;
            }
            let label = labels
                .get(slot)
                .cloned()
                .unwrap_or_else(|| format!("rule_{slot:02}"));
            *rule_firings.entry(label).or_insert(0) += fired;
        }
        let mut histograms = BTreeMap::new();
        for &h in Hist::ALL {
            let hist = &self.inner.histograms[h as usize];
            let count = hist.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let buckets = hist
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n != 0).then_some((bucket_lower_bound(i), n))
                })
                .collect();
            histograms.insert(
                h.key(),
                HistSnapshot {
                    count,
                    sum: hist.sum.load(Ordering::Relaxed),
                    buckets,
                },
            );
        }
        let mut warnings = Vec::new();
        let warned =
            self.inner.counters[Counter::CoreBlankWarnings as usize].load(Ordering::Relaxed);
        if warned > 0 {
            let largest =
                self.inner.gauges[Gauge::LargestBlankComponent as usize].load(Ordering::Relaxed);
            let threshold =
                self.inner.gauges[Gauge::BlankWarnThreshold as usize].load(Ordering::Relaxed);
            warnings.push(format!(
                "largest blank component reached {largest} (warn threshold {threshold}, \
                 {warned} observation(s) over it); one giant component is the NP-hard \
                 worst case of the core refresh (Thm 3.12) — consider SWDB_BLANK_WARN"
            ));
        }
        let degraded = DegradedSnapshot {
            core_budget_exhausted: self.inner.counters[Counter::CoreBudgetExhausted as usize]
                .load(Ordering::Relaxed),
            uncored_components: self.inner.gauges[Gauge::UncoredComponents as usize]
                .load(Ordering::Relaxed),
            uncored_triples: self.inner.gauges[Gauge::UncoredTriples as usize]
                .load(Ordering::Relaxed),
        };
        if degraded.uncored_components > 0 {
            warnings.push(format!(
                "degraded mode: {} blank component(s) ({} triple(s)) published uncored \
                 after core budget exhaustion; certain answers stay sound but non-minimal \
                 until a recore succeeds — raise SWDB_CORE_BUDGET or call refresh_degraded",
                degraded.uncored_components, degraded.uncored_triples
            ));
        }
        let truncated =
            self.inner.counters[Counter::QueryTruncations as usize].load(Ordering::Relaxed);
        if truncated > 0 {
            warnings.push(format!(
                "{truncated} query enumeration(s) hit the solution limit and were \
                 truncated; the affected answer sets (and emptiness verdicts) may be \
                 incomplete — check Explain::truncated and narrow the query"
            ));
        }
        let wal_live = self.inner.gauges[Gauge::WalLiveRecords as usize].load(Ordering::Relaxed);
        let wal_threshold =
            self.inner.gauges[Gauge::WalCompactThreshold as usize].load(Ordering::Relaxed);
        if wal_threshold > 0 && wal_live > wal_threshold {
            warnings.push(format!(
                "WAL has {wal_live} live record(s), past the compaction threshold \
                 ({wal_threshold}); recovery replay grows with the WAL suffix — call \
                 snapshot_now (or lower SWDB_WAL_COMPACT) to rotate"
            ));
        }
        MetricsSnapshot {
            level: self.level().name(),
            counters,
            rule_firings,
            gauges,
            degraded,
            histograms,
            warnings,
        }
    }
}

/// RAII span timer returned by [`Metrics::span`].
pub struct Span<'a> {
    metrics: &'a Metrics,
    hist: Hist,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.metrics
                .record(self.hist, start.elapsed().as_nanos() as u64);
        }
    }
}

/// A cooperative step/wall-clock budget for the NP-hard core searches.
///
/// The per-component retraction search (and the overlay core on hostile
/// premises) degenerates to the global NP-hard search of Thm 3.12 on one
/// giant blank component. A `Budget` bounds that tail: the solver calls
/// [`Budget::spend`] at probe granularity (one unit per candidate visited,
/// a few per selection round) and unwinds cooperatively as soon as it
/// returns `false`. No threads, no interrupts — just polling at the points
/// the search already touches.
///
/// Two independent limits, either optional:
///
/// * a **step** limit — deterministic, reproducible across hosts; and
/// * a **deadline** — wall-clock, checked only every
///   [`Budget::CLOCK_CHECK_INTERVAL`] spent steps so the hot path stays a
///   couple of `Cell` operations per probe.
///
/// Once exhausted, a budget stays exhausted: every later `spend` returns
/// `false` immediately, so a deep recursion unwinds without re-checking
/// the clock. The type is deliberately `!Sync` (plain `Cell`s) — each
/// search thread gets its own slice.
#[derive(Debug)]
pub struct Budget {
    steps_left: Cell<u64>,
    deadline: Option<Instant>,
    until_clock_check: Cell<u64>,
    exhausted: Cell<bool>,
}

impl Budget {
    /// How many spent steps pass between deadline (clock) checks.
    pub const CLOCK_CHECK_INTERVAL: u64 = 4096;

    /// A budget with an optional step limit and an optional time limit
    /// (counted from now). `Budget::new(None, None)` never exhausts.
    pub fn new(steps: Option<u64>, time: Option<Duration>) -> Budget {
        Budget {
            steps_left: Cell::new(steps.unwrap_or(u64::MAX)),
            deadline: time.map(|t| Instant::now() + t),
            until_clock_check: Cell::new(Budget::CLOCK_CHECK_INTERVAL),
            exhausted: Cell::new(false),
        }
    }

    /// A pure step budget (deterministic; no clock reads at all).
    pub fn steps(steps: u64) -> Budget {
        Budget::new(Some(steps), None)
    }

    /// A pure wall-clock budget starting now.
    pub fn timeout(time: Duration) -> Budget {
        Budget::new(None, Some(time))
    }

    /// Spends `n` steps. Returns `true` while the search may continue;
    /// the first `false` is sticky — callers unwind and report the partial
    /// state they already hold (every applied fold is still a genuine
    /// retraction, so partial state stays sound).
    #[inline]
    pub fn spend(&self, n: u64) -> bool {
        if self.exhausted.get() {
            return false;
        }
        let left = self.steps_left.get();
        if left < n {
            self.exhausted.set(true);
            return false;
        }
        self.steps_left.set(left - n);
        if let Some(deadline) = self.deadline {
            let until = self.until_clock_check.get().saturating_sub(n);
            if until == 0 {
                self.until_clock_check.set(Budget::CLOCK_CHECK_INTERVAL);
                if Instant::now() >= deadline {
                    self.exhausted.set(true);
                    return false;
                }
            } else {
                self.until_clock_check.set(until);
            }
        }
        true
    }

    /// `true` once any limit tripped. Callers that got `None` out of a
    /// search use this to tell "no solution exists" from "ran out of
    /// budget before knowing".
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.get()
    }

    /// Steps still available (`u64::MAX` when no step limit was set).
    pub fn steps_remaining(&self) -> u64 {
        self.steps_left.get()
    }

    /// Trips the budget immediately (tests, or an outer layer deciding to
    /// shed load mid-search).
    pub fn exhaust(&self) {
        self.exhausted.set(true);
    }
}

/// A frozen histogram: sample count, sample sum, and the non-empty log₂
/// buckets as `(inclusive lower bound, count)` pairs in ascending order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Non-empty buckets, ascending by lower bound.
    pub buckets: Vec<(u64, u64)>,
}

/// The degraded-mode block of a snapshot: how much of the published
/// evaluation graph is currently sound-but-unminimized because a core
/// budget ran out before the retraction search finished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradedSnapshot {
    /// Budget slices exhausted since the last reset (monotonic).
    pub core_budget_exhausted: u64,
    /// Blank components currently published uncored.
    pub uncored_components: u64,
    /// Triples across those uncored components.
    pub uncored_triples: u64,
}

impl DegradedSnapshot {
    /// `true` when any component is currently published uncored.
    pub fn active(&self) -> bool {
        self.uncored_components > 0
    }
}

/// A deterministic freeze of a [`Metrics`] handle. All maps are `BTreeMap`s
/// so [`MetricsSnapshot::to_json`] emits stable key order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The recording level at snapshot time.
    pub level: &'static str,
    /// Every counter, including zeros (stable report shape).
    pub counters: BTreeMap<&'static str, u64>,
    /// Per-rule firings, non-zero slots only, keyed by registered label.
    pub rule_firings: BTreeMap<String, u64>,
    /// Every gauge, including zeros.
    pub gauges: BTreeMap<&'static str, u64>,
    /// The degraded-mode block (budget exhaustions + currently-uncored
    /// components); all zeros when every component is fully cored.
    pub degraded: DegradedSnapshot,
    /// Non-empty histograms (populated at `debug` level).
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
    /// Early-warning messages (the largest blank component exceeded the
    /// configured threshold, or components are published uncored).
    pub warnings: Vec<String>,
}

impl MetricsSnapshot {
    /// Convenience: the value of one counter by its snapshot key.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Renders the snapshot as deterministic JSON (keys sorted, integers
    /// only) following the workspace's hand-rolled JSON conventions.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"level\": \"{}\",\n", self.level));
        out.push_str("  \"counters\": {");
        push_map(&mut out, self.counters.iter().map(|(k, v)| (*k, *v)));
        out.push_str("},\n  \"rule_firings\": {");
        push_map(
            &mut out,
            self.rule_firings.iter().map(|(k, v)| (k.as_str(), *v)),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges.iter().map(|(k, v)| (*k, *v)));
        out.push_str("},\n  \"degraded\": {");
        push_map(
            &mut out,
            [
                ("core_budget_exhausted", self.degraded.core_budget_exhausted),
                ("uncored_components", self.degraded.uncored_components),
                ("uncored_triples", self.degraded.uncored_triples),
            ]
            .into_iter(),
        );
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (key, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{key}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                hist.count, hist.sum
            ));
            for (i, (lb, n)) in hist.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{lb}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\"",
                w.replace('\\', "\\\\").replace('"', "\\\"")
            ));
        }
        out.push_str("]\n}");
        out
    }
}

fn push_map<'k>(out: &mut String, entries: impl Iterator<Item = (&'k str, u64)>) {
    let mut first = true;
    let mut any = false;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        any = true;
        out.push_str(&format!("\n    \"{key}\": {value}"));
    }
    if any {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_and_records_nothing() {
        let m = Metrics::default();
        assert_eq!(m.level(), MetricsLevel::Off);
        m.count(Counter::ReasonRounds, 5);
        m.count_rule(2, 7);
        m.record(Hist::FrontierSize, 10);
        m.gauge_set(Gauge::LargestBlankComponent, 9);
        {
            let _span = m.span(Hist::SpanQueryAnswerNs);
        }
        let snap = m.snapshot();
        assert_eq!(snap.counter("reason_rounds"), 0);
        assert!(snap.rule_firings.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.gauges["largest_blank_component"], 0);
    }

    #[test]
    fn counters_level_records_counts_but_not_histograms() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.count(Counter::QueryJoinProbes, 3);
        m.count(Counter::QueryJoinProbes, 4);
        m.record(Hist::FrontierSize, 10);
        let snap = m.snapshot();
        assert_eq!(snap.counter("query_join_probes"), 7);
        assert!(snap.histograms.is_empty(), "histograms need debug level");
    }

    #[test]
    fn debug_level_records_histograms_and_spans() {
        let m = Metrics::new(MetricsLevel::Debug);
        for v in [0u64, 1, 2, 3, 4, 1000] {
            m.record(Hist::FrontierSize, v);
        }
        {
            let _span = m.span(Hist::SpanReasonInsertNs);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["frontier_size"];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
        let spans = &snap.histograms["span_reason_insert_ns"];
        assert_eq!(spans.count, 1);
    }

    #[test]
    fn clones_share_state_and_level_changes_apply_retroactively() {
        let m = Metrics::new(MetricsLevel::Off);
        let clone = m.clone();
        clone.set_level(MetricsLevel::Counters);
        m.count(Counter::ReasonClosureAdded, 2);
        assert_eq!(clone.snapshot().counter("reason_closure_added"), 2);
    }

    #[test]
    fn rule_labels_name_the_firing_slots() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.set_rule_labels(vec!["r02_sp-transitivity".into()]);
        m.count_rule(0, 3);
        m.count_rule(1, 1);
        let snap = m.snapshot();
        assert_eq!(snap.rule_firings["r02_sp-transitivity"], 3);
        assert_eq!(snap.rule_firings["rule_01"], 1);
    }

    #[test]
    fn blank_component_observation_warns_past_threshold() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.set_blank_warn_threshold(10);
        m.observe_largest_blank_component(9);
        assert_eq!(m.snapshot().counter("core_blank_warnings"), 0);
        m.observe_largest_blank_component(11);
        let snap = m.snapshot();
        assert_eq!(snap.counter("core_blank_warnings"), 1);
        assert_eq!(snap.gauges["largest_blank_component"], 11);
        assert_eq!(snap.gauges["blank_warn_threshold"], 10);
        assert_eq!(snap.warnings.len(), 1, "warning surfaces in the snapshot");
        assert!(snap
            .to_json()
            .contains("\"warnings\": [\"largest blank component"));
    }

    #[test]
    fn snapshot_warnings_block_is_empty_when_under_threshold() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.observe_largest_blank_component(3);
        let snap = m.snapshot();
        assert!(snap.warnings.is_empty());
        assert!(snap.to_json().contains("\"warnings\": []"));
    }

    #[test]
    fn snapshot_json_is_deterministic_and_keyed() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.count(Counter::QueryAnswers, 2);
        let a = m.snapshot().to_json();
        let b = m.snapshot().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"level\": \"counters\""));
        assert!(a.contains("\"query_answers\": 2"));
        // Keys are emitted in sorted order.
        let hits = a.find("\"overlay_cache_hits\"").unwrap();
        let probes = a.find("\"query_join_probes\"").unwrap();
        assert!(hits < probes);
    }

    #[test]
    fn level_parsing_covers_the_conventions() {
        assert_eq!(MetricsLevel::parse("off"), MetricsLevel::Off);
        assert_eq!(MetricsLevel::parse("Counters"), MetricsLevel::Counters);
        assert_eq!(MetricsLevel::parse("on"), MetricsLevel::Counters);
        assert_eq!(MetricsLevel::parse("1"), MetricsLevel::Counters);
        assert_eq!(MetricsLevel::parse("DEBUG"), MetricsLevel::Debug);
        assert_eq!(MetricsLevel::parse("2"), MetricsLevel::Debug);
        assert_eq!(MetricsLevel::parse("garbage"), MetricsLevel::Off);
    }

    #[test]
    fn step_budget_exhausts_exactly_and_stays_exhausted() {
        let b = Budget::steps(10);
        assert!(b.spend(4));
        assert!(b.spend(6));
        assert_eq!(b.steps_remaining(), 0);
        assert!(!b.is_exhausted(), "hitting zero is not yet over budget");
        assert!(!b.spend(1), "the 11th step trips the budget");
        assert!(b.is_exhausted());
        assert!(!b.spend(0), "exhaustion is sticky even for free spends");
    }

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::new(None, None);
        for _ in 0..100_000 {
            assert!(b.spend(17));
        }
        assert!(!b.is_exhausted());
    }

    #[test]
    fn deadline_budget_trips_at_the_clock_check() {
        let b = Budget::timeout(Duration::from_millis(0));
        // The deadline is already past, but it is only observed every
        // CLOCK_CHECK_INTERVAL steps.
        let mut spent = 0u64;
        while b.spend(1) {
            spent += 1;
            assert!(spent <= Budget::CLOCK_CHECK_INTERVAL, "clock never checked");
        }
        assert!(b.is_exhausted());
        assert_eq!(spent, Budget::CLOCK_CHECK_INTERVAL - 1);
    }

    #[test]
    fn explicit_exhaust_trips_the_budget() {
        let b = Budget::steps(u64::MAX);
        b.exhaust();
        assert!(!b.spend(1));
    }

    #[test]
    fn degraded_block_reports_exhaustion_and_uncored_state() {
        let m = Metrics::new(MetricsLevel::Counters);
        let snap = m.snapshot();
        assert_eq!(snap.degraded, DegradedSnapshot::default());
        assert!(!snap.degraded.active());
        assert!(snap.to_json().contains("\"degraded\": {"));
        assert!(snap.to_json().contains("\"core_budget_exhausted\": 0"));

        m.count(Counter::CoreBudgetExhausted, 2);
        m.gauge_set(Gauge::UncoredComponents, 1);
        m.gauge_set(Gauge::UncoredTriples, 36);
        let snap = m.snapshot();
        assert_eq!(snap.degraded.core_budget_exhausted, 2);
        assert_eq!(snap.degraded.uncored_components, 1);
        assert_eq!(snap.degraded.uncored_triples, 36);
        assert!(snap.degraded.active());
        assert_eq!(snap.counter("core_budget_exhausted"), 2);
        assert!(
            snap.warnings.iter().any(|w| w.contains("degraded mode")),
            "uncored components surface as a warning"
        );

        // Recore: gauges drop back to zero, the counter stays monotonic.
        m.gauge_set(Gauge::UncoredComponents, 0);
        m.gauge_set(Gauge::UncoredTriples, 0);
        let snap = m.snapshot();
        assert!(!snap.degraded.active());
        assert!(!snap.warnings.iter().any(|w| w.contains("degraded mode")));
        assert_eq!(snap.degraded.core_budget_exhausted, 2);
    }

    #[test]
    fn wal_past_compaction_threshold_surfaces_as_a_warning() {
        let m = Metrics::new(MetricsLevel::Counters);
        m.gauge_set(Gauge::WalCompactThreshold, 100);
        m.gauge_set(Gauge::WalLiveRecords, 100);
        assert!(
            m.snapshot().warnings.is_empty(),
            "at the threshold is not yet over it"
        );
        m.gauge_set(Gauge::WalLiveRecords, 101);
        let snap = m.snapshot();
        assert!(snap
            .warnings
            .iter()
            .any(|w| w.contains("compaction threshold")));
        // No threshold configured (no durability layer) never warns.
        m.gauge_set(Gauge::WalCompactThreshold, 0);
        assert!(m.snapshot().warnings.is_empty());
    }

    #[test]
    fn reset_clears_recorded_state_but_keeps_level() {
        let m = Metrics::new(MetricsLevel::Debug);
        m.count(Counter::ReasonRounds, 3);
        m.record(Hist::FrontierSize, 4);
        m.reset();
        let snap = m.snapshot();
        assert_eq!(snap.counter("reason_rounds"), 0);
        assert!(snap.histograms.is_empty());
        assert_eq!(m.level(), MetricsLevel::Debug);
    }
}
