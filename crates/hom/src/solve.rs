//! The backtracking pattern matcher.
//!
//! Given a [`PatternGraph`] (a conjunction of triple patterns) and a target
//! graph, the solver enumerates the valuations of the pattern variables under
//! which every pattern instantiates to a triple of the target. This is the
//! evaluation problem for conjunctive queries over the triple relation, which
//! is NP-complete in the size of the pattern (Theorem 6.1, query complexity)
//! and polynomial in the size of the data for a fixed pattern (data
//! complexity); both behaviours are exercised by experiment E15.
//!
//! The search selects, at each step, the pattern with the fewest candidate
//! triples under the current binding (most-constrained-first), which is the
//! classic dynamic join ordering heuristic.

use std::ops::ControlFlow;

use swdb_model::{Graph, Term};

use crate::index::GraphIndex;
use crate::pattern::{Binding, PatternGraph, PatternTerm, TriplePattern};

/// Maximum number of solutions collected by [`Solver::all_solutions`] unless
/// a smaller limit is given. A guard against accidentally materialising
/// exponentially many homomorphisms.
pub const DEFAULT_SOLUTION_LIMIT: usize = 1_000_000;

/// Returns the index of the item with the smallest selectivity value — the
/// most-constrained-first rule shared by this string-space solver and the
/// id-space join in `swdb-query`. Evaluation short-circuits on a selectivity
/// of `0` (nothing beats an unsatisfiable or already-verified pattern).
/// Returns `None` on an empty slice.
pub fn most_constrained<T>(items: &[T], mut selectivity: impl FnMut(&T) -> usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, item) in items.iter().enumerate() {
        let sel = selectivity(item);
        if sel == 0 {
            return Some(i);
        }
        if best.is_none_or(|(_, best_sel)| sel < best_sel) {
            best = Some((i, sel));
        }
    }
    best.map(|(i, _)| i)
}

/// A prepared matcher for one pattern graph against one target graph.
pub struct Solver<'a> {
    pattern: &'a PatternGraph,
    index: &'a GraphIndex,
}

impl<'a> Solver<'a> {
    /// Creates a solver for the given pattern and target index.
    pub fn new(pattern: &'a PatternGraph, index: &'a GraphIndex) -> Self {
        Solver { pattern, index }
    }

    /// Enumerates solutions, invoking `visit` for each complete binding.
    /// The visitor can stop the enumeration early by returning
    /// [`ControlFlow::Break`].
    pub fn for_each_solution<B>(
        &self,
        visit: &mut impl FnMut(&Binding) -> ControlFlow<B>,
    ) -> Option<B> {
        let mut remaining: Vec<&TriplePattern> = self.pattern.patterns().iter().collect();
        let mut binding = Binding::new();
        match self.search(&mut remaining, &mut binding, visit) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    fn search<B>(
        &self,
        remaining: &mut Vec<&'a TriplePattern>,
        binding: &mut Binding,
        visit: &mut impl FnMut(&Binding) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if remaining.is_empty() {
            return visit(binding);
        }
        // Most-constrained pattern first (fewest candidates under current
        // binding). Ground patterns get priority implicitly because their
        // candidate count is 0 or 1.
        let best_pos = most_constrained(remaining, |p| self.index.selectivity(p, binding))
            .expect("remaining not empty");
        let chosen = remaining.swap_remove(best_pos);

        let candidates = self.index.candidates(chosen, binding);
        for candidate in candidates {
            if !GraphIndex::matches(chosen, binding, candidate) {
                continue;
            }
            // Bind the unbound variables of the chosen pattern to the
            // candidate's corresponding positions.
            let mut newly_bound = Vec::with_capacity(3);
            let positions: [(&PatternTerm, Term); 3] = [
                (&chosen.subject, candidate.subject().clone()),
                (&chosen.predicate, Term::Iri(candidate.predicate().clone())),
                (&chosen.object, candidate.object().clone()),
            ];
            let mut consistent = true;
            for (position, actual) in positions {
                if let PatternTerm::Var(v) = position {
                    match binding.get(v) {
                        Some(existing) if existing == &actual => {}
                        Some(_) => {
                            consistent = false;
                            break;
                        }
                        None => {
                            binding.bind(v.clone(), actual);
                            newly_bound.push(v.clone());
                        }
                    }
                }
            }
            if consistent {
                if let ControlFlow::Break(b) = self.search(remaining, binding, visit) {
                    // Restore state before propagating.
                    for v in &newly_bound {
                        binding.unbind(v);
                    }
                    remaining.push(chosen);
                    let last = remaining.len() - 1;
                    remaining.swap(best_pos.min(last), last);
                    return ControlFlow::Break(b);
                }
            }
            for v in &newly_bound {
                binding.unbind(v);
            }
        }
        // Restore the pattern list order-insensitively (the set matters, not
        // the order, because selection is dynamic).
        remaining.push(chosen);
        let last = remaining.len() - 1;
        remaining.swap(best_pos.min(last), last);
        ControlFlow::Continue(())
    }

    /// Returns `true` if at least one solution exists.
    pub fn exists(&self) -> bool {
        self.first_solution().is_some()
    }

    /// Returns the first solution found, if any.
    pub fn first_solution(&self) -> Option<Binding> {
        self.for_each_solution(&mut |b: &Binding| ControlFlow::Break(b.clone()))
    }

    /// Collects up to `limit` solutions.
    pub fn solutions_up_to(&self, limit: usize) -> Vec<Binding> {
        let mut out = Vec::new();
        self.for_each_solution(&mut |b: &Binding| {
            out.push(b.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// Collects all solutions (up to [`DEFAULT_SOLUTION_LIMIT`]).
    pub fn all_solutions(&self) -> Vec<Binding> {
        self.solutions_up_to(DEFAULT_SOLUTION_LIMIT)
    }

    /// Counts all solutions (up to [`DEFAULT_SOLUTION_LIMIT`]).
    pub fn count_solutions(&self) -> usize {
        let mut n = 0usize;
        self.for_each_solution(&mut |_b: &Binding| {
            n += 1;
            if n >= DEFAULT_SOLUTION_LIMIT {
                ControlFlow::Break(())
            } else {
                ControlFlow::<()>::Continue(())
            }
        });
        n
    }
}

/// Convenience: evaluates a pattern graph against a graph, returning all
/// solutions. Builds a fresh index; reuse [`Solver`] with a prebuilt
/// [`GraphIndex`] when matching repeatedly against the same data.
pub fn match_pattern(pattern: &PatternGraph, data: &Graph) -> Vec<Binding> {
    let index = GraphIndex::new(data);
    Solver::new(pattern, &index).all_solutions()
}

/// Convenience: returns `true` if the pattern has at least one match in the
/// data.
pub fn pattern_matches(pattern: &PatternGraph, data: &Graph) -> bool {
    let index = GraphIndex::new(data);
    Solver::new(pattern, &index).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::pattern_graph;
    use swdb_model::graph;

    fn data() -> Graph {
        graph([
            ("ex:dept", "ex:offers", "ex:DB"),
            ("ex:dept", "ex:offers", "ex:AI"),
            ("ex:alice", "ex:takes", "ex:DB"),
            ("ex:bob", "ex:takes", "ex:AI"),
            ("ex:carol", "ex:takes", "ex:DB"),
        ])
    }

    #[test]
    fn single_pattern_matches_all_triples_with_predicate() {
        let pg = pattern_graph([("?X", "ex:takes", "?C")]);
        let sols = match_pattern(&pg, &data());
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn join_across_patterns() {
        let pg = pattern_graph([("ex:dept", "ex:offers", "?C"), ("?S", "ex:takes", "?C")]);
        let sols = match_pattern(&pg, &data());
        assert_eq!(sols.len(), 3, "two DB takers and one AI taker");
        assert!(sols.iter().all(|b| b.len() == 2));
    }

    #[test]
    fn unsatisfiable_pattern_returns_nothing() {
        let pg = pattern_graph([("?X", "ex:offers", "ex:Math")]);
        assert!(match_pattern(&pg, &data()).is_empty());
        assert!(!pattern_matches(&pg, &data()));
    }

    #[test]
    fn empty_pattern_has_exactly_the_empty_solution() {
        let pg = pattern_graph([]);
        let sols = match_pattern(&pg, &data());
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn repeated_variable_forces_equality() {
        let pg = pattern_graph([("?X", "ex:takes", "?X")]);
        assert!(match_pattern(&pg, &data()).is_empty());
        let selfloop = graph([("ex:n", "ex:takes", "ex:n")]);
        assert_eq!(match_pattern(&pg, &selfloop).len(), 1);
    }

    #[test]
    fn variable_in_predicate_position() {
        let pg = pattern_graph([("ex:alice", "?P", "?O")]);
        let sols = match_pattern(&pg, &data());
        assert_eq!(sols.len(), 1);
        assert_eq!(
            sols[0].get(&crate::pattern::Variable::new("P")).unwrap(),
            &Term::iri("ex:takes")
        );
    }

    #[test]
    fn ground_pattern_acts_as_containment_test() {
        let pg = pattern_graph([("ex:alice", "ex:takes", "ex:DB")]);
        assert!(pattern_matches(&pg, &data()));
        let missing = pattern_graph([("ex:alice", "ex:takes", "ex:AI")]);
        assert!(!pattern_matches(&missing, &data()));
    }

    #[test]
    fn count_and_limit() {
        let pg = pattern_graph([("?X", "?P", "?Y")]);
        let d = data();
        let idx = GraphIndex::new(&d);
        let solver = Solver::new(&pg, &idx);
        assert_eq!(solver.count_solutions(), 5);
        assert_eq!(solver.solutions_up_to(2).len(), 2);
        assert!(solver.exists());
    }

    #[test]
    fn triangle_pattern_requires_triangle_in_data() {
        let pg = pattern_graph([
            ("?A", "ex:e", "?B"),
            ("?B", "ex:e", "?C"),
            ("?C", "ex:e", "?A"),
        ]);
        let path = graph([("ex:1", "ex:e", "ex:2"), ("ex:2", "ex:e", "ex:3")]);
        assert!(!pattern_matches(&pg, &path));
        let triangle = graph([
            ("ex:1", "ex:e", "ex:2"),
            ("ex:2", "ex:e", "ex:3"),
            ("ex:3", "ex:e", "ex:1"),
        ]);
        assert!(pattern_matches(&pg, &triangle));
        // Self-loops also satisfy the triangle pattern (homomorphisms may
        // collapse variables).
        let looped = graph([("ex:n", "ex:e", "ex:n")]);
        assert!(pattern_matches(&pg, &looped));
    }

    #[test]
    fn most_constrained_picks_the_smallest_and_short_circuits_on_zero() {
        assert_eq!(most_constrained::<usize>(&[], |&n| n), None);
        assert_eq!(most_constrained(&[5usize, 3, 4], |&n| n), Some(1));
        let mut evaluated = 0;
        let best = most_constrained(&[2usize, 0, 9], |&n| {
            evaluated += 1;
            n
        });
        assert_eq!(best, Some(1));
        assert_eq!(evaluated, 2, "selection stops at the first zero");
    }

    #[test]
    fn solutions_bind_exactly_the_pattern_variables() {
        let pg = pattern_graph([("?X", "ex:offers", "?C")]);
        for sol in match_pattern(&pg, &data()) {
            assert_eq!(sol.len(), 2);
            assert!(sol.get(&crate::pattern::Variable::new("X")).is_some());
            assert!(sol.get(&crate::pattern::Variable::new("C")).is_some());
        }
    }
}
